"""Hunting a wrong-direction branch bug with the QED-CF module.

Design A version 4 contains a branch unit regression: BZ samples the N flag
instead of Z when the previous write-back targeted an upper-half register.
Baseline EDDI-V never injects branches, so only the Enhanced EDDI-V
control-flow configuration (the QED-CF module of Fig. 5 in the paper) can
expose it.  The example runs both configurations and prints the decoded
counterexample of the one that fails.

Run with::

    python examples/control_flow_bug_hunt.py
"""

from repro.isa.arch import TINY_PROFILE
from repro.qed import QEDMode, SymbolicQED

FOCUS = ["LDI", "ADD", "CMPI", "BZ"]


def run(mode: QEDMode) -> None:
    focus = [name for name in FOCUS if mode is QEDMode.EDDIV_CF or name != "BZ"]
    harness = SymbolicQED(
        "A.v4", mode=mode, arch=TINY_PROFILE, focus_opcodes=focus
    )
    result = harness.check(max_bound=8)
    print(f"--- {mode.value}")
    if result.found_violation:
        print(
            f"QED failure after {result.counterexample_instructions} instructions "
            f"({result.runtime_seconds:.1f}s of BMC)"
        )
        print(result.counterexample_report())
    else:
        print("no failure found within the bound (control-flow bugs are out of "
              "reach for this configuration)")
    print()


def main() -> None:
    run(QEDMode.EDDIV)
    run(QEDMode.EDDIV_CF)


if __name__ == "__main__":
    main()
