"""Quickstart: the verification service -- submit, solve once, serve twice.

Starts the whole serving stack (HTTP server, job queue, content-addressed
result cache) in-process, submits the same bug-detection job twice, and
shows the second answer coming straight from the cache: one solve, two
results.  This is the regime the paper's industrial flow lives in --
engineers re-running per-block Symbolic QED queries against unchanged
design versions all day.

Run with::

    python examples/serve_quickstart.py
"""

import tempfile

from repro.eval.campaign import CampaignConfig
from repro.serve import LocalServer, ServeClient


def main() -> None:
    # Skip the simulation baselines so the demo answers in about a second;
    # the served record is still byte-identical to a direct detect_bug().
    config = CampaignConfig(
        run_industrial_flow=False, run_directed_tests=False
    )
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as cache_dir:
        # use_processes=False runs the solve on a worker thread -- handy for
        # a demo; a real deployment keeps the default process pool.
        with LocalServer(cache_dir=cache_dir, use_processes=False) as url:
            client = ServeClient(url)
            print(f"verification service up on {url}")

            first = client.submit(bug_id="sra_zero_fill", config=config)
            print(f"job {first.job_id} submitted (state: {first.state})")
            done = (
                first if first.done else client.wait_done(first.job_id, timeout=120)
            )
            assert done.record is not None
            print(
                "verdict : bug detected by "
                f"{[k for k, v in done.record['detected_by'].items() if v]}"
            )
            print(f"cache key: {done.cache_key[:16]}..")

            second = client.submit(bug_id="sra_zero_fill", config=config)
            assert second.cache_hit and second.record is not None
            print(
                f"second submission: cache hit "
                f"(served_from_cache={second.record['served_from_cache']}) -- "
                "no solver ran"
            )

            stats = client.stats()["queue"]
            print(
                f"service stats: {stats['jobs_submitted']} submitted, "
                f"{stats['executed']} executed, {stats['cache_hits']} cache hits"
            )

            # Every job carries a span trace end to end -- queue wait, lint,
            # per-bound encode/solve -- browsable while the server is up
            # (scripts/trace_qed.py renders the same JSON as a tree).
            trace = client.trace(first.job_id)
            print(f"trace    : {url}/jobs/{first.job_id}/trace")
            print(
                f"           {len(trace['spans'])} spans recorded "
                f"(trace id {trace['trace_id']})"
            )

            # Solver heartbeats (conflicts, propagations/s, trail depth,
            # restart cadence) stream up from the search's cold branches
            # while a job runs; scripts/dashboard_qed.py renders them live.
            telemetry = client.telemetry(first.job_id)
            print(f"telemetry: {url}/jobs/{first.job_id}/telemetry")
            print(
                f"           {telemetry['total']} heartbeats recorded"
            )


if __name__ == "__main__":
    main()
