"""The specification bug that only Symbolic QED reports (Fig. 8's "+7%").

Design A's final version changed CMPI so it no longer updates the carry flag,
and the specification document was amended to match.  The constrained-random
flow compares the RTL against that (amended) specification, so it sees
nothing; the OCS-FV properties miss the detail as well.  The Single-I
property -- written from the original architectural intent in the ISA
catalogue -- flags the deviation immediately.

Run with::

    python examples/spec_bug_and_single_i.py
"""

from repro.indverif import CRSConfig, ConstrainedRandomSim, OCSFVChecker
from repro.isa.arch import TINY_PROFILE
from repro.qed import SingleIChecker

VERSION = "A.v8"


def main() -> None:
    print(f"design under verification: {VERSION} (final version of Design A)")

    crs = ConstrainedRandomSim(
        VERSION,
        arch=TINY_PROFILE,
        config=CRSConfig(num_programs=10, program_length=20, seed=3),
    )
    crs_result = crs.run()
    print(
        f"CRS:     {crs_result.programs_run} constrained-random programs, "
        f"{crs_result.instructions_committed} instructions committed, "
        f"mismatches: {len(crs_result.mismatches)}"
    )

    ocsfv = OCSFVChecker(VERSION, arch=TINY_PROFILE)
    ocsfv_result = ocsfv.check_all(instructions=["CMP", "CMPI"])
    print(f"OCS-FV:  failing properties: {ocsfv_result.failing_properties or 'none'}")

    single_i = SingleIChecker(VERSION, arch=TINY_PROFILE)
    cmpi = single_i.check_instruction("CMPI")
    print(
        f"Single-I: CMPI property violated = {cmpi.violated} "
        f"(found in {cmpi.runtime_seconds:.1f}s, "
        f"{cmpi.counterexample_instructions}-instruction counterexample)"
    )
    print()
    print(
        "Only the Single-I property written from the architectural intent "
        "reports the CMPI carry-flag deviation -- the paper's uniquely-"
        "detected specification bug."
    )


if __name__ == "__main__":
    main()
