"""Quickstart: split one hard BMC proof with the distributed proof engine.

The deep QED-CF queries are single SAT calls -- a campaign-level process
pool cannot speed them up.  This example shows the cube-and-conquer path
instead: the clean design B.v6 is proven free of QED-CF failures with the
query split by property-window position and instruction-opcode bits, fanned
over worker processes with dynamic re-splitting and learned-clause sharing
(:mod:`repro.dist`).  A single-worker run of the same configuration is
bit-for-bit deterministic, and SAT/UNSAT verdicts never depend on the
worker count (only where an explicit *conflict budget* draws the UNKNOWN
line can racing workers land on a different side of it).

Run with::

    python examples/distributed_proof.py            # 2 workers
    WORKERS=4 python examples/distributed_proof.py  # wider pool
"""

import os

from repro.dist import SplitConfig
from repro.isa.arch import TINY_PROFILE
from repro.qed import QEDMode, SymbolicQED


def main() -> None:
    workers = int(os.environ.get("WORKERS", "2"))
    harness = SymbolicQED(
        "B.v6",
        mode=QEDMode.EDDIV_CF,
        arch=TINY_PROFILE,
        focus_opcodes=["LDI", "ADD", "CMPI", "BZ"],
    )
    print(f"design under verification : {harness.design.name}")
    print(f"workers                   : {workers}")
    print("proving QED-CF consistency bound by bound, cube by cube...")

    result = harness.check(
        max_bound=5,
        single_query=False,  # dense schedule: one window per bound
        split=SplitConfig(
            workers=workers,
            strategy="auto",          # window ladder x look-ahead tree
            cube_conflict_budget=2000,  # overruns re-split dynamically
        ),
    )

    bmc = result.bmc_result
    verdict = "QED failure found" if result.found_violation else "no QED failure"
    print(f"{verdict} within bound {bmc.bound_reached}")
    print(f"frames proven safe        : {bmc.frames_proven}")
    print(f"cubes solved              : {result.cubes_solved}")
    print(f"dynamic re-splits         : {result.cubes_resplit}")
    print(f"learned clauses shared    : {result.clauses_shared}")
    print(f"wall clock                : {bmc.runtime_seconds:.1f}s")
    for stats in bmc.per_bound_stats:
        if stats.dist is None:
            continue
        print(
            f"  bound {stats.bound}: {stats.verdict:7s} "
            f"{stats.dist.cubes_total:3d} cubes "
            f"({stats.dist.cubes_unsat} unsat/{stats.dist.cubes_sat} sat), "
            f"{stats.conflicts} conflicts"
        )


if __name__ == "__main__":
    main()
