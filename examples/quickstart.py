"""Quickstart: run Symbolic QED on a buggy microcontroller version.

Design A version 3 carries two microarchitectural interaction bugs (a
register-file write-port collision and an ALU-after-load corruption).  No
design-specific property is written anywhere below: the QED module plus the
generic EDDI-V consistency check is the whole specification, exactly the
workflow the paper describes.

Run with::

    python examples/quickstart.py
"""

from repro.isa.arch import TINY_PROFILE
from repro.qed import QEDMode, SymbolicQED


def main() -> None:
    harness = SymbolicQED(
        "A.v3",
        mode=QEDMode.EDDIV,
        arch=TINY_PROFILE,
        # Restrict the stimulus to a handful of opcodes so the pure-Python
        # BMC backend answers in a few seconds (see DESIGN.md).
        focus_opcodes=["LDI", "MOV", "INC", "ADD"],
    )
    print(f"design under verification : {harness.design.name}")
    print(f"flip-flops in the model   : {harness.design.num_flip_flops}")
    print("running bounded model checking from the QED-consistent start state...")

    result = harness.check(max_bound=8)
    if not result.found_violation:
        print("no QED failure found within the bound")
        return

    print(
        f"bug found in {result.runtime_seconds:.1f}s: "
        f"{result.counterexample_cycles} cycles, "
        f"{result.counterexample_instructions} instructions"
    )
    print()
    print(result.counterexample_report())


if __name__ == "__main__":
    main()
