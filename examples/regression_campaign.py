"""A miniature verification campaign across design versions.

Runs the detection campaign for one representative bug per Symbolic QED
feature plus the specification bug, together with the industrial-flow
baselines, and prints the Fig. 8 / 9 / 10 style summary.  Pass ``--full`` to
run every bug in the library (slow on the pure-Python SAT backend) and
``--workers N`` to fan the independent per-bug jobs out over N processes.

Run with::

    python examples/regression_campaign.py [--full] [--workers N]
"""

import argparse
import os

from repro.eval.campaign import CampaignConfig, run_campaign
from repro.eval.report import detection_breakdown
from repro.indverif.crs import CRSConfig
from repro.isa.arch import TINY_PROFILE

REPRESENTATIVE = (
    "wrport_collision",
    "bz_flag_misread",
    "ldil_after_load",
    "sra_zero_fill",
    "cmpi_carry_spec",
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true",
        help="run every bug in the library (slow)",
    )
    parser.add_argument(
        "--workers", type=int, default=min(4, os.cpu_count() or 1),
        help="process-pool size for the per-bug jobs",
    )
    args = parser.parse_args()
    config = CampaignConfig(
        arch=TINY_PROFILE,
        bug_ids=None if args.full else REPRESENTATIVE,
        crs_config=CRSConfig(num_programs=25, program_length=22, seed=7),
    )
    campaign = run_campaign(config, workers=args.workers)
    print(
        f"campaign over {len(campaign.records)} bugs finished in "
        f"{campaign.wall_clock_seconds:.1f}s"
    )
    for record in campaign.records:
        print(
            f"  {record.bug_id:22s} on {record.version_name:5s} "
            f"qed_feature={record.attributed_feature or '-':9s} "
            f"crs={record.crs_detected} ocsfv={record.ocsfv_detected} "
            f"dst={record.dst_detected}"
        )
    breakdown = detection_breakdown(campaign)
    print()
    print(f"Symbolic QED detected     : {breakdown['symbolic_qed_detected']}/{breakdown['total_bugs']}")
    print(f"industrial flow detected  : {breakdown['industrial_flow_detected']}/{breakdown['total_bugs']}")
    print(f"uniquely detected by QED  : {breakdown['qed_unique_bugs']}")
    print(f"feature breakdown         : {breakdown['feature_breakdown_counts']}")


if __name__ == "__main__":
    main()
