"""Render a job trace: span tree with timings + "where did the time go".

Takes a trace JSON view -- a file written by the flight recorder or dumped
from ``GET /jobs/<id>/trace``, or fetched live from a running server --
and prints:

* the span tree, indented by parenthood, each span with its wall-clock
  duration, recorder (queue-side ``q.*`` ids vs pid-prefixed worker ids)
  and attributes;
* a top-N self-time table (:func:`repro.obs.sum_self_seconds`): per span
  name, call count, total seconds and *self* seconds (total minus direct
  children), which is the decomposition that answers "where did the time
  go" for a served job;
* a span-event summary (restarts, DB reductions, deadline polls, retries,
  fault firings) grouped by event name.

Usage::

    PYTHONPATH=src python scripts/trace_qed.py trace.json
    PYTHONPATH=src python scripts/trace_qed.py flight-job-000003.json
    PYTHONPATH=src python scripts/trace_qed.py --url http://127.0.0.1:8123 \\
        --job job-000000
    PYTHONPATH=src python scripts/trace_qed.py trace.json --top 5 --events
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.obs import sum_self_seconds

#: Spans whose parent is missing from the view render at the root; a
#: duration under this (seconds) is shown in milliseconds.
_MS_THRESHOLD = 0.9995


def load_trace(path: str) -> Dict[str, object]:
    """Read a trace view from *path*; unwraps flight-recorder artifacts."""
    with open(path, "r", encoding="utf-8") as stream:
        data = json.load(stream)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if "trace" in data and isinstance(data["trace"], dict):
        data = data["trace"]  # flight record (or /jobs/<id>/trace payload)
    if "spans" not in data:
        raise ValueError(f"{path}: no 'spans' -- not a trace view")
    return data


def fetch_trace(url: str, job_id: str) -> Dict[str, object]:
    """Fetch ``GET /jobs/<id>/trace`` from a live server."""
    from repro.serve.client import ServeClient

    return ServeClient(url).trace(job_id)


def _duration(span: Dict[str, object]) -> Optional[float]:
    start, end = span.get("start"), span.get("end")
    if isinstance(start, (int, float)) and isinstance(end, (int, float)):
        return float(end) - float(start)
    return None


def _fmt_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "   (open)"
    if seconds < _MS_THRESHOLD:
        return f"{seconds * 1000.0:7.1f}ms"
    return f"{seconds:8.2f}s"


def _fmt_attrs(span: Dict[str, object]) -> str:
    attrs = span.get("attrs")
    if not isinstance(attrs, dict) or not attrs:
        return ""
    inner = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return f"  [{inner}]"


def render_tree(trace: Dict[str, object], out=sys.stdout) -> None:
    """Print the span tree, children indented under parents."""
    spans = [s for s in trace.get("spans", ()) if isinstance(s, dict)]
    by_id = {s.get("span_id"): s for s in spans}
    children: Dict[object, List[Dict[str, object]]] = {}
    roots: List[Dict[str, object]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def start_key(span: Dict[str, object]) -> float:
        start = span.get("start")
        return float(start) if isinstance(start, (int, float)) else 0.0

    def walk(span: Dict[str, object], depth: int) -> None:
        origin = str(span.get("span_id", "")).split(".")[0]
        where = "queue" if origin == "q" else f"pid:{origin}"
        out.write(
            f"{_fmt_seconds(_duration(span))}  {'  ' * depth}"
            f"{span.get('name')}  ({where}){_fmt_attrs(span)}\n"
        )
        for child in sorted(children.get(span.get("span_id"), ()), key=start_key):
            walk(child, depth + 1)

    out.write(f"trace {trace.get('trace_id')}")
    if trace.get("job_id"):
        out.write(f"  job {trace['job_id']}")
    if trace.get("state"):
        out.write(f"  state={trace['state']}")
    out.write(f"  ({len(spans)} spans)\n")
    for root in sorted(roots, key=start_key):
        walk(root, 1)


def render_self_time(
    trace: Dict[str, object], top: int, out=sys.stdout
) -> None:
    """Print the top-*top* span names by self seconds."""
    spans = [s for s in trace.get("spans", ()) if isinstance(s, dict)]
    table = sum_self_seconds(spans)
    rows = sorted(table.items(), key=lambda item: -item[1][2])[: max(0, top)]
    if not rows:
        out.write("\n(no closed spans)\n")
        return
    out.write(f"\nwhere did the time go (top {len(rows)} by self time):\n")
    out.write(f"{'span':<24}{'count':>7}{'total':>12}{'self':>12}\n")
    for name, (count, total, own) in rows:
        out.write(
            f"{name:<24}{int(count):>7}{total:>11.3f}s{own:>11.3f}s\n"
        )


def render_events(trace: Dict[str, object], out=sys.stdout) -> None:
    """Print span events grouped by name (count + a sample)."""
    events = [e for e in trace.get("events", ()) if isinstance(e, dict)]
    if not events:
        out.write("\n(no span events)\n")
        return
    grouped: Dict[str, List[Dict[str, object]]] = {}
    for entry in events:
        grouped.setdefault(str(entry.get("name")), []).append(entry)
    out.write(f"\nspan events ({len(events)} total):\n")
    for name in sorted(grouped):
        sample = grouped[name][-1].get("attrs") or {}
        out.write(f"  {name:<28}x{len(grouped[name]):<5} last={sample}\n")
    dropped = trace.get("dropped_events")
    if isinstance(dropped, int) and dropped:
        out.write(f"  ({dropped} older events dropped by the ring)\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path", nargs="?", help="trace JSON (or flight-recorder artifact)"
    )
    parser.add_argument("--url", help="live server base URL (with --job)")
    parser.add_argument("--job", help="job id to fetch from --url")
    parser.add_argument(
        "--top", type=int, default=10, help="rows in the self-time table"
    )
    parser.add_argument(
        "--events", action="store_true", help="also print the event summary"
    )
    args = parser.parse_args(argv)

    if args.url or args.job:
        if not (args.url and args.job):
            parser.error("--url and --job go together")
        trace = fetch_trace(args.url, args.job)
    elif args.path:
        trace = load_trace(args.path)
    else:
        parser.error("pass a trace JSON path, or --url + --job")

    render_tree(trace)
    render_self_time(trace, args.top)
    if args.events:
        render_events(trace)
    return 0


if __name__ == "__main__":
    sys.exit(main())
