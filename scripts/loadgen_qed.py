"""Load generator for the serving stack: latency, saturation, fairness.

Drives a QED server with a mix of *polite* clients (paced submissions,
distinct ``X-Client-Id``s) and one *greedy* client (unpaced burst), then
reports per-class p50/p99 end-to-end latency, saturation throughput and
429 counts.  The interesting number is the **fairness ratio**: the polite
clients' contended p99 over their uncontended p99 -- admission control
(per-client token buckets + bounded queue depth, both answering 429 +
Retry-After) is what keeps that ratio small while the greedy client eats
the rejections.

CI runs the self-contained mode and uploads the report::

    PYTHONPATH=src python scripts/loadgen_qed.py --selftest \\
        --json-out loadgen_report.json --check-fairness 4.0

Against a real deployment, point it at the server (solves are the
deterministic selftest sleeps only in ``--selftest`` mode; otherwise you
submit real bug ids)::

    ... loadgen_qed.py --server 127.0.0.1:8123 --bugs wrport_collision

``--bench-json BENCH_bmc.json`` merges the report under a top-level
``loadgen`` key of the benchmark snapshot (``bench_bmc.py --check`` only
gates entries under ``runs``, so the section rides along un-gated).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro.serve.client import ServeClient, ServeError
from repro.serve.keys import JobSpec


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _selftest_spec(solve_seconds: float, tag: str) -> JobSpec:
    """A unique, fully resolved spec for the selftest entry (no caching
    or coalescing across requests -- every submission is a real solve)."""
    return JobSpec(
        bug_id=f"__sleep:{solve_seconds}__",
        version="T.v1",
        fingerprint="f" * 64,
        mode="eddiv",
        focus_opcodes=("LDI",),
        bound=4,
        config={"loadgen_tag": tag},
    )


class ClientRun:
    """One client's request loop: submit -> wait -> record latency."""

    def __init__(
        self,
        url: str,
        client_id: str,
        *,
        requests: int,
        pace_seconds: float,
        solve_seconds: float,
        bug_id: Optional[str],
        timeout: float,
    ) -> None:
        self.client = ServeClient(url, client_id=client_id, retry_backoff=0.05)
        self.client_id = client_id
        self.requests = requests
        self.pace_seconds = pace_seconds
        self.solve_seconds = solve_seconds
        self.bug_id = bug_id
        self.timeout = timeout
        self.latencies: List[float] = []
        self.rejections_429 = 0
        self.retry_after_seen = 0.0
        self.failures = 0

    def run(self, phase: str) -> None:
        for index in range(self.requests):
            start = time.perf_counter()
            view = None
            while True:
                try:
                    if self.bug_id is not None:
                        view = self.client.submit(bug_id=self.bug_id)
                    else:
                        view = self.client.submit(
                            spec=_selftest_spec(
                                self.solve_seconds,
                                f"{phase}-{self.client_id}-{index}",
                            )
                        )
                    break
                except ServeError as exc:
                    if exc.status == 429:
                        # Honor Retry-After: back off exactly as told.
                        self.rejections_429 += 1
                        delay = exc.retry_after or 0.1
                        self.retry_after_seen = max(
                            self.retry_after_seen, delay
                        )
                        time.sleep(delay)
                        continue
                    self.failures += 1
                    return
            try:
                final = (
                    view
                    if view.done
                    else self.client.wait_done(
                        view.job_id, timeout=self.timeout, poll=5.0
                    )
                )
            except ServeError:
                self.failures += 1
                continue
            if final.state != "done":
                self.failures += 1
                continue
            self.latencies.append(time.perf_counter() - start)
            if self.pace_seconds:
                time.sleep(self.pace_seconds)

    def summary(self) -> Dict[str, object]:
        return {
            "client_id": self.client_id,
            "completed": len(self.latencies),
            "p50_ms": round(1e3 * _percentile(self.latencies, 0.50), 3),
            "p99_ms": round(1e3 * _percentile(self.latencies, 0.99), 3),
            "rejections_429": self.rejections_429,
            "max_retry_after_seconds": round(self.retry_after_seen, 3),
            "failures": self.failures,
        }


def _class_summary(runs: List[ClientRun]) -> Dict[str, object]:
    latencies = [l for run in runs for l in run.latencies]
    return {
        "clients": len(runs),
        "completed": len(latencies),
        "p50_ms": round(1e3 * _percentile(latencies, 0.50), 3),
        "p99_ms": round(1e3 * _percentile(latencies, 0.99), 3),
        "rejections_429": sum(run.rejections_429 for run in runs),
        "failures": sum(run.failures for run in runs),
    }


def run_load(url: str, args) -> Dict[str, object]:
    bug_id = args.bugs[0] if args.bugs else None
    common = dict(
        solve_seconds=args.solve_seconds,
        bug_id=bug_id,
        timeout=args.timeout,
    )
    # Phase 1 -- uncontended baseline: one polite client, alone.
    baseline = ClientRun(
        url,
        "polite-baseline",
        requests=args.requests,
        pace_seconds=args.pace_seconds,
        **common,
    )
    baseline.run("base")
    # Phase 2 -- contention: N polite clients plus one greedy burst.
    polite = [
        ClientRun(
            url,
            f"polite-{index}",
            requests=args.requests,
            pace_seconds=args.pace_seconds,
            **common,
        )
        for index in range(args.clients)
    ]
    greedy = ClientRun(
        url,
        "greedy",
        requests=args.greedy_requests,
        pace_seconds=0.0,
        **common,
    )
    threads = [
        threading.Thread(target=run.run, args=("load",), daemon=True)
        for run in polite + [greedy]
    ]
    contended_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    contended_elapsed = time.perf_counter() - contended_start
    completed = sum(len(run.latencies) for run in polite + [greedy])

    polite_summary = _class_summary(polite)
    baseline_summary = baseline.summary()
    fairness = None
    if baseline_summary["p99_ms"] and polite_summary["p99_ms"]:
        fairness = round(
            polite_summary["p99_ms"] / baseline_summary["p99_ms"], 3
        )
    return {
        "mode": "selftest" if bug_id is None else f"bug:{bug_id}",
        "solve_seconds": args.solve_seconds,
        "uncontended_polite": baseline_summary,
        "contended_polite": polite_summary,
        "greedy": greedy.summary(),
        "saturation_throughput_jobs_per_second": round(
            completed / contended_elapsed, 3
        )
        if contended_elapsed
        else None,
        "contended_wall_seconds": round(contended_elapsed, 3),
        "fairness_p99_ratio": fairness,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--server", default=None,
        help="target server URL; omit with --selftest to spawn one",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="spawn an in-process server with the deterministic selftest "
        "entry (CI mode)",
    )
    parser.add_argument(
        "--bugs", nargs="*", default=None,
        help="submit this real bug id instead of selftest sleeps",
    )
    parser.add_argument("--clients", type=int, default=3,
                        help="polite clients in the contention phase")
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per polite client (and baseline)")
    parser.add_argument("--greedy-requests", type=int, default=40,
                        help="unpaced requests from the greedy client")
    parser.add_argument("--pace-seconds", type=float, default=0.15,
                        help="polite inter-request pacing")
    parser.add_argument("--solve-seconds", type=float, default=0.02,
                        help="selftest solve duration per job")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for a spawned server")
    parser.add_argument("--client-rate", type=float, default=10.0,
                        help="admission tokens/second per client for a "
                        "spawned server")
    parser.add_argument("--client-burst", type=float, default=5.0)
    parser.add_argument("--max-queue-depth", type=int, default=32,
                        help="backlog bound for a spawned server")
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--json-out", default=None,
                        help="write the report as JSON to this path")
    parser.add_argument(
        "--bench-json", default=None,
        help="merge the report under a top-level 'loadgen' key of this "
        "BENCH_bmc.json snapshot",
    )
    parser.add_argument(
        "--check-fairness", type=float, default=None, metavar="RATIO",
        help="exit 1 if contended polite p99 exceeds RATIO x the "
        "uncontended p99",
    )
    args = parser.parse_args(argv)
    if args.server is None and not args.selftest:
        parser.error("pass --server URL or --selftest")

    with contextlib.ExitStack() as stack:
        if args.server is not None:
            url = args.server
        else:
            from repro.serve.queue import _selftest_entry
            from repro.serve.server import LocalServer

            cache_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-loadgen-")
            )
            url = stack.enter_context(
                LocalServer(
                    cache_dir=cache_dir,
                    workers=args.workers,
                    entry=_selftest_entry,
                    use_processes=False,
                    max_queue_depth=args.max_queue_depth,
                    admission=dict(
                        rate=args.client_rate, burst=args.client_burst
                    ),
                )
            )
        report = run_load(url, args)

    print(json.dumps(report, indent=2))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")
    if args.bench_json:
        try:
            with open(args.bench_json, "r", encoding="utf-8") as stream:
                bench = json.load(stream)
        except (OSError, json.JSONDecodeError):
            bench = {}
        bench["loadgen"] = report
        with open(args.bench_json, "w", encoding="utf-8") as stream:
            json.dump(bench, stream, indent=2, sort_keys=True)
        print(f"merged loadgen section into {args.bench_json}")

    failures: List[str] = []
    if report["contended_polite"]["failures"] or report["greedy"]["failures"]:
        failures.append("some requests failed outright (not 429s)")
    if args.selftest and not report["greedy"]["rejections_429"]:
        failures.append(
            "greedy client was never throttled -- admission control is "
            "not engaging"
        )
    if args.check_fairness is not None:
        ratio = report["fairness_p99_ratio"]
        if ratio is None:
            failures.append("no fairness ratio (a phase completed nothing)")
        elif ratio > args.check_fairness:
            failures.append(
                f"fairness ratio {ratio} exceeds bound {args.check_fairness}"
            )
    for failure in failures:
        print(f"LOADGEN FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
