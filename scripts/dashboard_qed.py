"""Live terminal dashboard for the QED verification service.

Stdlib-only: polls a running ``scripts/serve_qed.py serve`` instance over
plain HTTP -- ``GET /stats`` for queue counters, ``GET /metrics`` (parsed
with :func:`repro.obs.parse_prometheus`) for cache hit/miss, ``GET /jobs``
to discover work, and ``GET /jobs/<id>/telemetry`` for each job's solver
heartbeats -- then renders one frame per ``--interval``: queue depth,
cache hit rate, per-job search progress (current bound, conflicts,
propagations/s) with a per-bound ETA extrapolated from the bound-cost
growth curve, and the ``BENCH_history.jsonl`` pps trajectory as a
sparkline so a perf trend is visible next to the live numbers.

Usage::

    PYTHONPATH=src python scripts/serve_qed.py serve --port 8123 &
    PYTHONPATH=src python scripts/dashboard_qed.py --server 127.0.0.1:8123
    PYTHONPATH=src python scripts/dashboard_qed.py --server 127.0.0.1:8123 \\
        --once                          # one frame, exit 0 (the CI smoke)
    PYTHONPATH=src python scripts/dashboard_qed.py --job <id> --interval 1

``--once`` renders a single frame and exits 0 (1 when the server is
unreachable), which is how CI smoke-tests the dashboard against the
serve-smoke server.  Without ``--job`` the dashboard follows every job
the server reports via ``GET /jobs``; ``--history ''`` disables the
bench-trajectory panel.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from repro.obs import parse_prometheus

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_HISTORY = os.path.join(REPO_ROOT, "BENCH_history.jsonl")

#: Unicode sparkline ramp (history trajectory panel).
_SPARK = "▁▂▃▄▅▆▇█"
#: History entries rendered in the trajectory panel.
HISTORY_POINTS = 16
#: Job rows rendered per frame (newest first beyond this are dropped).
MAX_JOB_ROWS = 8
#: Per-bound growth ratio clamp for the ETA extrapolation: BMC bound
#: costs grow, but a single noisy ratio must not explode the estimate.
ETA_RATIO_MIN = 1.0
ETA_RATIO_MAX = 6.0


# ----------------------------------------------------------------------
def _get(base: str, path: str, timeout: float) -> Optional[object]:
    """GET ``http://<base><path>`` as parsed JSON (text for /metrics).

    Returns ``None`` on any transport or HTTP error -- a panel that
    cannot be fetched renders as unavailable instead of killing the
    dashboard loop.
    """
    url = f"http://{base}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            body = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, ValueError):
        return None
    if path == "/metrics":
        return body
    try:
        return json.loads(body)
    except ValueError:
        return None


def _spark(values: List[float]) -> str:
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[3] * len(values)
    span = hi - lo
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * len(_SPARK)))]
        for v in values
    )


def _fmt_count(value: float) -> str:
    """1234567 -> ``1.23M`` (terminal columns are precious)."""
    for divisor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= divisor:
            return f"{value / divisor:.2f}{suffix}"
    return f"{value:.0f}"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


# ----------------------------------------------------------------------
def eta_from_bound_curve(
    bound_costs: List[Tuple[int, float]], max_bound: int
) -> Optional[float]:
    """Extrapolate remaining solve time from completed per-bound costs.

    BMC bound costs grow roughly geometrically (each unrolled frame deepens
    every query), so the curve is fit as ``cost[k+1] = r * cost[k]`` with
    ``r`` the geometric mean of the observed consecutive ratios (clamped to
    ``[ETA_RATIO_MIN, ETA_RATIO_MAX]``), and the remaining bounds summed
    under that ratio.  Needs at least two completed bounds with positive
    cost; returns ``None`` otherwise (or when already at ``max_bound``).
    """
    costs = [(bound, cost) for bound, cost in bound_costs if cost > 0.0]
    if len(costs) < 2:
        return None
    last_bound, last_cost = costs[-1]
    remaining = max_bound - last_bound
    if remaining <= 0:
        return None
    log_ratios = []
    for (_, prev), (_, cur) in zip(costs, costs[1:]):
        log_ratios.append(math.log(cur / prev))
    ratio = math.exp(sum(log_ratios) / len(log_ratios))
    ratio = min(ETA_RATIO_MAX, max(ETA_RATIO_MIN, ratio))
    return sum(last_cost * ratio ** step for step in range(1, remaining + 1))


def _job_row(base: str, summary: Dict[str, object], timeout: float) -> str:
    job_id = str(summary.get("job_id"))
    state = str(summary.get("state"))
    label = (
        f"{summary.get('version')}/{summary.get('bug_id')}"
        f" b{summary.get('bound')}"
    )
    row = f"  {job_id:<12} {state:<9} {label:<32}"
    if summary.get("cache_hit"):
        return row + " cache hit"
    telemetry = _get(base, f"/jobs/{job_id}/telemetry", timeout)
    heartbeats: List[Dict[str, object]] = []
    if isinstance(telemetry, dict):
        payload = telemetry.get("telemetry")
        if isinstance(payload, dict):
            heartbeats = [
                hb for hb in payload.get("heartbeats", [])
                if isinstance(hb, dict)
            ]
    if not heartbeats:
        return row + " (no heartbeats yet)"
    latest = heartbeats[-1]
    bounds = [
        (int(hb.get("bound", 0)), float(hb.get("bound_seconds", 0.0)))
        for hb in heartbeats
        if hb.get("site") == "bound"
    ]
    parts = []
    if bounds:
        parts.append(f"bound {bounds[-1][0]}/{summary.get('bound')}")
    elif "bound" in latest:
        parts.append(f"bound {latest['bound']}/{summary.get('bound')}")
    # Heartbeats may interleave several solver processes / queries; the
    # max conflict count is the deepest search any of them reported.
    conflicts = max(float(hb.get("conflicts", 0) or 0) for hb in heartbeats)
    parts.append(f"conf {_fmt_count(conflicts)}")
    pps = 0.0
    for hb in reversed(heartbeats):
        pps = float(hb.get("pps", 0.0) or 0.0)
        if pps > 0.0:
            break
    if pps > 0.0:
        parts.append(f"pps {_fmt_count(pps)}")
    if state == "running":
        eta = eta_from_bound_curve(bounds, int(summary.get("bound", 0)))
        if eta is not None:
            parts.append(f"eta ~{_fmt_seconds(eta)}")
    return row + " " + "  ".join(parts)


# ----------------------------------------------------------------------
def _history_panel(path: str) -> List[str]:
    """Render the ``BENCH_history.jsonl`` pps trajectory per run name."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            raw_lines = stream.readlines()
    except OSError:
        return []
    entries = []
    for raw in raw_lines:
        raw = raw.strip()
        if not raw:
            continue
        try:
            entry = json.loads(raw)
        except ValueError:
            continue
        if isinstance(entry, dict):
            entries.append(entry)
    entries = entries[-HISTORY_POINTS:]
    if not entries:
        return []
    series: Dict[str, List[float]] = {}
    for entry in entries:
        runs = entry.get("runs")
        if not isinstance(runs, dict):
            continue
        for name, run in runs.items():
            if not isinstance(run, dict):
                continue
            pps = float(run.get("propagations_per_second", 0.0) or 0.0)
            if pps > 0.0:
                series.setdefault(name, []).append(pps)
    lines = [
        f"bench history ({os.path.basename(path)}, last "
        f"{len(entries)} entries, commit "
        f"{entries[-1].get('commit', 'unknown')}):"
    ]
    for name in sorted(series):
        points = series[name]
        if len(points) < 2:
            continue
        trend = points[-1] / points[0]
        lines.append(
            f"  {name:<40} {_spark(points)}  "
            f"pps {_fmt_count(points[-1])} ({trend:.2f}x of oldest)"
        )
    return lines if len(lines) > 1 else []


# ----------------------------------------------------------------------
def render_frame(
    base: str,
    *,
    job_ids: List[str],
    history_path: str,
    timeout: float,
) -> Tuple[List[str], bool]:
    """One dashboard frame; ``(lines, server_reachable)``."""
    lines = [
        f"QED serve dashboard -- http://{base}    "
        + time.strftime("%Y-%m-%d %H:%M:%S")
    ]
    payload = _get(base, "/stats", timeout)
    if not isinstance(payload, dict):
        lines.append(f"  server http://{base} unreachable")
        return lines, False
    # /stats nests the queue counters under "queue" (plus "cache"/"http").
    stats = payload.get("queue")
    if not isinstance(stats, dict):
        stats = payload
    submitted = int(stats.get("jobs_submitted", 0))
    hits = int(stats.get("cache_hits", 0))
    hit_rate = (100.0 * hits / submitted) if submitted else 0.0
    pool = "processes" if stats.get("use_processes") else "threads"
    lines.append(
        f"queue     : {stats.get('queued', 0)} queued / "
        f"{stats.get('running', 0)} running / "
        f"{stats.get('jobs_tracked', 0)} tracked   "
        f"workers {stats.get('workers')} ({pool})"
        + ("   DRAINING" if stats.get("draining") else "")
    )
    lines.append(
        f"jobs      : {submitted} submitted / {hits} cache hits "
        f"({hit_rate:.1f}% hit rate) / {stats.get('coalesced', 0)} "
        f"coalesced / {stats.get('failed', 0)} failed / "
        f"{stats.get('retried', 0)} retried"
    )
    lines.append(
        f"fabric    : {stats.get('executed', 0)} executed / "
        f"{stats.get('deadline_expired', 0)} deadline-expired / "
        f"{stats.get('quarantined', 0)} quarantined / flight "
        f"{stats.get('flight_dumps', 0)} dumps "
        f"{stats.get('flight_evictions', 0)} evicted"
    )
    fleet = stats.get("fleet")
    if isinstance(fleet, dict):
        workers = fleet.get("workers") or {}
        lines.append(
            f"fleet     : {workers.get('live', 0)} live / "
            f"{workers.get('suspect', 0)} suspect / "
            f"{workers.get('dead', 0)} dead   "
            f"leases {fleet.get('leases_outstanding', 0)} out / "
            f"{fleet.get('leases_expired', 0)} expired / "
            f"{fleet.get('lease_reassignments', 0)} reassigned   "
            f"fenced {fleet.get('fenced_commits_rejected', 0)}"
        )
        table = fleet.get("workers_table")
        if isinstance(table, list) and table:
            for row in table[:MAX_JOB_ROWS]:
                if not isinstance(row, dict):
                    continue
                lines.append(
                    f"  {str(row.get('worker_id', '?'))[:24]:<24} "
                    f"{str(row.get('state', '?')):<8} "
                    f"leases {row.get('leases', 0)}  "
                    f"done {row.get('jobs_done', 0)}  "
                    f"beats {row.get('heartbeats', 0)}  "
                    f"seen {float(row.get('last_seen_seconds_ago', 0.0)):.1f}s ago"
                )
            if len(table) > MAX_JOB_ROWS:
                lines.append(f"  ... {len(table) - MAX_JOB_ROWS} more workers")
    metrics_text = _get(base, "/metrics", timeout)
    if isinstance(metrics_text, str):
        try:
            metrics = parse_prometheus(metrics_text)
        except ValueError:
            metrics = {}
        cache_hits = metrics.get("qed_cache_hits", 0.0)
        cache_misses = metrics.get("qed_cache_misses", 0.0)
        lines.append(
            f"metrics   : qed_cache {cache_hits:.0f} hit / "
            f"{cache_misses:.0f} miss, "
            f"qed_queue_depth {metrics.get('qed_queue_depth', 0.0):.0f}, "
            f"{len(metrics)} series exported"
        )
    summaries = []
    if job_ids:
        for job_id in job_ids:
            payload = _get(base, f"/jobs/{job_id}", timeout)
            if isinstance(payload, dict) and isinstance(
                payload.get("job"), dict
            ):
                job = payload["job"]
                spec = job.get("spec") or {}
                summaries.append(
                    {
                        "job_id": job.get("job_id"),
                        "state": job.get("state"),
                        "bug_id": spec.get("bug_id"),
                        "version": spec.get("version"),
                        "bound": spec.get("bound", 0),
                        "cache_hit": job.get("cache_hit", False),
                    }
                )
    else:
        listing = _get(base, "/jobs", timeout)
        if isinstance(listing, dict) and isinstance(
            listing.get("jobs"), list
        ):
            summaries = [
                row for row in listing["jobs"] if isinstance(row, dict)
            ]
    if summaries:
        lines.append(f"jobs ({len(summaries)} tracked):")
        # Live jobs first, then newest terminal ones, bounded per frame.
        running = [s for s in summaries if s.get("state") == "running"]
        rest = [s for s in summaries if s.get("state") != "running"]
        shown = (running + rest[::-1])[:MAX_JOB_ROWS]
        for summary in shown:
            lines.append(_job_row(base, summary, timeout))
        if len(summaries) > len(shown):
            lines.append(f"  ... {len(summaries) - len(shown)} more")
    else:
        lines.append("jobs      : none tracked yet")
    if history_path:
        lines.extend(_history_panel(history_path))
    return lines, True


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--server", default="127.0.0.1:8123",
        help="host:port of the serve_qed.py server (default 127.0.0.1:8123)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between frames (default 2.0)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (0 = server reachable); the CI "
        "dashboard smoke",
    )
    parser.add_argument(
        "--job", action="append", default=None, metavar="JOB_ID",
        help="follow only this job id (repeatable; default: GET /jobs)",
    )
    parser.add_argument(
        "--history", default=DEFAULT_HISTORY,
        help="BENCH_history.jsonl to render as a trajectory panel "
        "(default: repo root; '' disables)",
    )
    parser.add_argument(
        "--timeout", type=float, default=5.0,
        help="per-request HTTP timeout in seconds (default 5)",
    )
    args = parser.parse_args(argv)

    while True:
        lines, reachable = render_frame(
            args.server,
            job_ids=args.job or [],
            history_path=args.history,
            timeout=args.timeout,
        )
        if args.once:
            print("\n".join(lines))
            return 0 if reachable else 1
        # Clear + home between frames; plain prints keep it pipe-safe.
        sys.stdout.write("\x1b[2J\x1b[H" + "\n".join(lines) + "\n")
        sys.stdout.flush()
        try:
            time.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    sys.exit(main())
