"""Command-line front end of the verification service (:mod:`repro.serve`).

Subcommands::

    serve     -- run a standalone server:
                 PYTHONPATH=src python scripts/serve_qed.py serve --port 8123
    submit    -- submit one bug-detection job (optionally wait for it):
                 ... serve_qed.py submit --server 127.0.0.1:8123 \\
                     --bug wrport_collision --wait
    campaign  -- run the full 16-version campaign through a server; with no
                 --server an in-process server is spawned for the run:
                 ... serve_qed.py campaign --via-server --workers 2
                 Run it twice with the same --cache-dir to see the second
                 pass answered entirely from the result cache.
    smoke     -- the CI gate: boot an in-process server, run one EDDI-V
                 job, check the verdict against a direct detect_bug() call,
                 and check that an identical resubmission is a cache hit.
    worker    -- join a server's fleet from this host: pull jobs under
                 leases, heartbeat, commit with the fence token:
                 ... serve_qed.py worker --server 127.0.0.1:8123
    fleet-smoke -- the CI fleet gate: boot a fleet-only server (workers=0),
                 attach a remote worker, SIGKILL it mid-solve, attach a
                 second worker, and assert the recovered verdicts are
                 byte-identical to direct detect_bug() calls with exactly
                 one lease reassignment on /metrics.

Everything is stdlib-only; the server spawned here is the same stack the
tests exercise (:class:`repro.serve.LocalServer`).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys
import tempfile
import threading
import time
from typing import List, Optional

from repro.eval.campaign import (
    CampaignConfig,
    detect_bug,
    record_comparable_dict,
)
from repro.eval.report import detection_breakdown, serving_statistics
from repro.serve import LocalServer, ServeClient, run_campaign_via_server

SMOKE_BUG = "wrport_collision"  # EDDI-V interaction bug, ~2 s solve


def _campaign_config(args) -> CampaignConfig:
    return CampaignConfig(
        bug_ids=args.bugs or None,
        run_industrial_flow=not args.no_industrial,
        run_directed_tests=not args.no_dst,
    )


@contextlib.contextmanager
def _client_for(args, *, workers: int):
    """A client for --server, or for a freshly spawned in-process server."""
    if args.server:
        yield ServeClient(args.server)
        return
    cache_dir = args.cache_dir
    with contextlib.ExitStack() as stack:
        if cache_dir is None:
            cache_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-serve-")
            )
        url = stack.enter_context(LocalServer(cache_dir=cache_dir, workers=workers))
        yield ServeClient(url)


# ----------------------------------------------------------------------
def cmd_serve(args) -> int:
    state_path = os.path.join(args.cache_dir, "queue_state.json")
    admission = None
    if args.client_rate is not None:
        admission = dict(
            rate=args.client_rate,
            burst=args.client_burst
            if args.client_burst is not None
            else 2.0 * args.client_rate,
        )
    server = LocalServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        state_path=state_path,
        fleet=args.fleet or args.workers == 0,
        fleet_kwargs=dict(
            lease_seconds=args.lease_seconds,
            heartbeat_seconds=args.heartbeat_seconds,
        ),
        admission=admission,
        max_queue_depth=args.max_queue_depth,
    )
    # SIGTERM (systemd stop, `kill`, container shutdown) drains gracefully:
    # running solves finish and are cached, queued work is persisted to
    # queue_state.json, and the next start of this command resumes it.
    stop_signal = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop_signal.set())
    url = server.start()
    print(f"serving on {url} (cache: {args.cache_dir}, workers: {args.workers})")
    print("POST /jobs | GET /jobs/<id>?wait= | GET /results/<key> | GET /stats")
    if args.fleet or args.workers == 0:
        print(
            f"fleet mode: POST /fleet/* (lease {args.lease_seconds}s, "
            f"heartbeat {args.heartbeat_seconds}s) -- attach workers with "
            f"`serve_qed.py worker --server {url}`"
        )
    try:
        while not stop_signal.wait(timeout=1.0):
            pass
        print("SIGTERM: draining (running solves finish, queue is persisted)")
        state = server.drain()
        print(
            f"drained; {len(state.get('queued') or [])} queued job(s) "
            f"persisted to {state_path}"
        )
    except KeyboardInterrupt:
        print("shutting down")
    server.stop()
    return 0


def cmd_submit(args) -> int:
    client = ServeClient(args.server)
    view = client.submit(
        bug_id=args.bug, config=_campaign_config(args), priority=args.priority
    )
    print(
        f"job {view.job_id}: {view.state}"
        + (" (cache hit)" if view.cache_hit else "")
    )
    if args.wait and not view.done:
        view = client.wait_done(
            view.job_id,
            timeout=args.timeout,
            on_progress=lambda e: print(
                f"  bound {e.get('bound')}: {e.get('verdict')}"
            ),
        )
    print(json.dumps(view.record if view.record else {"state": view.state}, indent=2))
    return 0 if view.state in ("queued", "running", "done") else 1


def cmd_campaign(args) -> int:
    config = _campaign_config(args)
    with _client_for(args, workers=args.workers) as client:
        start = time.perf_counter()
        campaign = run_campaign_via_server(client, config)
        elapsed = time.perf_counter() - start
        hits = sum(1 for r in campaign.records if r.served_from_cache)
        print(
            f"{len(campaign.records)} bugs in {elapsed:.1f}s "
            f"({hits} served from cache)"
        )
        breakdown = detection_breakdown(campaign)
        print(
            f"Symbolic QED detected {breakdown['symbolic_qed_detected']}"
            f"/{breakdown['total_bugs']} bugs; industrial flow "
            f"{breakdown['industrial_flow_detected']}/{breakdown['total_bugs']}"
        )
        print(json.dumps(serving_statistics(client.stats()), indent=2))
    return 0


def cmd_smoke(args) -> int:
    """CI smoke: served verdict == direct verdict, resubmission hits cache."""
    config = CampaignConfig(
        bug_ids=[SMOKE_BUG], run_industrial_flow=False, run_directed_tests=False
    )
    failures: List[str] = []
    with _client_for(args, workers=args.workers) as client:
        view = client.submit(bug_id=SMOKE_BUG, config=config)
        if view.cache_hit and args.server is None:
            failures.append("cold submission reported a cache hit")
        final = view if view.done else client.wait_done(view.job_id, timeout=args.timeout)
        if final.state != "done" or final.record is None:
            failures.append(f"job ended {final.state}: {final.error}")
        else:
            from repro.eval.campaign import record_from_json_dict

            direct = detect_bug(SMOKE_BUG, config)
            served = record_from_json_dict(final.record)
            if record_comparable_dict(direct) != record_comparable_dict(served):
                failures.append("served record differs from direct detect_bug()")
            if not served.detected_by.get("eddiv"):
                failures.append("EDDI-V did not detect the smoke bug")
        second = client.submit(bug_id=SMOKE_BUG, config=config)
        if not second.cache_hit:
            failures.append("identical resubmission was not a cache hit")
        if second.record is None or not second.record.get("served_from_cache"):
            failures.append("cache-served record lacks provenance")
        # The /metrics scrape must reflect what just happened: at least
        # the warm resubmission as a cache hit, and both submissions on
        # the queue counter.  A zero here means the instrumentation came
        # unwired, even though the jobs themselves succeeded.
        from repro.obs.metrics import parse_prometheus

        metrics = parse_prometheus(client.metrics_text())
        if not metrics.get("qed_cache_hits_total"):
            failures.append("/metrics reports zero qed_cache_hits_total")
        if not metrics.get("qed_jobs_submitted_total"):
            failures.append("/metrics reports zero qed_jobs_submitted_total")
        if args.trace_out:
            trace = client.trace(view.job_id)
            with open(args.trace_out, "w", encoding="utf-8") as stream:
                json.dump(trace, stream, indent=2, sort_keys=True)
            print(f"wrote {args.trace_out} (smoke job trace)")
        stats = serving_statistics(client.stats())
        print(json.dumps(stats, indent=2))
    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("serve smoke OK: served verdict matches direct, resubmission hit cache")
    return 0


def cmd_worker(args) -> int:
    """Join a server's fleet: pull jobs under leases until SIGTERM'd."""
    from repro.serve.fleet import FleetWorker

    stop = threading.Event()
    # SIGTERM exits gracefully: the current lease finishes and commits,
    # then the worker deregisters.  SIGKILL is the chaos path -- the
    # coordinator recovers the job via lease expiry.
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    worker = FleetWorker(
        args.server,
        worker_id=args.id,
        use_processes=not args.use_threads,
        poll_seconds=args.poll,
        max_jobs=args.max_jobs,
        stop_event=stop,
    )
    print(f"worker {worker.worker_id} pulling from {args.server}", flush=True)
    try:
        stats = worker.run()
    except KeyboardInterrupt:
        worker.stop()
        stats = worker.stats_dict()
    print(json.dumps(stats, indent=2))
    return 0


def _spawn_worker_process(url: str, worker_id: str):
    """Launch `serve_qed.py worker` as a real OS process (SIGKILL-able)."""
    import subprocess

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, __file__, "worker", "--server", url, "--id", worker_id],
        env=env,
    )


def cmd_fleet_smoke(args) -> int:
    """CI fleet gate: kill a remote worker mid-solve, verify full recovery.

    Boots a fleet-only server (no local executors), attaches worker A,
    submits two solves, SIGKILLs A while it holds a lease, attaches
    worker B, and requires: both verdicts byte-identical to direct
    ``detect_bug()`` runs, exactly one lease reassignment on /metrics,
    and zero fence violations slipping through.
    """
    from repro.eval.campaign import record_from_json_dict
    from repro.obs.metrics import parse_prometheus

    bug_ids = args.bugs or [SMOKE_BUG, "alu_after_load"]
    config = CampaignConfig(
        bug_ids=bug_ids, run_industrial_flow=False, run_directed_tests=False
    )
    failures: List[str] = []
    procs = []
    with contextlib.ExitStack() as stack:
        cache_dir = args.cache_dir or stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-fleet-")
        )
        url = stack.enter_context(
            LocalServer(
                cache_dir=cache_dir,
                workers=0,  # fleet-only: every solve must go remote
                fleet=True,
                fleet_kwargs=dict(lease_seconds=3.0, heartbeat_seconds=0.5),
            )
        )
        stack.callback(
            lambda: [p.kill() for p in procs if p.poll() is None]
        )
        client = ServeClient(url)
        health = client.healthz()
        if health.get("ok") or not health.get("no_executors"):
            failures.append(
                "fleet-only server claimed readiness with no workers attached"
            )
        views = [
            client.submit(bug_id=bug_id, config=config) for bug_id in bug_ids
        ]
        procs.append(_spawn_worker_process(url, "smoke-a"))
        # Wait for worker A to hold a lease (i.e. be mid-solve), then
        # SIGKILL it -- no deregister, no final heartbeat, just silence.
        deadline = time.monotonic() + args.timeout
        leased = False
        while time.monotonic() < deadline:
            table = client.fleet().get("workers_table", [])
            if any(
                w["worker_id"] == "smoke-a" and w["leases"] > 0 for w in table
            ):
                leased = True
                break
            time.sleep(0.05)
        if not leased:
            failures.append("worker A never acquired a lease")
        else:
            procs[0].kill()
            procs[0].wait()
            procs.append(_spawn_worker_process(url, "smoke-b"))
        records = {}
        for bug_id, view in zip(bug_ids, views):
            try:
                final = client.wait_done(view.job_id, timeout=args.timeout)
            except Exception as exc:
                failures.append(f"{bug_id}: wait failed: {exc}")
                continue
            if final.state != "done" or final.record is None:
                failures.append(f"{bug_id}: job ended {final.state}: {final.error}")
            else:
                records[bug_id] = final.record
        for bug_id, record in records.items():
            direct = detect_bug(bug_id, config)
            served = record_from_json_dict(record)
            if record_comparable_dict(direct) != record_comparable_dict(served):
                failures.append(
                    f"{bug_id}: recovered record differs from direct detect_bug()"
                )
        metrics = parse_prometheus(client.metrics_text())
        reassignments = metrics.get("qed_fleet_lease_reassignments_total", 0)
        if leased and reassignments != 1:
            failures.append(
                f"expected exactly 1 lease reassignment, saw {reassignments}"
            )
        fleet_stats = client.fleet()
        print(
            json.dumps(
                {
                    "bugs": sorted(records),
                    "lease_reassignments": reassignments,
                    "fenced_commits_rejected": fleet_stats.get(
                        "fenced_commits_rejected"
                    ),
                    "workers": fleet_stats.get("workers"),
                },
                indent=2,
            )
        )
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=30)
    if failures:
        for failure in failures:
            print(f"FLEET SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print(
        "fleet smoke OK: SIGKILLed worker's job reassigned via lease expiry, "
        "verdicts byte-identical to direct runs"
    )
    return 0


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)

    def add_common(sub, *, server_required: bool) -> None:
        sub.add_argument(
            "--server",
            default=None,
            required=server_required,
            help="server URL (host:port); omit to spawn an in-process server",
        )
        sub.add_argument(
            "--workers", type=int, default=1,
            help="worker processes for a spawned server (default 1)",
        )
        sub.add_argument(
            "--cache-dir", default=None,
            help="result-cache directory for a spawned server "
            "(default: a temporary directory)",
        )
        sub.add_argument(
            "--timeout", type=float, default=600.0,
            help="per-job wait budget in seconds (default 600)",
        )
        sub.add_argument("--bugs", nargs="*", default=None, help="bug ids to run")
        sub.add_argument(
            "--no-industrial", action="store_true",
            help="skip the CRS/OCS-FV industrial-flow baselines",
        )
        sub.add_argument(
            "--no-dst", action="store_true", help="skip the directed suite"
        )

    serve = commands.add_parser("serve", help="run a standalone server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8123)
    serve.add_argument(
        "--workers", type=int, default=2,
        help="local solver processes; 0 = fleet-only (remote workers "
        "do all solving)",
    )
    serve.add_argument("--cache-dir", default=".repro_cache")
    serve.add_argument(
        "--fleet", action="store_true",
        help="accept remote workers via POST /fleet/* (implied by "
        "--workers 0)",
    )
    serve.add_argument(
        "--lease-seconds", type=float, default=15.0,
        help="remote job lease TTL; heartbeats renew it (default 15)",
    )
    serve.add_argument(
        "--heartbeat-seconds", type=float, default=2.0,
        help="worker heartbeat interval; suspect after 2 missed beats, "
        "dead after 4 (default 2)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=None,
        help="bound the submission backlog; overflow answers 429 + "
        "Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--client-rate", type=float, default=None,
        help="per-client token-bucket refill rate (jobs/second); enables "
        "admission fairness (default: off)",
    )
    serve.add_argument(
        "--client-burst", type=float, default=None,
        help="per-client bucket capacity (default: 2x --client-rate)",
    )
    serve.set_defaults(func=cmd_serve)

    worker = commands.add_parser(
        "worker", help="join a server's fleet as a remote solve worker"
    )
    worker.add_argument(
        "--server", required=True, help="coordinator URL (host:port)"
    )
    worker.add_argument(
        "--id", default=None,
        help="worker id (default: w-<hostname>-<pid>)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.5,
        help="idle poll interval when the queue is empty (default 0.5s)",
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None,
        help="exit after serving this many leases (default: run forever)",
    )
    worker.add_argument(
        "--use-threads", action="store_true",
        help="solve on a thread instead of a killable child process "
        "(test/debug mode)",
    )
    worker.set_defaults(func=cmd_worker)

    fleet_smoke = commands.add_parser(
        "fleet-smoke", help="CI fleet gate (kill a worker, verify recovery)"
    )
    fleet_smoke.add_argument("--bugs", nargs="*", default=None)
    fleet_smoke.add_argument("--cache-dir", default=None)
    fleet_smoke.add_argument(
        "--timeout", type=float, default=600.0,
        help="overall wait budget per phase in seconds (default 600)",
    )
    fleet_smoke.set_defaults(func=cmd_fleet_smoke)

    submit = commands.add_parser("submit", help="submit one job")
    add_common(submit, server_required=True)
    submit.add_argument("--bug", required=True, help="bug id (see repro.uarch.bugs)")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument(
        "--wait", action="store_true", help="long-poll until the job finishes"
    )
    submit.set_defaults(func=cmd_submit)

    campaign = commands.add_parser(
        "campaign", help="run the detection campaign through a server"
    )
    add_common(campaign, server_required=False)
    campaign.add_argument(
        "--via-server", action="store_true",
        help="accepted for symmetry with run_campaign() docs (this "
        "subcommand always goes through the server)",
    )
    campaign.set_defaults(func=cmd_campaign)

    smoke = commands.add_parser("smoke", help="CI smoke gate")
    add_common(smoke, server_required=False)
    smoke.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the smoke job's span trace as JSON to PATH "
        "(CI uploads it as an artifact)",
    )
    smoke.set_defaults(func=cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
