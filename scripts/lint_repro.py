"""Run the full static verification toolchain over the repository.

Four passes, all static (no solving):

1. **Code lint** (:mod:`repro.analysis.code_lint`): determinism and
   hot-loop checks over every file in ``src/repro`` and ``scripts``.
2. **Fork-safety lint**: lock/asyncio reachability from fork-pool worker
   entry points, over ``dist``, ``serve`` and the campaign runner.
3. **Design lint** (:mod:`repro.analysis.netlist_lint`): structural checks
   over every registered design version (elaborated at the default arch)
   plus the bug-library sanity diff (each buggy version's netlist delta
   against its clean base must stay inside its declared signals).
4. **mypy --strict** over the typed core (``sat``/``bmc``/``expr``), when
   mypy is importable.  The container image does not ship mypy, so this
   pass silently skips locally and runs in CI (the ``lint`` job installs
   it); the skip is reported in the summary.

Exit status is non-zero iff any pass produced an error-severity finding
(warnings never fail the run).  This script is the CI ``lint`` job's entry
point.

Usage::

    PYTHONPATH=src python scripts/lint_repro.py            # everything
    PYTHONPATH=src python scripts/lint_repro.py --json     # machine-readable
    PYTHONPATH=src python scripts/lint_repro.py --skip-designs   # fast, AST only
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time
from typing import Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis.code_lint import lint_file, lint_fork_safety  # noqa: E402
from repro.analysis.findings import LintReport  # noqa: E402
from repro.analysis.netlist_lint import (  # noqa: E402
    lint_bug_library,
    lint_version_design,
)

#: File sets, relative to the repo root.
CODE_GLOBS = ("src/repro/**/*.py", "scripts/*.py")
FORK_GLOBS = (
    "src/repro/dist/*.py",
    "src/repro/serve/*.py",
    "src/repro/eval/campaign.py",
    # The chaos-harness fault injector fires inside forked workers (its
    # crash/delay/mangle sites are called from fork entry points), so it
    # is held to the same no-locks/no-asyncio reachability rule.
    "src/repro/faults.py",
    # The observability layer's collectors/registries are inherited by
    # every forked worker (the faults._INJECTOR pattern) and record from
    # inside them, so the whole package is in scope too.
    "src/repro/obs/*.py",
)
#: Packages held to ``mypy --strict`` (via mypy.ini per-module sections).
TYPED_CORE = ("src/repro/sat", "src/repro/bmc", "src/repro/expr")


def _expand(patterns) -> List[str]:
    paths: List[str] = []
    for pattern in patterns:
        paths.extend(
            glob.glob(os.path.join(REPO_ROOT, pattern), recursive=True)
        )
    return sorted(set(paths))


def run_code_lint() -> LintReport:
    report = LintReport(subject="code")
    for path in _expand(CODE_GLOBS):
        report.extend(lint_file(path))
    return report


def run_fork_lint() -> LintReport:
    return lint_fork_safety(_expand(FORK_GLOBS))


def run_design_lint() -> LintReport:
    from repro.uarch.versions import ALL_VERSIONS

    report = LintReport(subject="designs")
    for version in ALL_VERSIONS:
        report.extend(lint_version_design(version))
    report.extend(lint_bug_library())
    return report


def run_mypy() -> tuple:
    """(report, ran) -- ran is False when mypy is not installed."""
    report = LintReport(subject="mypy")
    try:
        from mypy import api as mypy_api
    except ImportError:
        return report, False
    stdout, stderr, status = mypy_api.run(
        ["--config-file", os.path.join(REPO_ROOT, "mypy.ini")]
        + [os.path.join(REPO_ROOT, pkg) for pkg in TYPED_CORE]
    )
    if status != 0:
        for line in stdout.splitlines():
            if ": error:" in line:
                where, _, message = line.partition(": error:")
                report.add("mypy.error", where.strip(), message.strip())
        if not report.errors:  # crashed rather than found errors
            report.add("mypy.run", "mypy", stderr.strip() or stdout.strip())
    return report, True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", action="store_true", help="emit one JSON object"
    )
    parser.add_argument(
        "--skip-designs",
        action="store_true",
        help="skip design elaboration passes (AST + mypy only)",
    )
    parser.add_argument(
        "--skip-mypy", action="store_true", help="skip the mypy pass"
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    reports: Dict[str, LintReport] = {"code": run_code_lint()}
    reports["fork-safety"] = run_fork_lint()
    if not args.skip_designs:
        reports["designs"] = run_design_lint()
    mypy_ran = False
    if not args.skip_mypy:
        mypy_report, mypy_ran = run_mypy()
        if mypy_ran:
            reports["mypy"] = mypy_report
    elapsed = time.perf_counter() - start

    total_errors = sum(len(r.errors) for r in reports.values())
    total_warnings = sum(len(r.warnings) for r in reports.values())

    if args.json:
        print(
            json.dumps(
                {
                    "ok": total_errors == 0,
                    "errors": total_errors,
                    "warnings": total_warnings,
                    "mypy_ran": mypy_ran,
                    "seconds": round(elapsed, 3),
                    "passes": {
                        name: report.to_json_dict()
                        for name, report in reports.items()
                    },
                },
                indent=2,
            )
        )
    else:
        for name, report in reports.items():
            status = "ok" if report.ok else "FAIL"
            print(
                f"[{status}] {name}: {len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s)"
            )
            for finding in report.findings:
                print("    " + finding.render())
        if not args.skip_mypy and not mypy_ran:
            print("[skip] mypy: not installed (CI installs it)")
        print(
            f"lint: {total_errors} error(s), {total_warnings} warning(s) "
            f"in {elapsed:.1f}s"
        )
    return 1 if total_errors else 0


if __name__ == "__main__":
    sys.exit(main())
