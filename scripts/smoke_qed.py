"""Developer smoke test for the Symbolic QED harness (not part of the suite)."""
import sys
import time

from repro.isa.arch import TINY_PROFILE
from repro.qed import QEDMode, SingleIChecker, SymbolicQED


def try_qed(version, mode, max_bound=10, expect=None, **kw):
    t0 = time.time()
    h = SymbolicQED(version, mode=mode, arch=TINY_PROFILE, **kw)
    res = h.check(max_bound=max_bound)
    dt = time.time() - t0
    print(
        f"{version:5s} {mode.value:10s} bound<={max_bound}: "
        f"violation={res.found_violation} cyc={res.counterexample_cycles} "
        f"instr={res.counterexample_instructions} bmc={res.runtime_seconds:.1f}s "
        f"total={dt:.1f}s vars={res.bmc_result.num_sat_variables} "
        f"cls={res.bmc_result.num_sat_clauses}"
        + (f"  [expect {expect}]" if expect is not None else ""),
        flush=True,
    )
    return res


def main():
    which = sys.argv[1] if len(sys.argv) > 1 else "all"
    if which in ("all", "clean"):
        try_qed("B.v6", QEDMode.EDDIV, max_bound=7, expect=False)
    if which in ("all", "eddiv"):
        try_qed("A.v3", QEDMode.EDDIV, max_bound=9, expect=True)
    if which in ("all", "cf"):
        try_qed("A.v4", QEDMode.EDDIV_CF, max_bound=9, expect=True)
        try_qed("B.v6", QEDMode.EDDIV_CF, max_bound=6, expect=False)
    if which in ("all", "mem"):
        try_qed("A.v5", QEDMode.EDDIV_MEM, max_bound=10, expect=True,
                tracked_registers=(0,))
        try_qed("B.v6", QEDMode.EDDIV_MEM, max_bound=8, expect=False,
                tracked_registers=(0,))
    if which in ("all", "singlei"):
        for version, expect in [("A.v6", ["SRA"]), ("A.v8", ["CMPI"]), ("B.v6", [])]:
            t0 = time.time()
            checker = SingleIChecker(version, arch=TINY_PROFILE)
            results = checker.check_all()
            bad = checker.violated_instructions(results)
            print(
                f"single-i {version}: violated={bad} expect={expect} "
                f"({time.time()-t0:.1f}s for {len(results)} properties)",
                flush=True,
            )


if __name__ == "__main__":
    main()
