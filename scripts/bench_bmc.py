"""Benchmark the BMC formula-reduction pipeline and track the perf trajectory.

Each run records wall-clock, solver work (conflicts, decisions, propagations),
solver-only time (``solve_seconds``, excluding encode/preprocess) and the
derived propagation throughput (``propagations_per_second``), the
learned-clause database carried across bounds, formula sizes, and the
reduction achieved by each pipeline stage (AIG cone of influence, CNF
preprocessing).  The default invocation writes ``BENCH_bmc.json`` at the repo
root so the numbers are tracked across PRs; ``--check`` compares a fresh run
against a committed baseline and fails on a >2x wall-clock regression, a
``frames_proven`` decrease, or a propagation-throughput drop below 0.6x of
the baseline (regression-only: the metric is wall-clock-derived), which is
how CI gates the hot path.  With ``--via-server`` the serving stack is
benchmarked too -- cold/warm campaign passes plus p50/p99 warm-hit latency
-- and those ``serve/*`` runs are gated at a looser 4x (HTTP + process-pool
noise).  ``--profile-out`` additionally dumps cProfile
stats of the dense depth run for profile-guided follow-up work.

Every invocation also appends a one-line summary (commit hash, whether
observability was live, per-run wall-clock/pps/frames) to
``BENCH_history.jsonl`` at the repo root, giving each ``BENCH_bmc.json``
snapshot an attributable trajectory.  ``--check`` reads that history for
*trend detection*: a run whose propagation throughput declined
monotonically across the last ``TREND_WINDOW`` entries fails the gate even
when every individual step clears the 0.6x floor -- slow rot compounds.
``scripts/dashboard_qed.py`` renders the same history as a live
trajectory.  ``--telemetry`` installs a live
:class:`repro.obs.telemetry.TelemetrySink` first, so the gated numbers
measure the heartbeat-sampling overhead.

Profiles::

    counter  -- synthetic counter designs only (seconds; no QED harness)
    fast     -- counter + the Table-2 detection run (A.v3 EDDI-V), the
                clean-design soundness proof (B.v6), the conflict-budgeted
                QED-CF depth run (``frames_proven`` is its metric) and a
                2-worker distributed smoke; the CI profile
    full     -- fast + the QED-mem detection run (A.v5, bound 9)

Depth runs are gated on ``frames_proven`` as well as wall-clock: a fresh
run proving *fewer* frames than the baseline under the same conflict budget
fails ``--check`` even when it is fast (depth, not speed, is what the
budget ablations track).  Distributed runs record per-cube statistics
(verdict, conflicts, re-splits, clause sharing) in the JSON report.

Usage::

    PYTHONPATH=src python scripts/bench_bmc.py                   # fast -> BENCH_bmc.json
    PYTHONPATH=src python scripts/bench_bmc.py --profile counter --json-out -
    PYTHONPATH=src python scripts/bench_bmc.py --check BENCH_bmc.json
    PYTHONPATH=src python scripts/bench_bmc.py --qed A.v3 \\
        --mode eddiv --bound 8 --focus LDI MOV INC ADD           # ad-hoc QED run
    PYTHONPATH=src python scripts/bench_bmc.py --qed B.v6 \\
        --mode eddiv_cf --bound 8 --workers 4 --dense            # distributed
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
import time
from typing import Dict, List, Optional

from repro.bmc import BMCProblem, BMCResult, BoundedModelChecker, SafetyProperty
from repro.expr import BVConst, BVVar, mux
from repro.obs import telemetry as obs_telemetry
from repro.obs import trace as obs_trace
from repro.rtl import Circuit, elaborate

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_JSON_OUT = os.path.join(REPO_ROOT, "BENCH_bmc.json")
DEFAULT_HISTORY_OUT = os.path.join(REPO_ROOT, "BENCH_history.jsonl")

#: A fresh run may be at most this many times slower than the baseline
#: before ``--check`` fails (CI machines are noisy; 2x is the contract).
REGRESSION_FACTOR = 2.0
#: Runs faster than this (seconds) are exempt from the factor check --
#: scheduling jitter dominates at that scale.
REGRESSION_MIN_SECONDS = 0.5
#: Propagation-throughput floor: a fresh run's ``propagations_per_second``
#: must stay above this fraction of the baseline's.  The metric is
#: wall-clock-derived, so the gate only fires on *regressions* (there is no
#: upper gate) and only when the run solved long enough for the ratio to
#: mean anything (see :data:`PPS_MIN_SOLVE_SECONDS`).
PPS_REGRESSION_FLOOR = 0.6
#: Solve time below which the throughput gate is skipped: a query answered
#: in a few hundred milliseconds gives a pps number dominated by noise.
PPS_MIN_SOLVE_SECONDS = 0.5
#: The ``serve/*`` runs go through an HTTP round-trip plus a process pool,
#: both far noisier than the in-process solves, so their wall-clock gate
#: uses this more generous multiplier instead of :data:`REGRESSION_FACTOR`.
#: Regression-only, like every other wall-clock gate here.
SERVE_REGRESSION_FACTOR = 4.0
#: Warm cache hits sampled for the ``serve/warm_hit`` percentile run.
WARM_HIT_SAMPLES = 20
#: Consecutive runs (history entries plus the fresh one) a run's
#: ``propagations_per_second`` must decline across before the trend gate
#: fails.  Catches slow rot: K steps each comfortably above the
#: :data:`PPS_REGRESSION_FLOOR` still compound into a real regression.
TREND_WINDOW = 4
#: A step only counts toward the trend when the fresh pps is below this
#: fraction of the previous one -- strict monotonicity alone would trip on
#: wall-clock noise roughly one CI run in eight.
TREND_STEP_TOLERANCE = 0.95


def _bound_stats_rows(result: BMCResult) -> List[Dict[str, object]]:
    # The canonical serialization lives on BoundStats itself (the serving
    # layer streams the same dicts as progress events).
    return [stats.to_json_dict() for stats in result.per_bound_stats]


def _summarise(name: str, result: BMCResult) -> Dict[str, object]:
    return {
        "name": name,
        "status": result.status.value,
        "bound_reached": result.bound_reached,
        "runtime_seconds": round(result.runtime_seconds, 6),
        "solve_seconds": round(result.solve_seconds, 6),
        "propagations": result.total_propagations,
        "propagations_per_second": round(result.propagations_per_second, 1),
        "counterexample_cycles": result.counterexample_length,
        "num_sat_variables": result.num_sat_variables,
        "num_sat_clauses": result.num_sat_clauses,
        "total_conflicts": result.total_conflicts,
        "total_learned_clauses": result.total_learned_clauses,
        "learned_clauses_carried": result.learned_clauses_carried,
        "learned_clauses_reused": result.learned_clauses_reused,
        "variables_eliminated": result.variables_eliminated,
        "clauses_subsumed": result.clauses_subsumed,
        "preprocess_seconds": round(result.preprocess_seconds, 6),
        "frames_proven": result.frames_proven,
        "cubes_solved": result.cubes_solved,
        "cubes_resplit": result.cubes_resplit,
        "clauses_shared": result.clauses_shared,
        "per_bound": _bound_stats_rows(result),
    }


def _counter_design(width: int = 8):
    circuit = Circuit("bench_counter")
    enable = circuit.input("enable", 1)
    count = circuit.register("count", width, reset=0)
    count.next = mux(enable, count.q + BVConst(width, 1), count.q)
    circuit.output("value", count.q)
    return elaborate(circuit), width


def run_counter_bench(max_bound: int) -> List[Dict[str, object]]:
    """A dense incremental run (violating) and a full UNSAT sweep."""
    design, width = _counter_design()
    target = max_bound - 1
    violated = SafetyProperty(
        f"never{target}", BVVar("count", width).ne(BVConst(width, target))
    )
    unreachable = SafetyProperty(
        "never_back", BVVar("count", width).ne(BVConst(width, (1 << width) - 1))
    )
    runs = []
    for prop in (violated, unreachable):
        problem = BMCProblem(design=design, prop=prop, max_bound=max_bound)
        result = BoundedModelChecker(problem).run()
        runs.append(_summarise(f"counter/{prop.name}", result))
    return runs


def _qed_run(
    name: str,
    version: str,
    mode_name: str,
    bound: int,
    focus: Optional[List[str]],
    *,
    dense: bool = False,
    expect_violation: Optional[bool] = None,
    max_conflicts_per_query: Optional[int] = None,
    workers: int = 0,
    cube_conflict_budget: Optional[int] = 4000,
) -> Dict[str, object]:
    from repro.dist import SplitConfig
    from repro.isa.arch import TINY_PROFILE
    from repro.qed import QEDMode, SymbolicQED

    mode = {m.value: m for m in QEDMode}[mode_name]
    harness = SymbolicQED(
        version,
        mode=mode,
        arch=TINY_PROFILE,
        focus_opcodes=focus if mode is not QEDMode.EDDIV_MEM else None,
        tracked_registers=(0,),
    )
    split = (
        SplitConfig(workers=workers, cube_conflict_budget=cube_conflict_budget)
        if workers >= 1
        else None
    )
    check = harness.check(
        max_bound=bound,
        single_query=not dense,
        max_conflicts_per_query=max_conflicts_per_query,
        split=split,
    )
    if (
        expect_violation is not None
        and check.found_violation != expect_violation
    ):
        raise SystemExit(
            f"bench run {name!r} produced the wrong verdict: "
            f"found_violation={check.found_violation}, "
            f"expected {expect_violation}"
        )
    return _summarise(name, check.bmc_result)


def run_profile(
    profile: str, max_bound: int, profiler=None
) -> List[Dict[str, object]]:
    """The named bench profile as a list of run summaries.

    When *profiler* (a ``cProfile.Profile``) is given, the dense QED-CF
    budgeted-depth run -- the workload whose hot-path distribution drives
    the solver's profile-guided work -- is executed a *second* time under
    the profiler after the recorded (clean) execution.  Profiling roughly
    doubles the run's wall-clock and halves its propagation throughput, so
    the profiled pass must never be the one whose numbers land in the
    report: it would trip the ``--check`` wall-clock and pps gates.
    """
    runs = run_counter_bench(max_bound)
    if profile == "counter":
        return runs
    # Table-2 detection workload: interaction bug in A.v3 under the
    # campaign's focus set.
    runs.append(
        _qed_run(
            "detection/A.v3/eddiv",
            "A.v3",
            "eddiv",
            8,
            ["LDI", "MOV", "INC", "ADD"],
            expect_violation=True,
        )
    )
    # Clean-design soundness: the UNSAT proof that dominated PR-1 wall-clock.
    runs.append(
        _qed_run(
            "soundness/B.v6/eddiv",
            "B.v6",
            "eddiv",
            6,
            ["LDI", "MOV", "INC", "ADD", "STA", "LDA"],
            expect_violation=False,
        )
    )
    # Conflict-budgeted QED-CF depth run: under a fixed per-bound conflict
    # budget, `frames_proven` measures how deep the engine can retire
    # windows -- the ROADMAP depth metric for the hardest instance family.
    # Runs on the deterministic single-worker distributed engine (cube-and-
    # conquer over window position and opcode bits).
    depth_args = (
        "depth/B.v6/eddiv_cf/budget3000",
        "B.v6",
        "eddiv_cf",
        7,
        ["LDI", "ADD", "CMPI", "BZ"],
    )
    depth_kwargs = dict(
        dense=True,
        expect_violation=False,
        max_conflicts_per_query=3000,
        workers=1,
        cube_conflict_budget=1500,
    )
    runs.append(_qed_run(*depth_args, **depth_kwargs))
    if profiler is not None:
        # Separate profiled pass; its (skewed) numbers are discarded.
        profiler.enable()
        _qed_run(*depth_args, **depth_kwargs)
        profiler.disable()
    # Distributed smoke: a 2-worker cube-and-conquer proof of the clean
    # design, exercising the process pool, work stealing and clause sharing
    # under the CI regression gate.
    runs.append(
        _qed_run(
            "distributed/B.v6/eddiv/w2",
            "B.v6",
            "eddiv",
            5,
            ["LDI", "MOV", "INC", "ADD", "STA", "LDA"],
            expect_violation=False,
            workers=2,
        )
    )
    if profile == "full":
        runs.append(
            _qed_run(
                "detection/A.v5/eddiv_mem",
                "A.v5",
                "eddiv_mem",
                9,
                None,
                expect_violation=True,
            )
        )
    return runs


#: Campaign subset of the --via-server bench: one real EDDI-V solve plus
#: two sub-second Single-I jobs, so the cold pass measures genuine solver
#: work and the warm pass isolates the cache path.
VIA_SERVER_BUGS = ["wrport_collision", "sra_zero_fill", "cmpi_carry_spec"]


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    rank = math.ceil(fraction * len(sorted_values))
    return sorted_values[min(max(rank - 1, 0), len(sorted_values) - 1)]


def run_via_server_bench(workers: int = 1) -> List[Dict[str, object]]:
    """Cold + warm campaign passes through an in-process server.

    Records wall-clock and cache hit/miss counts per pass (the warm pass
    must be all hits), then samples :data:`WARM_HIT_SAMPLES` individual
    warm-hit submissions for a ``serve/warm_hit`` run whose
    ``runtime_seconds`` is the p99 round-trip latency (p50 recorded
    alongside).  All ``serve/*`` entries are gated by ``--check`` against
    the committed baseline with :data:`SERVE_REGRESSION_FACTOR` -- a
    percentile over many hits, not a single sample, so the gate is about
    the cache path staying O(read), not scheduler jitter.
    """
    import tempfile

    from repro.eval.campaign import CampaignConfig
    from repro.serve import LocalServer, ServeClient, run_campaign_via_server
    from repro.serve.keys import JobSpec

    config = CampaignConfig(
        bug_ids=VIA_SERVER_BUGS,
        run_industrial_flow=False,
        run_directed_tests=False,
    )
    runs: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as cache_dir:
        with LocalServer(cache_dir=cache_dir, workers=workers) as url:
            client = ServeClient(url)
            for label in ("cold", "warm"):
                start = time.perf_counter()
                campaign = run_campaign_via_server(client, config)
                elapsed = time.perf_counter() - start
                hits = sum(
                    1 for r in campaign.records if r.served_from_cache
                )
                verdicts = {
                    r.bug_id: r.detected_by_symbolic_qed
                    for r in campaign.records
                }
                if not all(verdicts.values()):
                    raise SystemExit(
                        f"via-server bench ({label}): missed detections "
                        f"{verdicts}"
                    )
                runs.append(
                    {
                        "name": f"serve/campaign{len(VIA_SERVER_BUGS)}/{label}",
                        "status": "ok",
                        "runtime_seconds": round(elapsed, 6),
                        "jobs": len(campaign.records),
                        "cache_hits": hits,
                        "cache_misses": len(campaign.records) - hits,
                        "workers": workers,
                    }
                )
            if runs[-1]["cache_misses"] != 0:
                raise SystemExit(
                    "via-server bench: warm pass was not fully cached "
                    f"({runs[-1]})"
                )
            # Percentiles over many individual warm hits: a single sample
            # is all scheduler jitter, but p50/p99 over N round-trips pin
            # down the submit -> lint -> cache-read -> respond path.
            warm_spec = JobSpec.from_campaign(
                VIA_SERVER_BUGS[-1], config, resolve_fingerprint=False
            )
            latencies: List[float] = []
            for _ in range(WARM_HIT_SAMPLES):
                start = time.perf_counter()
                view = client.submit(spec=warm_spec)
                latencies.append(time.perf_counter() - start)
                if not view.cache_hit:
                    raise SystemExit(
                        "via-server bench: warm-hit sample missed the cache"
                    )
            latencies.sort()
            runs.append(
                {
                    "name": "serve/warm_hit",
                    "status": "ok",
                    # p99 is the gated number -- the tail is where a cache
                    # path accidentally doing real work shows up first.
                    "runtime_seconds": round(
                        _percentile(latencies, 0.99), 6
                    ),
                    "p50_seconds": round(_percentile(latencies, 0.50), 6),
                    "p99_seconds": round(_percentile(latencies, 0.99), 6),
                    "samples": len(latencies),
                    "workers": workers,
                }
            )
    return runs


def _git_commit() -> str:
    """The repo HEAD (short hash) for report attribution, or ``unknown``."""
    try:
        out = subprocess.run(
            ["git", "-C", REPO_ROOT, "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def history_entry(report: Dict[str, object]) -> Dict[str, object]:
    """Compact one-line JSONL entry summarising *report* for the history."""
    runs: Dict[str, object] = {}
    for run in report["runs"]:  # type: ignore[union-attr]
        runs[str(run["name"])] = {
            "status": run.get("status"),
            "runtime_seconds": run.get("runtime_seconds", 0.0),
            "solve_seconds": run.get("solve_seconds", 0.0),
            "propagations_per_second": run.get(
                "propagations_per_second", 0.0
            ),
            "frames_proven": run.get("frames_proven", 0),
        }
    return {
        "t": round(time.time(), 3),
        "commit": report.get("commit", "unknown"),
        "profile": report.get("profile"),
        "obs_enabled": report.get("obs_enabled", False),
        "runs": runs,
    }


def load_history(path: str) -> List[Dict[str, object]]:
    """Parse ``BENCH_history.jsonl``, skipping blank/corrupt lines."""
    entries: List[Dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict):
                    entries.append(entry)
    except OSError:
        return []
    return entries


def append_history(path: str, entry: Dict[str, object]) -> None:
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(json.dumps(entry, sort_keys=True) + "\n")


def check_trend(
    report: Dict[str, object],
    history: List[Dict[str, object]],
    window: int = TREND_WINDOW,
) -> List[str]:
    """Fail on a *window*-run monotonic pps decline ending at *report*.

    The single-baseline floor in :func:`check_regression` only sees one
    step back; a run losing a steady few percent per PR sails under it
    forever.  This gate walks the history (*history* holds the entries
    written **before** this run) and fails when the last *window* pps
    points -- history tail plus the fresh run -- each dropped below
    :data:`TREND_STEP_TOLERANCE` of the previous one.  Only runs that
    solved for at least :data:`PPS_MIN_SOLVE_SECONDS` in every considered
    entry participate (same eligibility as the floor gate); a gap or an
    ineligible entry breaks the streak.
    """
    failures: List[str] = []
    for run in report["runs"]:  # type: ignore[union-attr]
        name = str(run["name"])
        pps = float(run.get("propagations_per_second", 0.0) or 0.0)
        solve = float(run.get("solve_seconds", 0.0) or 0.0)
        if pps <= 0.0 or solve < PPS_MIN_SOLVE_SECONDS:
            continue
        series: List[float] = []
        for entry in reversed(history):
            runs = entry.get("runs")
            past = runs.get(name) if isinstance(runs, dict) else None
            if not isinstance(past, dict):
                break
            past_pps = float(past.get("propagations_per_second", 0.0) or 0.0)
            past_solve = float(past.get("solve_seconds", 0.0) or 0.0)
            if past_pps <= 0.0 or past_solve < PPS_MIN_SOLVE_SECONDS:
                break
            series.append(past_pps)
            if len(series) == window - 1:
                break
        if len(series) < window - 1:
            continue
        series.reverse()
        series.append(pps)
        declining = all(
            series[i + 1] < TREND_STEP_TOLERANCE * series[i]
            for i in range(len(series) - 1)
        )
        if declining:
            trajectory = " -> ".join(f"{point:.0f}" for point in series)
            failures.append(
                f"{name}: propagations_per_second declined {window} runs "
                f"in a row ({trajectory}); each step clears the "
                f"{PPS_REGRESSION_FLOOR:g}x floor but the trend compounds "
                f"to {series[-1] / series[0]:.2f}x of {window} runs ago"
            )
    return failures


def check_regression(
    report: Dict[str, object],
    baseline: Dict[str, object],
    baseline_name: str = "baseline",
) -> "tuple[List[str], int]":
    """Compare *report* against the already-loaded *baseline* report.

    The caller loads the baseline BEFORE writing the fresh report so that
    ``--check`` pointed at the default output path compares against the
    committed numbers, not the file just written.  Returns ``(failures,
    compared)``: the failure messages and how many runs had a baseline
    entry to compare against.
    """
    baseline_runs = {run["name"]: run for run in baseline.get("runs", [])}
    failures: List[str] = []
    compared = 0
    for run in report["runs"]:
        name = run["name"]
        old = baseline_runs.get(name)
        if old is None:
            continue  # new benchmark, nothing to compare against
        compared += 1
        if run["status"] != old["status"]:
            failures.append(
                f"{name}: verdict changed {old['status']} -> {run['status']}"
            )
            continue
        old_frames = int(old.get("frames_proven", 0))
        new_frames = int(run.get("frames_proven", 0))
        if new_frames < old_frames:
            # Depth regression: under the same conflict budget the engine
            # must keep proving at least as many frames (conflict budgets
            # are deterministic, so this is not a flaky wall-clock gate).
            failures.append(
                f"{name}: frames_proven regressed "
                f"{old_frames} -> {new_frames}"
            )
            continue
        old_seconds = float(old["runtime_seconds"])
        new_seconds = float(run["runtime_seconds"])
        # serve/* runs cross an HTTP + process-pool boundary; their gate
        # trades tightness for stability (regression-only, like the rest).
        factor = (
            SERVE_REGRESSION_FACTOR
            if str(name).startswith("serve/")
            else REGRESSION_FACTOR
        )
        limit = max(factor * old_seconds, REGRESSION_MIN_SECONDS)
        if new_seconds > limit:
            failures.append(
                f"{name}: {new_seconds:.3f}s vs baseline "
                f"{old_seconds:.3f}s (limit {limit:.3f}s)"
            )
            continue
        # Propagation-throughput floor: gate only on regression (the
        # metric is wall-clock-derived) and only when both runs solved
        # long enough for the ratio to be meaningful.
        old_pps = float(old.get("propagations_per_second", 0.0))
        new_pps = float(run.get("propagations_per_second", 0.0))
        old_solve = float(old.get("solve_seconds", 0.0))
        new_solve = float(run.get("solve_seconds", 0.0))
        if (
            old_pps > 0.0
            and new_pps > 0.0
            and old_solve >= PPS_MIN_SOLVE_SECONDS
            and new_solve >= PPS_MIN_SOLVE_SECONDS
            and new_pps < PPS_REGRESSION_FLOOR * old_pps
        ):
            failures.append(
                f"{name}: propagations_per_second regressed to "
                f"{new_pps:.0f} vs baseline {old_pps:.0f} "
                f"(floor {PPS_REGRESSION_FLOOR:g}x = "
                f"{PPS_REGRESSION_FLOOR * old_pps:.0f})"
            )
    if compared == 0:
        # A gate that compared nothing must not pass: run renames or a
        # corrupted baseline would otherwise silently disable the check.
        failures.append(
            f"no run in this report matches any baseline entry of "
            f"{baseline_name} -- the regression gate compared nothing"
        )
    return failures, compared


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", default="fast", choices=["counter", "fast", "full"],
        help="benchmark profile (default fast; CI runs fast)",
    )
    parser.add_argument(
        "--max-bound", type=int, default=16,
        help="bound for the counter demo runs (default 16)",
    )
    parser.add_argument(
        "--qed", metavar="VERSION", default=None,
        help="also run Symbolic QED on a design version (e.g. A.v3); slow",
    )
    parser.add_argument(
        "--mode", default="eddiv", choices=["eddiv", "eddiv_cf", "eddiv_mem"],
        help="QED mode for --qed (default eddiv)",
    )
    parser.add_argument(
        "--bound", type=int, default=8, help="QED max bound (default 8)"
    )
    parser.add_argument(
        "--focus", nargs="*", default=["LDI", "MOV", "INC", "ADD"],
        help="focus opcodes for --qed",
    )
    parser.add_argument(
        "--dense", action="store_true",
        help="use the dense per-bound schedule for --qed instead of one query",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="route --qed through the distributed proof engine with this "
        "many workers (0 = sequential; 1 = inline cube-and-conquer)",
    )
    parser.add_argument(
        "--max-conflicts", type=int, default=None,
        help="per-bound conflict budget for --qed (frames_proven becomes "
        "the metric of interest)",
    )
    parser.add_argument(
        "--via-server", action="store_true",
        help="also run a small campaign cold+warm through the in-process "
        "verification service, record cache hit/miss counts, and sample "
        f"warm-hit latency percentiles over {WARM_HIT_SAMPLES} round-trips "
        f"(gated by --check at {SERVE_REGRESSION_FACTOR:g}x)",
    )
    parser.add_argument(
        "--json-out", default=DEFAULT_JSON_OUT,
        help="write the JSON report here ('-' for stdout; "
        "default: BENCH_bmc.json at the repo root)",
    )
    parser.add_argument(
        "--history-out", metavar="PATH", default=DEFAULT_HISTORY_OUT,
        help="append a one-line summary of this run to this JSONL history "
        "(default: BENCH_history.jsonl at the repo root); --check reads "
        "the prior entries for trend detection and the dashboard renders "
        "the trajectory",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="do not append this run to the history file (trend detection "
        "still runs against the existing entries when --check is given)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="run with a live TelemetrySink installed so the report (and "
        "the pps gates) measure the heartbeat-sampling overhead",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a baseline BENCH_bmc.json and exit non-zero "
        f"on a >{REGRESSION_FACTOR:g}x wall-clock regression "
        f"({SERVE_REGRESSION_FACTOR:g}x for serve/* runs), a "
        "frames_proven decrease, a propagations_per_second drop below "
        f"{PPS_REGRESSION_FLOOR:g}x of the baseline, or a "
        f"{TREND_WINDOW}-run monotonic pps decline in the history",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH", default=None,
        help="dump cProfile stats of the dense QED-CF depth run to PATH "
        "(pstats format; CI uploads it as an artifact for profile-guided "
        "work)",
    )
    args = parser.parse_args(argv)

    # Load the baseline up front: --check may point at the same path the
    # fresh report is about to overwrite (the default json-out).
    baseline = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as stream:
            baseline = json.load(stream)

    if args.telemetry:
        obs_telemetry.install()

    profiler = None
    if args.profile_out:
        if args.profile == "counter":
            raise SystemExit(
                "--profile-out needs the dense depth run; use the fast or "
                "full profile"
            )
        import cProfile

        profiler = cProfile.Profile()
    runs = run_profile(args.profile, args.max_bound, profiler=profiler)
    if profiler is not None:
        profiler.dump_stats(args.profile_out)
        print(f"wrote {args.profile_out} (cProfile of the dense depth run)")
    if args.via_server:
        runs.extend(run_via_server_bench(workers=max(1, args.workers)))
    if args.qed:
        suffix = ("/dense" if args.dense else "") + (
            f"/w{args.workers}" if args.workers else ""
        )
        runs.append(
            _qed_run(
                f"qed/{args.qed}/{args.mode}" + suffix,
                args.qed,
                args.mode,
                args.bound,
                args.focus,
                dense=args.dense,
                workers=args.workers,
                max_conflicts_per_query=args.max_conflicts,
            )
        )

    obs_enabled = (
        obs_telemetry.active() is not None or obs_trace.active() is not None
    )
    report = {
        "profile": args.profile,
        "commit": _git_commit(),
        "obs_enabled": obs_enabled,
        "runs": runs,
    }
    text = json.dumps(report, indent=2)
    if args.json_out == "-":
        print(text)
    else:
        with open(args.json_out, "w", encoding="utf-8") as stream:
            stream.write(text + "\n")
        print(f"wrote {args.json_out} ({len(runs)} runs)")

    # The history is read BEFORE this run is appended so the trend gate
    # compares the fresh numbers against strictly prior entries.
    history = load_history(args.history_out)
    if not args.no_history:
        try:
            append_history(args.history_out, history_entry(report))
            print(
                f"appended {args.history_out} "
                f"(entry {len(history) + 1}, commit {report['commit']})"
            )
        except OSError as exc:
            print(f"history append failed: {exc}", file=sys.stderr)

    if baseline is not None:
        failures, compared = check_regression(report, baseline, args.check)
        failures.extend(check_trend(report, history))
        if failures:
            print("PERFORMANCE REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"regression check OK ({compared} runs within budget)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
