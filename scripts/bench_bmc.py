"""Benchmark the incremental BMC engine and emit per-bound solver stats as JSON.

The output seeds the BENCH trajectory: every bound of every run records the
solver work (conflicts, decisions, propagations), the learned-clause database
carried into the next bound, and the formula growth caused by the newly
unrolled frames.  Rising ``learned_clauses_carried`` with shrinking per-bound
``new_clauses`` relative to the total is the signature of the incremental
reuse working.

Usage::

    PYTHONPATH=src python scripts/bench_bmc.py                  # fast counter demo
    PYTHONPATH=src python scripts/bench_bmc.py --qed A.v3 \\
        --mode eddiv --bound 8 --focus LDI MOV INC ADD          # a real QED run
    PYTHONPATH=src python scripts/bench_bmc.py --json-out stats.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.bmc import BMCProblem, BMCResult, BoundedModelChecker, SafetyProperty
from repro.expr import BVConst, BVVar, mux
from repro.rtl import Circuit, elaborate


def _bound_stats_rows(result: BMCResult) -> List[Dict[str, object]]:
    return [
        {
            "bound": stats.bound,
            "window_start": stats.window_start,
            "verdict": stats.verdict,
            "runtime_seconds": round(stats.runtime_seconds, 6),
            "conflicts": stats.conflicts,
            "decisions": stats.decisions,
            "propagations": stats.propagations,
            "learned_clauses": stats.learned_clauses,
            "learned_clauses_carried": stats.learned_clauses_carried,
            "new_variables": stats.new_variables,
            "new_clauses": stats.new_clauses,
        }
        for stats in result.per_bound_stats
    ]


def _summarise(name: str, result: BMCResult) -> Dict[str, object]:
    return {
        "name": name,
        "status": result.status.value,
        "bound_reached": result.bound_reached,
        "runtime_seconds": round(result.runtime_seconds, 6),
        "counterexample_cycles": result.counterexample_length,
        "num_sat_variables": result.num_sat_variables,
        "num_sat_clauses": result.num_sat_clauses,
        "total_conflicts": result.total_conflicts,
        "total_learned_clauses": result.total_learned_clauses,
        "learned_clauses_carried": result.learned_clauses_carried,
        "learned_clauses_reused": result.learned_clauses_reused,
        "per_bound": _bound_stats_rows(result),
    }


def _counter_design(width: int = 8):
    circuit = Circuit("bench_counter")
    enable = circuit.input("enable", 1)
    count = circuit.register("count", width, reset=0)
    count.next = mux(enable, count.q + BVConst(width, 1), count.q)
    circuit.output("value", count.q)
    return elaborate(circuit), width


def run_counter_bench(max_bound: int) -> List[Dict[str, object]]:
    """A dense incremental run (violating) and a full UNSAT sweep."""
    design, width = _counter_design()
    target = max_bound - 1
    violated = SafetyProperty(
        f"never{target}", BVVar("count", width).ne(BVConst(width, target))
    )
    unreachable = SafetyProperty(
        "never_back", BVVar("count", width).ne(BVConst(width, (1 << width) - 1))
    )
    runs = []
    for prop in (violated, unreachable):
        problem = BMCProblem(design=design, prop=prop, max_bound=max_bound)
        result = BoundedModelChecker(problem).run()
        runs.append(_summarise(f"counter/{prop.name}", result))
    return runs


def run_qed_bench(
    version: str,
    mode_name: str,
    bound: int,
    focus: Optional[List[str]],
    dense: bool,
) -> List[Dict[str, object]]:
    from repro.isa.arch import TINY_PROFILE
    from repro.qed import QEDMode, SymbolicQED

    mode = {m.value: m for m in QEDMode}[mode_name]
    harness = SymbolicQED(
        version,
        mode=mode,
        arch=TINY_PROFILE,
        focus_opcodes=focus if mode is not QEDMode.EDDIV_MEM else None,
        tracked_registers=(0,),
    )
    check = harness.check(max_bound=bound, single_query=not dense)
    label = f"qed/{version}/{mode.value}" + ("/dense" if dense else "")
    return [_summarise(label, check.bmc_result)]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-bound", type=int, default=16,
        help="bound for the counter demo runs (default 16)",
    )
    parser.add_argument(
        "--qed", metavar="VERSION", default=None,
        help="also run Symbolic QED on a design version (e.g. A.v3); slow",
    )
    parser.add_argument(
        "--mode", default="eddiv", choices=["eddiv", "eddiv_cf", "eddiv_mem"],
        help="QED mode for --qed (default eddiv)",
    )
    parser.add_argument(
        "--bound", type=int, default=8, help="QED max bound (default 8)"
    )
    parser.add_argument(
        "--focus", nargs="*", default=["LDI", "MOV", "INC", "ADD"],
        help="focus opcodes for --qed",
    )
    parser.add_argument(
        "--dense", action="store_true",
        help="use the dense per-bound schedule for --qed instead of one query",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the JSON report to this file (default: stdout)",
    )
    args = parser.parse_args(argv)

    runs = run_counter_bench(args.max_bound)
    if args.qed:
        runs.extend(
            run_qed_bench(args.qed, args.mode, args.bound, args.focus, args.dense)
        )

    report = {"runs": runs}
    text = json.dumps(report, indent=2)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as stream:
            stream.write(text + "\n")
        print(f"wrote {args.json_out} ({len(runs)} runs)")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
