"""Canonical, hash-stable job specifications and content-addressed keys.

A :class:`JobSpec` pins down *everything* that determines a campaign job's
deterministic outcome:

* the design **content** -- version name plus the
  :meth:`~repro.uarch.versions.DesignVersion.fingerprint` of its elaborated
  netlist (so an RTL change behind an unchanged version name shifts the
  key),
* the QED configuration -- mode, sorted focus-set opcodes, bound,
* the engine knobs -- preprocess, per-bound conflict budget, split
  (cube-and-conquer) configuration,
* the satellite techniques -- industrial-flow/DST toggles and the seeded
  CRS knobs.

:meth:`JobSpec.cache_key` hashes the canonical JSON form, so two
semantically identical requests -- regardless of focus-set order, default
spelling, or which client sent them -- collide on one key.  That key is the
address of the result cache (:mod:`repro.serve.cache`) and the coalescing
handle of the job queue (:mod:`repro.serve.queue`).

Wall-clock fields of a result are *not* part of the key (they are
measurements, not meaning); neither is job priority (scheduling, not
semantics).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.eval.campaign import FOCUS_SETS, CampaignConfig
from repro.qed.eddiv import QEDMode
from repro.uarch.versions import version_by_name

#: Bump when the canonical dict layout changes; old cache entries become
#: unreachable (their keys hash a different format tag).
SPEC_FORMAT = 1


def canonical_json(data: object) -> str:
    """The one JSON spelling used for hashing: sorted keys, no whitespace."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _normalize_config(config: Dict[str, object]) -> Dict[str, object]:
    """Canonicalize a campaign-config dict for hashing.

    Round-tripping through :class:`CampaignConfig` makes every default
    explicit, so ``{}`` and a fully spelled-out default config produce the
    same bytes (and therefore the same cache key).  Unknown keys are kept
    verbatim -- they cannot affect execution, but dropping them silently
    would alias specs that a caller deliberately distinguished.
    ``bug_ids`` is dropped: which jobs a campaign selects is scheduling,
    not any single job's semantics.
    """
    normalized = CampaignConfig.from_json_dict(dict(config)).to_json_dict()
    normalized.update(
        {key: value for key, value in config.items() if key not in normalized}
    )
    normalized.pop("bug_ids", None)
    return normalized


@dataclass(frozen=True)
class JobSpec:
    """One verification job, canonically described.

    Instances are built with :meth:`from_campaign` (which derives the QED
    plan from the campaign's focus-set table exactly as
    :func:`repro.eval.campaign.detect_bug` will) or :meth:`from_dict` (the
    wire form).  ``mode``/``focus_opcodes``/``bound`` are therefore *derived*
    fields: they make the key transparent -- the ROADMAP's
    ``(version, mode, focus set, bound)`` -- while execution always goes
    through the reconstructed :class:`CampaignConfig`, keeping served and
    direct runs byte-identical.
    """

    bug_id: str
    version: str
    #: Content hash of the version's elaborated netlist ("" = unresolved;
    #: the server resolves it before keying, so clients may omit it).
    fingerprint: str
    mode: str
    focus_opcodes: Optional[Tuple[str, ...]]
    bound: int
    config: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_campaign(
        cls,
        bug_id: str,
        config: Optional[CampaignConfig] = None,
        *,
        resolve_fingerprint: bool = True,
    ) -> "JobSpec":
        """Derive the canonical spec of ``detect_bug(bug_id, config)``."""
        from repro.eval.campaign import _version_with_bug  # job == campaign job

        config = config or CampaignConfig()
        plan = FOCUS_SETS[bug_id]
        mode = plan["mode"]
        mode_name = mode.value if isinstance(mode, QEDMode) else str(mode)
        opcodes = None if config.exhaustive else plan["opcodes"]
        version = _version_with_bug(bug_id)
        config_dict = _normalize_config(config.to_json_dict())
        return cls(
            bug_id=bug_id,
            version=version.name,
            fingerprint=(
                version.fingerprint(config.arch) if resolve_fingerprint else ""
            ),
            mode=mode_name,
            focus_opcodes=(
                None if opcodes is None else tuple(sorted(str(op) for op in opcodes))
            ),
            bound=int(plan["bound"]) + config.extra_bound,
            config=config_dict,
        )

    # ------------------------------------------------------------------
    def campaign_config(self) -> CampaignConfig:
        """Rebuild the :class:`CampaignConfig` this job executes under."""
        return CampaignConfig.from_json_dict(dict(self.config))

    def resolved(self) -> "JobSpec":
        """A copy with the design fingerprint filled in (no-op if set)."""
        if self.fingerprint:
            return self
        arch = self.campaign_config().arch
        return JobSpec(
            bug_id=self.bug_id,
            version=self.version,
            fingerprint=version_by_name(self.version).fingerprint(arch),
            mode=self.mode,
            focus_opcodes=self.focus_opcodes,
            bound=self.bound,
            config=self.config,
        )

    # ------------------------------------------------------------------
    def canonical_dict(self) -> Dict[str, object]:
        """Canonical, versioned JSON form (the wire and hash format)."""
        return {
            "format": SPEC_FORMAT,
            "bug_id": self.bug_id,
            "version": self.version,
            "fingerprint": self.fingerprint,
            "mode": self.mode,
            "focus_opcodes": (
                None
                if self.focus_opcodes is None
                else sorted(str(op) for op in self.focus_opcodes)
            ),
            "bound": self.bound,
            "config": self.config,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobSpec":
        """Inverse of :meth:`canonical_dict` (validates the format tag)."""
        if data.get("format", SPEC_FORMAT) != SPEC_FORMAT:
            raise ValueError(f"unsupported JobSpec format {data.get('format')!r}")
        opcodes = data.get("focus_opcodes")
        return cls(
            bug_id=str(data["bug_id"]),
            version=str(data["version"]),
            fingerprint=str(data.get("fingerprint", "")),
            mode=str(data["mode"]),
            focus_opcodes=(
                None
                if opcodes is None
                else tuple(sorted(str(op) for op in opcodes))
            ),
            bound=int(data["bound"]),
            config=_normalize_config(dict(data.get("config") or {})),
        )

    def validate_derived(self) -> None:
        """Check the derived fields against the campaign plan.

        ``version``/``mode``/``focus_opcodes``/``bound`` are derived from
        ``bug_id`` + ``config`` (execution always goes through
        ``detect_bug``), so a wire spec that *claims* different values
        would cache a correctly computed record under a lying description.
        The worker calls this before solving, failing such specs loudly.
        """
        expected = JobSpec.from_campaign(
            self.bug_id, self.campaign_config(), resolve_fingerprint=False
        )
        mismatches = {
            name: (getattr(self, name), getattr(expected, name))
            for name in ("version", "mode", "focus_opcodes", "bound")
            if getattr(self, name) != getattr(expected, name)
        }
        if mismatches:
            raise ValueError(
                f"spec for bug {self.bug_id!r} misdescribes its derived "
                f"fields (got, expected): {mismatches}"
            )

    # ------------------------------------------------------------------
    def cache_key(self) -> str:
        """Content address of this job's result (SHA-256 hex).

        Hashed over the canonical dict, so semantically identical specs --
        whatever their field order, opcode order or default spelling --
        produce the same key.  The fingerprint must be resolved first: a
        key over unresolved content would alias across RTL changes.
        """
        if not self.fingerprint:
            raise ValueError(
                "cache_key requires a resolved design fingerprint "
                "(call .resolved() first)"
            )
        return hashlib.sha256(
            canonical_json(self.canonical_dict()).encode()
        ).hexdigest()
