"""Asyncio job queue: priority scheduling, coalescing, process-pool bridge.

One :class:`JobQueue` owns the serving state: a registry of jobs, a priority
heap of queued work, the in-flight map used for deduplication, and the
executor that actually runs :func:`repro.eval.campaign.detect_bug`.

Lifecycle of a submission
=========================

1. The spec is resolved (design fingerprint filled in) and keyed
   (:meth:`~repro.serve.keys.JobSpec.cache_key`).
2. **Cache hit** -- the job is born ``DONE`` with the cached record
   (provenance: ``served_from_cache=True``); no solver runs.
3. **Coalesce** -- an identical spec already queued or running returns the
   *same* job: N submitters, one solve, everyone long-polls the same id.
4. Otherwise the job is queued by ``(priority, arrival)`` and picked up by
   the scheduler when an executor slot frees.  Execution happens in a
   worker process (``fork`` context, mirroring the campaign pool); per-bound
   :class:`~repro.bmc.engine.BoundStats` stream back through a shared
   multiprocessing queue and land in :attr:`Job.progress` as they arrive.
5. On completion the record is admitted to the result cache under monotone
   upgrade semantics; on a worker crash the broken pool is replaced and the
   job is **retried** with capped exponential backoff.  A spec that keeps
   killing workers is quarantined (``force=True`` clears it); only then
   does the job end ``FAILED`` (never hung).

Fault tolerance
===============

* A submission may carry a wall-clock ``deadline_seconds`` budget.  The
  deadline is *not* part of the cache key (it is a property of the
  submission, not of the problem); a job whose deadline expires while
  queued completes ``DONE`` with a synthetic non-definitive UNKNOWN record
  that is **not** cached, and a running job hands its remaining budget to
  the worker, which propagates it down to the solver.
* :meth:`JobQueue.drain` is the graceful-shutdown path: stop dispatching,
  let running solves finish, snapshot still-queued specs to a JSON-able
  dict that :meth:`JobQueue.restore_state` resubmits after a restart.

Observability
=============

Every job owns a trace (:class:`repro.obs.trace.TraceStore` entry keyed by
job id): the queue records its own spans (cache read/write, queue-wait,
each dispatch attempt) and worker processes run under their own
:class:`~repro.obs.trace.ObsCollector`, shipping completed spans and a
process-metrics delta back through the existing progress pipe as a tagged
``{"__obs__": ...}`` payload that :meth:`JobQueue._on_progress` diverts
into the store (re-rooted under the attempt span) and the queue's
:class:`~repro.obs.metrics.MetricsRegistry`.  Jobs that FAIL, are
quarantined, or expire their deadline dump a flight-recorder JSON artifact
(:class:`repro.obs.flight.FlightRecorder`) with the trace attached.

``use_processes=False`` swaps the process pool for threads -- same contract,
no fork -- which in-process demos (``examples/serve_quickstart.py``) use.
"""

from __future__ import annotations

import asyncio
import functools
import heapq
import itertools
import multiprocessing
import os
import random
import threading
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro import faults
from repro.deadline import Deadline
from repro.eval.campaign import detect_bug, record_to_json_dict
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as obs_telemetry
from repro.obs import trace as obs_trace
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore
from repro.serve.cache import ResultCache
from repro.serve.keys import JobSpec

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "QueueDraining",
    "QueueFull",
    "execute_job_spec",
]


#: Telemetry heartbeats retained per job (older ones fall off the ring;
#: ``GET /jobs/<id>/telemetry`` reports how many were dropped).
TELEMETRY_RING = 256


class QueueDraining(RuntimeError):
    """Submission rejected: the queue is draining for shutdown (HTTP 503)."""


class QueueFull(RuntimeError):
    """Submission rejected: queue depth at its admission bound (HTTP 429).

    ``retry_after`` is the server's own estimate of when retrying is
    worthwhile (derived from observed queue latency); the HTTP layer
    surfaces it as the 429 response's ``Retry-After``.
    """

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JobState(str, Enum):
    """Lifecycle of one served job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One submission's view of the world (shared when coalesced)."""

    job_id: str
    spec: JobSpec
    cache_key: str
    priority: int = 0
    state: JobState = JobState.QUEUED
    cache_hit: bool = False
    #: Additional submissions that attached to this job (N waiters, 1 solve).
    coalesced: int = 0
    record: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    #: Wall-clock budget (absolute monotonic expiry).  NOT part of the
    #: cache key: the deadline describes the submission, not the problem.
    deadline: Optional[Deadline] = None
    #: Executor dispatches so far; bumped on each worker-crash retry.
    attempts: int = 0
    #: Per-bound progress events (:meth:`BoundStats.to_json_dict` dicts).
    progress: List[Dict[str, object]] = field(default_factory=list)
    #: Bumped on every observable change; long-poll waits for it to move.
    version: int = 0
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    cancel_requested: bool = False
    #: Trace identity for ``GET /jobs/<id>/trace`` (None when tracing off).
    trace_id: Optional[str] = None
    #: Recent solver heartbeats (bounded ring; ``GET /jobs/<id>/telemetry``).
    telemetry: List[Dict[str, object]] = field(default_factory=list)
    #: Heartbeats ever received -- the ring-index base for ``since`` queries.
    telemetry_total: int = 0
    #: Monotonic submit instant (queue-wait span start); not serialized.
    _queued_mono: float = field(default=0.0, repr=False)
    #: Open ``queue.attempt`` span worker batches re-root under.
    _attempt_span_id: Optional[str] = field(default=None, repr=False)
    _event: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    def to_json_dict(self, *, since: int = 0) -> Dict[str, object]:
        """Wire form for ``GET /jobs/<id>``.

        ``since`` trims the progress list to events a long-polling client
        has not seen yet (it passes the count it already holds).
        """
        return {
            "job_id": self.job_id,
            "cache_key": self.cache_key,
            "spec": self.spec.canonical_dict(),
            "priority": self.priority,
            "state": self.state.value,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "record": self.record,
            "error": self.error,
            "attempts": self.attempts,
            "progress": self.progress[since:],
            "progress_total": len(self.progress),
            "version": self.version,
            "cancel_requested": self.cancel_requested,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "trace_id": self.trace_id,
        }


# ----------------------------------------------------------------------
# Worker-process side.  ``_PROGRESS_QUEUE`` is installed by the pool
# initializer; with the fork start method the queue object is inherited.
_PROGRESS_QUEUE = None


def _init_worker(progress_queue) -> None:
    global _PROGRESS_QUEUE
    _PROGRESS_QUEUE = progress_queue


def execute_job_spec(  # fork-entry: dispatched via functools.partial
    spec_dict: Dict[str, object],
    job_id: str = "",
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
    *,
    deadline_seconds: Optional[float] = None,
) -> Dict[str, object]:
    """Executor entry point: run one campaign job described by *spec_dict*.

    Returns ``{"record": <record json dict>, "definitive": bool}``.  Runs
    in a worker process (``progress`` is then the inherited multiprocessing
    queue) or in a thread (``progress`` is a direct callback).  The design
    fingerprint is re-verified against the current content so a stale spec
    fails loudly instead of caching a result under the wrong key.

    ``deadline_seconds`` is the budget *remaining* at dispatch time; it is
    rebased onto this process's monotonic clock and propagated through
    ``detect_bug`` into the BMC engine and the SAT solver, so an expiring
    deadline degrades the verdict to a non-definitive UNKNOWN rather than
    truncating it silently.
    """
    from repro.uarch.versions import version_by_name

    faults.crash_point("serve.queue.worker")
    spec = JobSpec.from_dict(spec_dict)
    config = spec.campaign_config()
    spec.validate_derived()  # a lying spec must fail, not cache mislabeled
    if spec.fingerprint:
        current = version_by_name(spec.version).fingerprint(config.arch)
        if current != spec.fingerprint:
            raise ValueError(
                f"design content changed under {spec.version}: spec has "
                f"fingerprint {spec.fingerprint[:12]}.., current is "
                f"{current[:12]}.."
            )
    send = progress
    if send is None and _PROGRESS_QUEUE is not None:
        queue = _PROGRESS_QUEUE

        def send(stats_dict: Dict[str, object]) -> None:
            try:
                queue.put((job_id, stats_dict))
            except Exception:
                pass  # progress is best-effort; never fail the job for it

    on_bound = None
    if send is not None:
        def on_bound(stats) -> None:
            # Chaos-harness message site: progress is best-effort, so a
            # seeded drop must be invisible to the verdict and a seeded
            # duplicate must be tolerated by consumers.
            fate = faults.message_fate("serve.queue.progress")
            if fate == "drop":
                return
            send(stats.to_json_dict())
            if fate == "duplicate":
                send(stats.to_json_dict())

    # The job runs under its own collector (pool workers are long-lived,
    # so a fork-inherited one would mix jobs); the queue re-roots the
    # shipped batch under this dispatch's attempt span.  Metrics ship as
    # a delta against the process registry so a reused worker never
    # double-counts earlier jobs.
    collector = obs_trace.start_trace()
    metrics_mark = obs_metrics.process_metrics().snapshot()
    # Telemetry heartbeats ship *while* the solve runs (tagged
    # ``__telemetry__``, riding the same progress pipe as ``__obs__``),
    # which is what makes GET /jobs/<id>/telemetry live rather than a
    # post-mortem.  A fresh per-job sink for the same reason as the
    # collector: a fork-inherited one would mix jobs.
    telemetry_sink = None
    if send is not None and obs_telemetry.enabled():
        shipper = send

        def _ship_heartbeats(batch: List[Dict[str, object]]) -> None:
            shipper({"__telemetry__": batch})

        telemetry_sink = obs_telemetry.install(
            obs_telemetry.TelemetrySink(on_flush=_ship_heartbeats)
        )
    try:
        record = detect_bug(
            spec.bug_id,
            config,
            on_bound=on_bound,
            deadline=Deadline.from_seconds(deadline_seconds),
        )
    finally:
        if telemetry_sink is not None:
            obs_telemetry.clear()
            telemetry_sink.flush()
        if collector is not None:
            obs_trace.clear()
            if send is not None:
                batch = collector.batch_since((0, 0))
                batch["metrics"] = obs_metrics.diff_snapshots(
                    obs_metrics.process_metrics().snapshot(), metrics_mark
                )
                send({"__obs__": batch})
    return {
        "record": record_to_json_dict(record),
        "definitive": record.qed_definitive,
    }


def _selftest_entry(  # fork-entry: dispatched via functools.partial
    spec_dict: Dict[str, object],
    job_id: str = "",
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
    *,
    deadline_seconds: Optional[float] = None,
) -> Dict[str, object]:
    """Deterministic test double for :func:`execute_job_spec`.

    Kept importable here so it pickles into worker processes.  Behaviour is
    keyed on the (synthetic) ``bug_id``: ``__crash__`` kills the worker
    process outright (the ``FAILED``-not-hung regression hook),
    ``__sleep:S__`` holds the slot for ``S`` seconds (the coalescing hook);
    anything else echoes a canned record.  A received ``deadline_seconds``
    is echoed into the record so tests can assert budget propagation.
    """
    faults.crash_point("serve.queue.worker")
    bug_id = str(spec_dict.get("bug_id", ""))
    if bug_id == "__crash__":
        os._exit(1)
    if bug_id.startswith("__sleep:"):
        time.sleep(float(bug_id[len("__sleep:"):].rstrip("_")))
    if progress is None and _PROGRESS_QUEUE is not None:
        queue = _PROGRESS_QUEUE

        def progress(stats_dict: Dict[str, object]) -> None:
            queue.put((job_id, stats_dict))

    if progress is not None:
        fate = faults.message_fate("serve.queue.progress")
        if fate != "drop":
            progress({"bound": 1, "verdict": "unsat", "selftest": True})
            if fate == "duplicate":
                progress({"bound": 1, "verdict": "unsat", "selftest": True})
    record: Dict[str, object] = {
        "bug_id": bug_id,
        "version_name": str(spec_dict.get("version", "X")),
        "detected_by": {"eddiv": True},
        "qed_definitive": True,
    }
    if deadline_seconds is not None:
        record["deadline_seconds"] = deadline_seconds
    return {"record": record, "definitive": True}


# ----------------------------------------------------------------------
class JobQueue:
    """Priority scheduler + dedup/coalescing front over an executor pool.

    All public methods must be called from the owning event loop's thread
    (the HTTP server and the in-process helpers guarantee that).  Cache
    lookups/admissions run synchronously on it by design: they are one
    seek+readline / one append on a local log, dwarfed by the solves they
    avoid.  A multi-node cache tier would move them behind an executor.
    """

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        entry: Callable = execute_job_spec,
        use_processes: bool = True,
        max_tracked_jobs: int = 4096,
        max_retries: int = 2,
        retry_backoff_base: float = 0.05,
        retry_backoff_cap: float = 2.0,
        backoff_seed: int = 0,
        max_queue_depth: Optional[int] = None,
        flight_dir: Optional[str] = None,
    ) -> None:
        # ``workers=0`` is the fleet-only deployment: no local executor,
        # every solve pulled by remote workers through the coordinator.
        if workers < 0:
            raise ValueError("workers must be at least 0")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if max_tracked_jobs < 1:
            raise ValueError("max_tracked_jobs must be at least 1")
        if max_retries < 0:
            raise ValueError("max_retries must be at least 0")
        self.cache = cache
        self.workers = workers
        self.entry = entry
        self.use_processes = use_processes
        #: Worker-crash retry policy: a job whose worker dies is re-queued
        #: up to ``max_retries`` times with capped exponential backoff
        #: (``base * 2**(attempt-1)``, never above ``cap`` seconds).
        self.max_retries = max_retries
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap
        #: Retry backoffs are jittered by a factor in [0.5, 1.0] drawn from
        #: a seeded RNG keyed on (seed, cache key, attempt): deterministic
        #: for tests, decorrelated across jobs so a crash storm's retries
        #: do not land in lockstep.
        self.backoff_seed = backoff_seed
        #: Admission bound on QUEUED depth; ``None`` means unbounded.
        #: Exceeding it raises :class:`QueueFull` (HTTP 429 + Retry-After).
        self.max_queue_depth = max_queue_depth
        #: Set by :class:`repro.serve.fleet.FleetCoordinator` when this
        #: queue also feeds remote lease-based workers.
        self.fleet = None
        #: Terminal jobs beyond this count are evicted oldest-first, so a
        #: long-running server's registry stays bounded (results live on in
        #: the cache; only the per-job views age out).
        self.max_tracked_jobs = max_tracked_jobs
        self.jobs: Dict[str, Job] = {}
        self._terminal: "deque[str]" = deque()
        self._inflight: Dict[str, Job] = {}
        self._heap: List[Tuple[int, int, str]] = []
        self._sequence = itertools.count()
        self._running = 0
        self._wake = asyncio.Event()
        self._scheduler_task: Optional[asyncio.Task] = None
        self._executor = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._mp_context = None
        self._progress_queue = None
        self._drainer: Optional[threading.Thread] = None
        #: Keys whose spec exhausted its crash retries; value is a
        #: structured reason dict.  Resubmissions fail fast until an
        #: operator clears the key with ``force=True``.
        self.quarantined: Dict[str, Dict[str, object]] = {}
        self._draining = False
        #: True between a worker crash and the replacement pool's first
        #: construction -- surfaced by ``GET /healthz`` as not-ready.
        self._pool_broken = False
        # Counters for /stats.
        self.submitted = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.executed = 0
        self.failed = 0
        self.cancelled = 0
        self.retried = 0
        self.pool_rebuilds = 0
        self.deadline_expired = 0
        self.quarantine_rejections = 0
        self.queue_full_rejections = 0
        self.queue_latency_total = 0.0
        self.queue_latency_jobs = 0
        # Observability: the queue-owned registry (what GET /metrics
        # renders -- queue counters plus merged worker deltas), the
        # per-job trace store, and the failure flight recorder.  The
        # flight directory defaults to living next to the result cache.
        self.metrics = MetricsRegistry()
        self.traces = TraceStore()
        if flight_dir is None and cache is not None and cache.directory:
            flight_dir = os.path.join(cache.directory, "flight")
        self.flight = FlightRecorder(flight_dir)

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running loop and start the scheduler."""
        self._loop = asyncio.get_running_loop()
        if self.use_processes:
            methods = multiprocessing.get_all_start_methods()
            self._mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0]
            )
            self._progress_queue = self._mp_context.Queue()
            self._drainer = threading.Thread(
                target=self._drain_progress, name="serve-progress", daemon=True
            )
            self._drainer.start()
        self._scheduler_task = asyncio.create_task(self._scheduler())

    async def stop(self) -> None:
        """Stop scheduling; running workers are abandoned, not awaited."""
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        self._discard_executor()
        if self._progress_queue is not None:
            try:
                self._progress_queue.put(None)  # drainer shutdown sentinel
            except Exception:
                pass
        if self._drainer is not None:
            self._drainer.join(timeout=2.0)
            if self._drainer.is_alive() and self._progress_queue is not None:
                # Escalate: the sentinel can be lost if a worker wedged the
                # queue's pipe.  Closing our read end makes the blocked
                # ``get`` raise (EOFError/OSError), which the drainer
                # treats as shutdown -- so rejoin once more.
                try:
                    self._progress_queue.close()
                except Exception:
                    pass
                self._drainer.join(timeout=1.0)
            self._drainer = None

    # ------------------------------------------------------------------
    def _ensure_executor(self):
        if self._executor is None:
            self._pool_broken = False
            if self.use_processes:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=self._mp_context,
                    initializer=_init_worker,
                    initargs=(self._progress_queue,),
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="serve-worker",
                )
        return self._executor

    def _discard_executor(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def _drain_progress(self) -> None:
        """(thread) Pump per-bound events from workers into the loop."""
        queue = self._progress_queue
        while True:
            try:
                item = queue.get()
            except (EOFError, OSError):
                break
            if item is None:
                break
            job_id, stats = item
            loop = self._loop
            if loop is None:
                continue
            try:
                loop.call_soon_threadsafe(self._on_progress, job_id, stats)
            except RuntimeError:
                break  # loop closed; server is shutting down

    def _on_progress(self, job_id: str, stats: Dict[str, object]) -> None:
        if isinstance(stats, dict) and "__telemetry__" in stats:
            # Tagged heartbeat batch: append to the job's bounded telemetry
            # ring.  Never mixed into ``progress`` (that stream stays
            # per-bound) and never bumps the long-poll version -- the
            # telemetry endpoint is a plain poll.
            payload = stats["__telemetry__"]
            job = self.jobs.get(job_id)
            if isinstance(payload, list) and job is not None:
                for heartbeat in payload:
                    if isinstance(heartbeat, dict):
                        job.telemetry.append(heartbeat)
                        job.telemetry_total += 1
                overflow = len(job.telemetry) - TELEMETRY_RING
                if overflow > 0:
                    del job.telemetry[:overflow]
            return
        if isinstance(stats, dict) and "__obs__" in stats:
            # Tagged observability payload, not a per-bound progress event:
            # worker spans re-root under the dispatch attempt, the metrics
            # delta merges into the queue registry.  Never shown to
            # long-pollers (progress stays the per-bound stream).
            payload = stats["__obs__"]
            if isinstance(payload, dict):
                job = self.jobs.get(job_id)
                self.traces.absorb(
                    job_id,
                    payload,
                    attach_to=(
                        None if job is None else job._attempt_span_id
                    ),
                )
                delta = payload.get("metrics")
                if isinstance(delta, dict):
                    self.metrics.merge(delta)
            return
        job = self.jobs.get(job_id)
        if job is not None and not job.state.terminal:
            job.progress.append(stats)
            self._bump(job)

    # ------------------------------------------------------------------
    def _bump(self, job: Job) -> None:
        """Publish a change: advance the version, wake every waiter."""
        job.version += 1
        event, job._event = job._event, asyncio.Event()
        event.set()

    def _retire(self, job: Job) -> None:
        """Record a terminal transition and bound the job registry."""
        self._terminal.append(job.job_id)
        while len(self._terminal) > self.max_tracked_jobs:
            old_id = self._terminal.popleft()
            old = self.jobs.get(old_id)
            if old is not None and old.state.terminal:
                del self.jobs[old_id]

    def _new_job_id(self) -> str:
        return f"job-{next(self._sequence):06d}"

    def _trace_begin(self, job: Job) -> None:
        """Mint the job's trace id and open its trace-store entry."""
        if not obs_trace.enabled():
            return
        job.trace_id = obs_trace.new_trace_id()
        self.traces.ensure(job.job_id, job.trace_id)

    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        *,
        priority: int = 0,
        force: bool = False,
        deadline_seconds: Optional[float] = None,
    ) -> Job:
        """Submit a job; returns immediately with its (possibly shared) Job.

        Cache hits come back ``DONE``; identical in-flight specs coalesce
        onto the existing job; everything else queues by priority (larger
        first, FIFO within a priority).  ``force`` skips the cache lookup
        and re-solves (it still coalesces with an in-flight twin); the
        fresh result re-enters the cache under the monotone-upgrade rule,
        which is how a non-definitive cached verdict gets refreshed.
        ``force`` also clears a quarantine on the key -- the operator's
        explicit override of the poison-spec circuit breaker.

        ``deadline_seconds`` bounds the job by wall clock.  It is not part
        of the cache key; submitters that coalesce onto an in-flight job
        inherit *its* budget (the first submitter's deadline stands).  A
        deadline that expires while the job is still queued completes it
        ``DONE`` with a synthetic, uncached UNKNOWN record.
        """
        if self._draining:
            raise QueueDraining(
                "job queue is draining for shutdown; resubmit after restart"
            )
        spec = spec.resolved()
        key = spec.cache_key()
        self.submitted += 1
        self.metrics.inc("qed_jobs_submitted_total")

        cache_read: Optional[Tuple[float, float]] = None
        if self.cache is not None and not force:
            read_start = time.monotonic()
            entry = self.cache.get(key, fingerprint=spec.fingerprint)
            cache_read = (read_start, time.monotonic())
            if entry is not None:
                self.cache_hits += 1
                self.metrics.inc("qed_cache_hits_total")
                record = dict(entry.record)
                record["served_from_cache"] = True
                record["cache_key"] = key
                now = time.time()
                job = Job(
                    job_id=self._new_job_id(),
                    spec=spec,
                    cache_key=key,
                    priority=priority,
                    state=JobState.DONE,
                    cache_hit=True,
                    record=record,
                    submitted_at=now,
                    started_at=now,
                    finished_at=now,
                    version=1,
                )
                self.jobs[job.job_id] = job
                self._trace_begin(job)
                self.traces.add_span(
                    job.job_id, "cache.read", *cache_read, hit=True
                )
                self._retire(job)
                return job
            self.metrics.inc("qed_cache_misses_total")

        quarantine = self.quarantined.get(key)
        if quarantine is not None:
            if force:
                del self.quarantined[key]  # operator override: try again
            else:
                self.quarantine_rejections += 1
                self.metrics.inc("qed_quarantine_rejections_total")
                now = time.time()
                job = Job(
                    job_id=self._new_job_id(),
                    spec=spec,
                    cache_key=key,
                    priority=priority,
                    state=JobState.FAILED,
                    error=(
                        f"quarantined ({quarantine.get('reason')} after "
                        f"{quarantine.get('attempts')} attempts): "
                        f"{quarantine.get('error')}; resubmit with force=true "
                        f"to clear"
                    ),
                    submitted_at=now,
                    finished_at=now,
                    version=1,
                )
                self.jobs[job.job_id] = job
                self._trace_begin(job)
                self.traces.add_event(
                    job.job_id, "queue.quarantine_rejected", key=key
                )
                self.flight.dump(
                    job.job_id,
                    reason="quarantine_rejected",
                    state=job.state.value,
                    trace=self.traces.to_json_dict(job.job_id),
                    error=job.error,
                    extra={"quarantine": dict(quarantine)},
                )
                self._retire(job)
                return job

        existing = self._inflight.get(key)
        if existing is not None:
            existing.coalesced += 1
            self.coalesced += 1
            self.metrics.inc("qed_jobs_coalesced_total")
            self.traces.add_event(
                existing.job_id, "queue.coalesced", priority=priority
            )
            if priority > existing.priority and existing.state is JobState.QUEUED:
                # The strongest waiter sets the pace: requeue higher.
                existing.priority = priority
                heapq.heappush(
                    self._heap, (-priority, next(self._sequence), existing.job_id)
                )
            self._bump(existing)
            return existing

        # Admission bound: only submissions that would actually *queue*
        # count against the depth (cache hits, coalesces and quarantine
        # rejections above never grow the backlog).
        if self.max_queue_depth is not None:
            depth = sum(
                1 for j in self.jobs.values() if j.state is JobState.QUEUED
            )
            if depth >= self.max_queue_depth:
                self.queue_full_rejections += 1
                self.metrics.inc(
                    "qed_admission_rejections_total", reason="queue_full"
                )
                raise QueueFull(
                    f"queue depth {depth} at its bound "
                    f"{self.max_queue_depth}; retry later",
                    retry_after=self._retry_after_hint(),
                )

        job = Job(
            job_id=self._new_job_id(),
            spec=spec,
            cache_key=key,
            priority=priority,
            deadline=Deadline.from_seconds(deadline_seconds),
            submitted_at=time.time(),
            _queued_mono=time.monotonic(),
        )
        self.jobs[job.job_id] = job
        self._trace_begin(job)
        if cache_read is not None:
            self.traces.add_span(job.job_id, "cache.read", *cache_read, hit=False)
        self._inflight[key] = job
        heapq.heappush(self._heap, (-priority, next(self._sequence), job.job_id))
        self._wake.set()
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; returns ``True`` iff it is now CANCELLED.

        A job other submitters coalesced onto is *not* cancelled -- one
        client must not tear down a solve its twins are still waiting on.
        A running solve is not interrupted either (its result is still
        cached for the next asker); the request is recorded on the job
        view (``cancel_requested``) so every waiter can see it.
        """
        job = self.jobs[job_id]
        if job.state is JobState.QUEUED and job.coalesced == 0:
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            self.cancelled += 1
            if self._inflight.get(job.cache_key) is job:
                del self._inflight[job.cache_key]
            self._retire(job)
            self._bump(job)
            return True
        if not job.state.terminal:
            job.cancel_requested = True
            self._bump(job)
        return False

    # ------------------------------------------------------------------
    async def _scheduler(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while (
                self._heap
                and self._running < self.workers
                and not self._draining
            ):
                _, _, job_id = heapq.heappop(self._heap)
                job = self.jobs.get(job_id)
                if job is None or job.state is not JobState.QUEUED:
                    continue  # cancelled, or a stale re-priority entry
                if job.deadline is not None and job.deadline.expired():
                    self._expire_queued(job)
                    continue
                job.state = JobState.RUNNING
                job.started_at = time.time()
                self.queue_latency_total += job.started_at - job.submitted_at
                self.queue_latency_jobs += 1
                now_mono = time.monotonic()
                wait = max(0.0, now_mono - job._queued_mono)
                self.metrics.observe("qed_queue_wait_seconds", wait)
                self.traces.add_span(
                    job.job_id, "queue.wait", job._queued_mono, now_mono
                )
                self._running += 1
                self._bump(job)
                asyncio.create_task(self._run_job(job))

    def _expire_queued(self, job: Job) -> None:
        """Complete a queued job whose wall-clock budget ran out.

        The verdict is an honest, zero-work UNKNOWN: ``DONE`` (the service
        answered the question it was asked within the budget it was given),
        non-definitive, ``deadline_expired`` marked -- and **not** cached,
        so it can never shadow a real solve of the same key.
        """
        job.record = {
            "bug_id": job.spec.bug_id,
            "version_name": job.spec.version,
            "qed_definitive": False,
            "deadline_expired": True,
            "served_from_cache": False,
            "cache_key": job.cache_key,
        }
        job.state = JobState.DONE
        job.started_at = job.finished_at = time.time()
        self.deadline_expired += 1
        self.metrics.inc("qed_deadline_expiries_total", scope="queue")
        self.traces.add_event(job.job_id, "deadline.expired", scope="queued")
        self.flight.dump(
            job.job_id,
            reason="deadline_expired",
            state=job.state.value,
            trace=self.traces.to_json_dict(job.job_id),
            attempts=job.attempts,
        )
        if self._inflight.get(job.cache_key) is job:
            del self._inflight[job.cache_key]
        self._retire(job)
        self._bump(job)

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        retry_delay: Optional[float] = None
        # The attempt span opens *before* dispatch so the worker's shipped
        # batch (which can arrive any time before the future resolves) has
        # a live span to re-root under.
        job._attempt_span_id = self.traces.add_span(
            job.job_id,
            "queue.attempt",
            time.monotonic(),
            None,
            attempt=job.attempts + 1,
        )
        try:
            executor = self._ensure_executor()
            spec_dict = job.spec.canonical_dict()
            kwargs: Dict[str, object] = {}
            if job.deadline is not None:
                # Hand the worker its *remaining* budget; it rebases onto
                # its own monotonic clock and threads it down the stack.
                kwargs["deadline_seconds"] = job.deadline.remaining()
            if self.use_processes:
                call = functools.partial(
                    self.entry, spec_dict, job.job_id, **kwargs
                )
            else:
                def progress(stats: Dict[str, object]) -> None:
                    loop.call_soon_threadsafe(self._on_progress, job.job_id, stats)

                call = functools.partial(
                    self.entry, spec_dict, job.job_id, progress, **kwargs
                )
            result = await loop.run_in_executor(executor, call)
            self._finish_success(job, result)
        except Exception as exc:
            self.traces.close_span(
                job.job_id, job._attempt_span_id, time.monotonic(),
                outcome=type(exc).__name__,
            )
            retry_delay = self._job_failed(job, exc)
        finally:
            self._running -= 1
            if retry_delay is None:
                job.finished_at = time.time()
                if self._inflight.get(job.cache_key) is job:
                    del self._inflight[job.cache_key]
                self._retire(job)
            self._bump(job)
            self._wake.set()
        if retry_delay is not None:
            await self._requeue_after(job, retry_delay)

    def _finish_success(self, job: Job, result: Dict[str, object]) -> None:
        """Apply one successful entry result to *job* (local or remote).

        This is the single completion path: record post-processing, cache
        admission under monotone-upgrade semantics, counters, attempt-span
        close and the deadline-expiry flight dump.  Remote commits
        (:meth:`fleet_complete`) run through the same code, which is what
        makes a served record byte-identical regardless of which host
        solved it.
        """
        record = dict(result["record"])
        record["cache_key"] = job.cache_key
        record.setdefault("served_from_cache", False)
        if self.cache is not None:
            write_start = time.monotonic()
            self.cache.put(
                job.cache_key,
                record,
                fingerprint=job.spec.fingerprint,
                definitive=bool(result.get("definitive", True)),
                spec=job.spec.canonical_dict(),
            )
            self.traces.add_span(
                job.job_id, "cache.write", write_start, time.monotonic()
            )
        job.record = record
        job.state = JobState.DONE
        self.executed += 1
        self.metrics.inc("qed_jobs_executed_total")
        self.traces.close_span(
            job.job_id, job._attempt_span_id, time.monotonic(),
            outcome="done",
        )
        if record.get("deadline_expired"):
            # The worker's budget ran out mid-solve: an honest UNKNOWN,
            # but still a deadline ending worth a flight record.
            self.deadline_expired += 1
            self.metrics.inc("qed_deadline_expiries_total", scope="worker")
            self.traces.add_event(
                job.job_id, "deadline.expired", scope="running"
            )
            self.flight.dump(
                job.job_id,
                reason="deadline_expired",
                state=job.state.value,
                trace=self.traces.to_json_dict(job.job_id),
                attempts=job.attempts + 1,
            )

    def _backoff_delay(self, attempt: int, *, key: str) -> float:
        """Capped exponential backoff with seed-derived jitter.

        The jitter factor lives in [0.5, 1.0] and is drawn from an RNG
        seeded on ``(backoff_seed, key, attempt)``: the same job retries
        on the same schedule run-to-run (tests stay deterministic), while
        different jobs -- e.g. a fleet's worth of requeued leases after a
        partition -- spread out instead of retrying in lockstep.
        """
        base = min(
            self.retry_backoff_base * (2.0 ** (attempt - 1)),
            self.retry_backoff_cap,
        )
        rng = random.Random(f"{self.backoff_seed}:{key}:{attempt}")
        return base * (0.5 + 0.5 * rng.random())

    def _retry_after_hint(self) -> float:
        """Seconds a 429'd client should wait, from observed queue latency."""
        if self.queue_latency_jobs:
            avg = self.queue_latency_total / self.queue_latency_jobs
        else:
            avg = 1.0
        return max(0.5, min(30.0, avg))

    def _job_failed(self, job: Job, exc: Exception) -> Optional[float]:
        """Decide a failed dispatch's fate; returns a backoff delay to retry.

        Only a ``BrokenExecutor`` (the worker process *died* -- OOM kill,
        hard crash) is retried: the job never got an answer, so re-running
        is safe and usually succeeds on a healthy pool.  An exception
        *raised by* the entry is deterministic -- retrying would just
        repeat it -- so it fails the job immediately.  A spec that kills
        workers past ``max_retries`` is quarantined so resubmissions fail
        fast instead of burning a fresh pool each time.
        """
        if isinstance(exc, BrokenExecutor):
            # Every future on the broken pool fails with it; replace the
            # pool so the next dispatch gets a healthy one.
            self._discard_executor()
            self._pool_broken = True
            self.pool_rebuilds += 1
            self.metrics.inc("qed_pool_rebuilds_total")
            job.attempts += 1
            if (
                job.attempts <= self.max_retries
                and not job.cancel_requested
                and not self._draining
            ):
                self.retried += 1
                self.metrics.inc("qed_job_retries_total")
                delay = self._backoff_delay(job.attempts, key=job.cache_key)
                self.traces.add_event(
                    job.job_id,
                    "queue.retry",
                    attempt=job.attempts,
                    backoff_seconds=delay,
                    error=f"{type(exc).__name__}: {exc}",
                )
                job.state = JobState.QUEUED
                job._queued_mono = time.monotonic()  # fresh queue-wait span
                return delay
            self.quarantined[job.cache_key] = {
                "reason": "worker_crash",
                "error": f"{type(exc).__name__}: {exc}",
                "attempts": job.attempts,
                "bug_id": job.spec.bug_id,
                "at": time.time(),
            }
            self.metrics.inc("qed_quarantines_total")
            self.traces.add_event(
                job.job_id, "queue.quarantined", attempts=job.attempts
            )
        job.error = f"{type(exc).__name__}: {exc}"
        job.state = JobState.FAILED
        self.failed += 1
        self.metrics.inc("qed_jobs_failed_total")
        self.flight.dump(
            job.job_id,
            reason=(
                "quarantined"
                if job.cache_key in self.quarantined
                else "failed"
            ),
            state=JobState.FAILED.value,
            trace=self.traces.to_json_dict(job.job_id),
            error=job.error,
            attempts=job.attempts,
        )
        return None

    async def _requeue_after(self, job: Job, delay: float) -> None:
        """(Backoff) Re-queue a crash-retried job after *delay* seconds."""
        await asyncio.sleep(delay)
        if job.state is not JobState.QUEUED:
            return  # cancelled during the backoff window
        heapq.heappush(
            self._heap, (-job.priority, next(self._sequence), job.job_id)
        )
        self._wake.set()

    # ------------------------------------------------------------------
    # Remote dispatch (the fleet coordinator's queue-side surface).  All
    # four methods run on the loop, called from /fleet/* handlers or the
    # coordinator's reaper task, and mirror the local dispatch paths
    # exactly -- same spans, same counters, same completion code.

    def fleet_lease_pop(self) -> Optional[Job]:
        """Pop the next runnable job for a remote lease grant.

        The remote twin of the scheduler's pop: skips stale heap entries,
        expires dead-on-arrival deadlines, transitions the job to RUNNING
        and opens its attempt span (remote batches re-root under it, like
        worker-pool batches do locally).  Local workers and the fleet pull
        from the same heap, so mixed deployments just work.
        """
        if self._draining:
            return None
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self.jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                continue  # cancelled, or a stale re-priority entry
            if job.deadline is not None and job.deadline.expired():
                self._expire_queued(job)
                continue
            job.state = JobState.RUNNING
            job.started_at = time.time()
            self.queue_latency_total += job.started_at - job.submitted_at
            self.queue_latency_jobs += 1
            now_mono = time.monotonic()
            wait = max(0.0, now_mono - job._queued_mono)
            self.metrics.observe("qed_queue_wait_seconds", wait)
            self.traces.add_span(
                job.job_id, "queue.wait", job._queued_mono, now_mono
            )
            job._attempt_span_id = self.traces.add_span(
                job.job_id,
                "queue.attempt",
                now_mono,
                None,
                attempt=job.attempts + 1,
                remote=True,
            )
            self._bump(job)
            return job
        return None

    def _finish_terminal(self, job: Job) -> None:
        """Completion bookkeeping shared by every remote terminal path."""
        job.finished_at = time.time()
        if self._inflight.get(job.cache_key) is job:
            del self._inflight[job.cache_key]
        self._retire(job)
        self._bump(job)

    def fleet_complete(self, job: Job, result: Dict[str, object]) -> None:
        """Commit a fenced remote success through the local success path."""
        self._finish_success(job, result)
        self._finish_terminal(job)

    def fleet_fail(self, job: Job, error: str) -> None:
        """Fail a remote job on a deterministic entry error (no retry).

        Mirrors the local policy: an exception *raised by* the entry
        repeats on re-run, so retrying it remotely would waste a lease.
        """
        self.traces.close_span(
            job.job_id, job._attempt_span_id, time.monotonic(),
            outcome="error",
        )
        job.error = error
        job.state = JobState.FAILED
        self.failed += 1
        self.metrics.inc("qed_jobs_failed_total")
        self.flight.dump(
            job.job_id,
            reason="failed",
            state=JobState.FAILED.value,
            trace=self.traces.to_json_dict(job.job_id),
            error=job.error,
            attempts=job.attempts,
        )
        self._finish_terminal(job)

    def fleet_requeue(self, job: Job, *, reason: str) -> bool:
        """Hand a leased job back (lease expiry, dead worker, crash report).

        Runs the same capped-backoff/quarantine machinery as a local pool
        crash: up to ``max_retries`` jittered requeues, then the spec is
        quarantined and the job FAILED.  Returns ``True`` when the job is
        queued again (including the draining case, where it re-enters
        QUEUED so the drain snapshot persists it for the restart).
        """
        if job.state is not JobState.RUNNING:
            return False
        self.traces.close_span(
            job.job_id, job._attempt_span_id, time.monotonic(),
            outcome=reason,
        )
        if self._draining:
            job.state = JobState.QUEUED
            job._queued_mono = time.monotonic()
            self._bump(job)
            return True
        job.attempts += 1
        if job.attempts <= self.max_retries and not job.cancel_requested:
            self.retried += 1
            self.metrics.inc("qed_job_retries_total")
            delay = self._backoff_delay(job.attempts, key=job.cache_key)
            self.traces.add_event(
                job.job_id,
                "queue.retry",
                attempt=job.attempts,
                backoff_seconds=delay,
                error=reason,
            )
            job.state = JobState.QUEUED
            job._queued_mono = time.monotonic()
            self._bump(job)
            asyncio.ensure_future(self._requeue_after(job, delay))
            return True
        self.quarantined[job.cache_key] = {
            "reason": reason,
            "error": f"remote attempts exhausted ({reason})",
            "attempts": job.attempts,
            "bug_id": job.spec.bug_id,
            "at": time.time(),
        }
        self.metrics.inc("qed_quarantines_total")
        self.traces.add_event(
            job.job_id, "queue.quarantined", attempts=job.attempts
        )
        job.error = f"{reason} after {job.attempts} attempts"
        job.state = JobState.FAILED
        self.failed += 1
        self.metrics.inc("qed_jobs_failed_total")
        self.flight.dump(
            job.job_id,
            reason="quarantined",
            state=JobState.FAILED.value,
            trace=self.traces.to_json_dict(job.job_id),
            error=job.error,
            attempts=job.attempts,
        )
        self._finish_terminal(job)
        return False

    # ------------------------------------------------------------------
    async def drain(self) -> Dict[str, object]:
        """Graceful shutdown: stop dispatching, finish running solves,
        snapshot the rest.

        Sets the draining flag (new submissions raise
        :class:`QueueDraining`, the scheduler stops pulling from the
        heap), waits for in-flight solves to reach a terminal state, then
        returns the :meth:`queue_state` snapshot of still-queued jobs --
        the JSON-able payload a server persists so
        :meth:`restore_state` can resubmit the work after a restart.
        Queued jobs are then cancelled locally so their waiters unblock
        with a terminal state instead of hanging on a dead queue.
        """
        self._draining = True
        self._wake.set()
        # Remote leases count as in-flight work: their commits still land
        # during the drain, and a worker that dies mid-drain has its lease
        # expired by the reaper, which requeues the job into the snapshot.
        while self._running or (
            self.fleet is not None and self.fleet.has_active_leases()
        ):
            await asyncio.sleep(0.02)
        state = self.queue_state()
        for job in list(self.jobs.values()):
            if job.state is JobState.QUEUED:
                job.state = JobState.CANCELLED
                job.error = "drained for shutdown (state persisted)"
                job.finished_at = time.time()
                self.cancelled += 1
                if self._inflight.get(job.cache_key) is job:
                    del self._inflight[job.cache_key]
                self._retire(job)
                self._bump(job)
        return state

    def queue_state(self) -> Dict[str, object]:
        """JSON-able snapshot of still-queued work (specs + priorities).

        Deadlines are persisted as *remaining* seconds -- monotonic expiry
        times are meaningless in the next process, remaining budget is
        not.  Submission order is preserved; exact heap order is not (it
        is re-derived from the priorities on restore).
        """
        queued: List[Dict[str, object]] = []
        for job in self.jobs.values():
            if job.state is not JobState.QUEUED:
                continue
            item: Dict[str, object] = {
                "spec": job.spec.canonical_dict(),
                "priority": job.priority,
            }
            if job.deadline is not None:
                item["deadline_seconds"] = job.deadline.remaining()
            queued.append(item)
        return {"format": 1, "queued": queued}

    def restore_state(self, state: Dict[str, object]) -> List[Job]:
        """Resubmit jobs persisted by :meth:`drain` (the resume path)."""
        if state.get("format") != 1:
            raise ValueError(
                f"unsupported queue-state format {state.get('format')!r}"
            )
        restored = []
        for item in state.get("queued") or []:
            if not isinstance(item, dict) or "spec" not in item:
                continue  # tolerate a hand-edited or truncated snapshot
            deadline_seconds = item.get("deadline_seconds")
            restored.append(
                self.submit(
                    JobSpec.from_dict(dict(item["spec"])),
                    priority=int(item.get("priority", 0)),
                    deadline_seconds=(
                        None
                        if deadline_seconds is None
                        else float(deadline_seconds)
                    ),
                )
            )
        return restored

    # ------------------------------------------------------------------
    async def wait(self, job: Job, *, since: int, timeout: float) -> None:
        """Long-poll primitive: return when ``job.version > since``, the
        job can no longer change, or *timeout* elapses."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, timeout)
        while job.version <= since and not job.state.terminal:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            event = job._event
            try:
                await asyncio.wait_for(event.wait(), remaining)
            except asyncio.TimeoutError:
                break

    # ------------------------------------------------------------------
    def telemetry_dict(
        self, job_id: str, *, since: int = 0
    ) -> Optional[Dict[str, object]]:
        """Wire form for ``GET /jobs/<id>/telemetry`` (None = unknown job).

        ``since`` is an absolute heartbeat index: a poller passes the
        ``total`` it already saw and receives only newer heartbeats.
        ``dropped`` counts heartbeats that fell off the bounded ring
        before anyone read them.
        """
        job = self.jobs.get(job_id)
        if job is None:
            return None
        first = job.telemetry_total - len(job.telemetry)
        start = max(0, since - first)
        return {
            "job_id": job.job_id,
            "state": job.state.value,
            "heartbeats": job.telemetry[start:],
            "total": job.telemetry_total,
            "dropped": first,
        }

    # ------------------------------------------------------------------
    def jobs_summary(self) -> List[Dict[str, object]]:
        """Compact per-job rows for ``GET /jobs`` (dashboard discovery).

        Deliberately small -- no records, progress events or heartbeats,
        just enough for a poller to find the jobs worth drilling into via
        ``GET /jobs/<id>`` and ``GET /jobs/<id>/telemetry``.
        """
        rows: List[Dict[str, object]] = []
        for job in self.jobs.values():
            rows.append(
                {
                    "job_id": job.job_id,
                    "state": job.state.value,
                    "bug_id": job.spec.bug_id,
                    "version": job.spec.version,
                    "bound": job.spec.bound,
                    "cache_hit": job.cache_hit,
                    "attempts": job.attempts,
                    "submitted_at": job.submitted_at,
                    "progress_events": len(job.progress),
                    "telemetry_total": job.telemetry_total,
                }
            )
        rows.sort(key=lambda row: (row["submitted_at"], row["job_id"]))
        return rows

    # ------------------------------------------------------------------
    def stats_dict(self) -> Dict[str, object]:
        """Counters for ``GET /stats`` and
        :func:`repro.eval.report.serving_statistics`."""
        queued = sum(
            1 for job in self.jobs.values() if job.state is JobState.QUEUED
        )
        return {
            "workers": self.workers,
            "use_processes": self.use_processes,
            "jobs_submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "retried": self.retried,
            "pool_rebuilds": self.pool_rebuilds,
            "pool_broken": self._pool_broken,
            "deadline_expired": self.deadline_expired,
            "quarantined": len(self.quarantined),
            "quarantine_rejections": self.quarantine_rejections,
            "queue_full_rejections": self.queue_full_rejections,
            "max_queue_depth": self.max_queue_depth,
            "draining": self._draining,
            "fleet": (
                None if self.fleet is None else self.fleet.stats_dict()
            ),
            "running": self._running,
            "queued": queued,
            "jobs_tracked": len(self.jobs),
            "queue_latency_seconds_total": self.queue_latency_total,
            "queue_latency_jobs": self.queue_latency_jobs,
            "traced_jobs": len(self.traces.job_ids()),
            "flight_dumps": self.flight.dumps,
            "flight_write_errors": self.flight.write_errors,
            "flight_evictions": self.flight.evictions,
        }

    def render_metrics(self) -> str:
        """Prometheus text for ``GET /metrics``.

        Counters accumulate as they happen (queue events inline, worker
        deltas merged off the progress pipe); point-in-time state is
        refreshed as gauges at scrape time, including the result cache's
        own counters so the metrics endpoint and ``GET /stats`` agree.
        """
        queued = sum(
            1 for job in self.jobs.values() if job.state is JobState.QUEUED
        )
        self.metrics.set_gauge("qed_queue_depth", float(queued))
        self.metrics.set_gauge("qed_jobs_running", float(self._running))
        self.metrics.set_gauge(
            "qed_quarantined_keys", float(len(self.quarantined))
        )
        self.metrics.set_gauge(
            "qed_queue_draining", 1.0 if self._draining else 0.0
        )
        self.metrics.set_gauge("qed_flight_dumps", float(self.flight.dumps))
        self.metrics.set_gauge(
            "qed_flight_evictions", float(self.flight.evictions)
        )
        if self.cache is not None:
            cache_stats = self.cache.stats_dict()
            for field_name in ("hits", "misses", "puts", "upgrades"):
                value = cache_stats.get(field_name)
                if isinstance(value, (int, float)):
                    self.metrics.set_gauge(
                        f"qed_result_cache_{field_name}", float(value)
                    )
        if self.fleet is not None:
            self.fleet.refresh_gauges()
        return self.metrics.render_prometheus()
