"""Typed stdlib HTTP client for the verification service.

:class:`ServeClient` wraps the wire protocol of
:mod:`repro.serve.server` -- submit, long-poll, cache lookup, stats --
behind typed calls, and :func:`run_campaign_via_server` rebuilds a full
:class:`~repro.eval.campaign.CampaignResult` from served jobs, which is how
the 16-version campaign runs through the service (``scripts/serve_qed.py
campaign --via-server``).

Only ``http.client`` is used (one connection per request, matching the
server's connection-per-request protocol); there are no third-party
dependencies anywhere in the serving stack.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TypedDict, cast
from urllib.parse import urlencode, urlsplit

from repro import faults
from repro.eval.campaign import (
    CampaignConfig,
    CampaignResult,
    record_from_json_dict,
)
from repro.serve.keys import JobSpec

__all__ = [
    "JobView",
    "QueueStats",
    "ServeClient",
    "ServeError",
    "StatsPayload",
    "run_campaign_via_server",
]


class QueueStats(TypedDict, total=False):
    """Typed mirror of :meth:`repro.serve.queue.JobQueue.stats_dict`."""

    workers: int
    use_processes: bool
    jobs_submitted: int
    cache_hits: int
    coalesced: int
    executed: int
    failed: int
    cancelled: int
    retried: int
    pool_rebuilds: int
    pool_broken: bool
    deadline_expired: int
    quarantined: int
    quarantine_rejections: int
    queue_full_rejections: int
    max_queue_depth: Optional[int]
    draining: bool
    fleet: Optional[Dict[str, object]]
    running: int
    queued: int
    jobs_tracked: int
    queue_latency_seconds_total: float
    queue_latency_jobs: int
    traced_jobs: int
    flight_dumps: int
    flight_write_errors: int
    flight_evictions: int


class StatsPayload(TypedDict, total=False):
    """Typed mirror of ``GET /stats``."""

    queue: QueueStats
    cache: Optional[Dict[str, object]]
    http: Dict[str, int]


class ServeError(RuntimeError):
    """A request failed: transport error, non-2xx status, or a FAILED job.

    ``retry_after`` is populated from a 429 response's payload -- the
    server's own estimate of when resubmitting is worthwhile (admission
    control: queue depth bound or per-client token bucket).
    """

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        retry_after: Optional[float] = None,
        payload: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        #: The decoded JSON error body, when the server sent one -- e.g.
        #: the /healthz not-ready payload behind a 503.
        self.payload = payload


@dataclass
class JobView:
    """Client-side snapshot of one job (mirror of ``GET /jobs/<id>``)."""

    job_id: str
    state: str
    cache_key: str = ""
    cache_hit: bool = False
    coalesced: int = 0
    record: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    progress: List[Dict[str, object]] = field(default_factory=list)
    progress_total: int = 0
    version: int = 0
    trace_id: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    @classmethod
    def from_payload(cls, data: Dict[str, object]) -> "JobView":
        return cls(
            job_id=str(data["job_id"]),
            state=str(data["state"]),
            cache_key=str(data.get("cache_key", "")),
            cache_hit=bool(data.get("cache_hit", False)),
            coalesced=int(data.get("coalesced", 0)),
            record=data.get("record"),
            error=data.get("error"),
            progress=list(data.get("progress") or []),
            progress_total=int(data.get("progress_total", 0)),
            version=int(data.get("version", 0)),
            trace_id=(
                str(data["trace_id"])
                if data.get("trace_id") is not None
                else None
            ),
        )


class ServeClient:
    """One verification-service endpoint, e.g. ``http://127.0.0.1:8123``.

    Transport failures (connection refused/reset, a dropped socket) are
    retried up to ``retries`` times with capped exponential backoff.  That
    is safe for every call in the protocol: the server's endpoints are
    idempotent by construction -- ``POST /jobs`` is content-addressed
    (an identical resubmission coalesces onto the in-flight job or hits
    the cache, it never starts a second solve) and the reads/cancels are
    plain lookups.  An HTTP *response*, of any status, is authoritative
    and never retried.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 120.0,
        retries: int = 3,
        retry_backoff: float = 0.05,
        jitter_seed: Optional[object] = None,
        client_id: Optional[str] = None,
    ) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// endpoints are supported: {base_url}")
        if not split.hostname:
            raise ValueError(f"no host in base url {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        #: Sent as ``X-Client-Id`` so the server's admission controller
        #: buckets this client's submissions under a stable identity.
        self.client_id = client_id
        # Seed-derived backoff jitter: every client (and every fleet
        # worker, which seeds with its worker id) retries on its own
        # deterministic schedule, so a reconnect storm after a partition
        # spreads out instead of hammering the server in lockstep.
        if jitter_seed is None:
            jitter_seed = (self.host, self.port, os.getpid())
        self._backoff_rng = random.Random(repr(jitter_seed))

    def _backoff_delay(self, attempt: int) -> float:
        """Capped exponential backoff with jitter in [0.5, 1.0]x."""
        base = min(self.retry_backoff * (2.0 ** (attempt - 1)), 2.0)
        return base * (0.5 + 0.5 * self._backoff_rng.random())

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Dict[str, object]:
        last_error: Optional[ServeError] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self._backoff_delay(attempt))
            try:
                return self._request_once(method, path, body)
            except ServeError as exc:
                if exc.status is not None:
                    raise  # an HTTP answer is authoritative; don't retry
                last_error = exc
        assert last_error is not None
        raise last_error

    def _request_once(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Dict[str, object]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            if self.client_id is not None:
                headers["X-Client-Id"] = self.client_id
            try:
                # Chaos-harness transport site: a seeded ``reset`` raises
                # ConnectionResetError here, exactly like a server that
                # died mid-handshake -- exercised by the retry loop above.
                faults.crash_point("serve.client.request")
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"{method} {path} failed: {type(exc).__name__}: {exc}"
                )
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                raise ServeError(
                    f"{method} {path}: non-JSON response ({raw[:80]!r})",
                    status=response.status,
                )
            if response.status >= 400:
                retry_after = data.get("retry_after")
                raise ServeError(
                    f"{method} {path} -> {response.status}: "
                    f"{data.get('error', raw[:200])}",
                    status=response.status,
                    retry_after=(
                        float(retry_after)
                        if isinstance(retry_after, (int, float))
                        else None
                    ),
                    payload=data if isinstance(data, dict) else None,
                )
            return data
        finally:
            connection.close()

    # ------------------------------------------------------------------
    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except ServeError:
            return False

    def healthz(self) -> Dict[str, object]:
        """The full /healthz payload; a 503 not-ready answer is returned
        as a payload (``ok: false`` plus the individual signals), not
        raised -- the probe's whole point is explaining unreadiness."""
        try:
            return self._request("GET", "/healthz")
        except ServeError as exc:
            if exc.status == 503 and exc.payload is not None:
                return exc.payload
            raise

    def submit(
        self,
        *,
        spec: Optional[JobSpec] = None,
        bug_id: Optional[str] = None,
        config: Optional[CampaignConfig] = None,
        priority: int = 0,
        force: bool = False,
        deadline_seconds: Optional[float] = None,
    ) -> JobView:
        """Submit by full spec, or by ``bug_id`` (+ optional config).

        ``force`` asks the server to re-solve even on a cache hit (the
        refresh path for non-definitive cached verdicts, and the operator
        override that clears a quarantined spec).  ``deadline_seconds``
        bounds the job by wall clock server-side; at expiry it completes
        with a non-definitive UNKNOWN record instead of running on.
        """
        if (spec is None) == (bug_id is None):
            raise ValueError("pass exactly one of spec= or bug_id=")
        body: Dict[str, object] = {"priority": priority}
        if force:
            body["force"] = True
        if deadline_seconds is not None:
            body["deadline_seconds"] = deadline_seconds
        if spec is not None:
            body["spec"] = spec.canonical_dict()
        else:
            body["bug_id"] = bug_id
            if config is not None:
                body["config"] = config.to_json_dict()
        return JobView.from_payload(self._request("POST", "/jobs", body)["job"])

    def job(
        self,
        job_id: str,
        *,
        wait: Optional[float] = None,
        since: Optional[int] = None,
        progress_since: int = 0,
    ) -> JobView:
        query: Dict[str, object] = {}
        if wait is not None:
            query["wait"] = wait
        if since is not None:
            query["since"] = since
        if progress_since:
            query["progress_since"] = progress_since
        path = f"/jobs/{job_id}"
        if query:
            path += "?" + urlencode(query)
        return JobView.from_payload(self._request("GET", path)["job"])

    def wait_done(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        poll: float = 30.0,
        on_progress=None,
    ) -> JobView:
        """Long-poll *job_id* until it is terminal.

        ``on_progress`` receives each new per-bound progress dict exactly
        once as the polls stream them in.
        """
        deadline = time.monotonic() + timeout
        version = -1
        seen_progress = 0
        while True:
            view = self.job(
                job_id,
                wait=min(poll, max(0.0, deadline - time.monotonic())),
                since=version,
                progress_since=seen_progress,
            )
            if on_progress is not None:
                for event in view.progress:
                    on_progress(event)
            seen_progress = view.progress_total
            version = view.version
            if view.done:
                return view
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {view.state} after {timeout:.0f}s"
                )

    def cancel(self, job_id: str) -> bool:
        return bool(self._request("DELETE", f"/jobs/{job_id}")["cancelled"])

    def result(self, cache_key: str) -> Optional[Dict[str, object]]:
        try:
            return self._request("GET", f"/results/{cache_key}")["result"]
        except ServeError as exc:
            if exc.status == 404:
                return None
            raise

    def trace(self, job_id: str) -> Dict[str, object]:
        """``GET /jobs/<id>/trace``: the job's aggregated span tree."""
        trace = self._request("GET", f"/jobs/{job_id}/trace")["trace"]
        assert isinstance(trace, dict)
        return trace

    def jobs(self) -> List[Dict[str, object]]:
        """``GET /jobs``: compact per-job summaries (oldest first)."""
        jobs = self._request("GET", "/jobs")["jobs"]
        assert isinstance(jobs, list)
        return jobs

    def telemetry(self, job_id: str, *, since: int = 0) -> Dict[str, object]:
        """``GET /jobs/<id>/telemetry``: live solver heartbeats.

        Pass the ``total`` of the previous payload as ``since`` to receive
        only newer heartbeats (the server keeps a bounded ring per job).
        """
        path = f"/jobs/{job_id}/telemetry"
        if since:
            path += f"?since={since}"
        telemetry = self._request("GET", path)["telemetry"]
        assert isinstance(telemetry, dict)
        return telemetry

    def metrics_text(self) -> str:
        """``GET /metrics``: the raw Prometheus text exposition.

        Parse with :func:`repro.obs.parse_prometheus` when counters are
        needed as numbers.
        """
        last_error: Optional[ServeError] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self._backoff_delay(attempt))
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                try:
                    faults.crash_point("serve.client.request")
                    connection.request("GET", "/metrics")
                    response = connection.getresponse()
                    raw = response.read()
                except (OSError, http.client.HTTPException) as exc:
                    last_error = ServeError(
                        f"GET /metrics failed: {type(exc).__name__}: {exc}"
                    )
                    continue
                if response.status >= 400:
                    raise ServeError(
                        f"GET /metrics -> {response.status}: {raw[:200]!r}",
                        status=response.status,
                    )
                return raw.decode("utf-8")
            finally:
                connection.close()
        assert last_error is not None
        raise last_error

    def stats(self) -> StatsPayload:
        return cast(StatsPayload, self._request("GET", "/stats"))

    # -- fleet worker protocol -----------------------------------------
    def fleet_register(
        self, *, worker_id: str, pid: int = 0, host: str = ""
    ) -> Dict[str, object]:
        """``POST /fleet/register``: join the fleet; returns the pacing."""
        return self._request(
            "POST",
            "/fleet/register",
            {"worker_id": worker_id, "pid": pid, "host": host},
        )

    def fleet_lease(self, *, worker_id: str) -> Dict[str, object]:
        """``POST /fleet/lease``: pull one job (``{"lease": None}`` = idle)."""
        return self._request("POST", "/fleet/lease", {"worker_id": worker_id})

    def fleet_heartbeat(self, body: Dict[str, object]) -> Dict[str, object]:
        """``POST /fleet/heartbeat``: renew a lease + ship buffered events."""
        return self._request("POST", "/fleet/heartbeat", body)

    def fleet_complete(self, body: Dict[str, object]) -> Dict[str, object]:
        """``POST /fleet/complete``: fenced commit of a lease's outcome."""
        return self._request("POST", "/fleet/complete", body)

    def fleet_deregister(self, *, worker_id: str) -> Dict[str, object]:
        """``POST /fleet/deregister``: graceful exit from the fleet."""
        return self._request(
            "POST", "/fleet/deregister", {"worker_id": worker_id}
        )

    def fleet(self) -> Dict[str, object]:
        """``GET /fleet``: the coordinator's worker/lease table."""
        payload = self._request("GET", "/fleet")["fleet"]
        assert isinstance(payload, dict)
        return payload

    def cache_log(
        self, *, since: int = 0, max_bytes: int = 1 << 20
    ) -> Dict[str, object]:
        """``GET /cache/log?since=N``: one replication chunk.

        The payload's ``data`` is a latin-1-decoded byte range of the
        primary's append-only result log (byte-exact through JSON);
        ``since``/``end``/``size`` are byte offsets for the next pull.
        :class:`repro.serve.fleet.CacheFollower` drives this.
        """
        return self._request(
            "GET", f"/cache/log?since={int(since)}&max={int(max_bytes)}"
        )


# ----------------------------------------------------------------------
def run_campaign_via_server(
    client: ServeClient,
    config: Optional[CampaignConfig] = None,
    *,
    timeout_per_job: float = 600.0,
) -> CampaignResult:
    """Run the bug-detection campaign *through* the service.

    Submits one job per selected bug (all up front, so the server's queue
    and cache do the scheduling), waits for each in bug-selection order,
    and rebuilds the same :class:`CampaignResult` a direct
    :func:`~repro.eval.campaign.run_campaign` produces -- records match it
    byte-for-byte on every deterministic field
    (:func:`repro.eval.campaign.record_comparable_dict`), with serving
    provenance (``served_from_cache``/``cache_key``) filled in on top.
    """
    from repro.uarch.bugs import BUGS

    config = config or CampaignConfig()
    bug_ids = (
        [str(b) for b in config.bug_ids]
        if config.bug_ids is not None
        else [bug.bug_id for bug in BUGS]
    )
    start = time.perf_counter()
    # Fingerprints stay unresolved client-side: the server resolves them
    # once, off-loop, against its memoized elaborations -- no point in the
    # client serially elaborating every netlist before submitting.
    submissions = [
        client.submit(
            spec=JobSpec.from_campaign(
                bug_id, config, resolve_fingerprint=False
            )
        )
        for bug_id in bug_ids
    ]
    campaign = CampaignResult()
    for view in submissions:
        final = (
            view
            if view.done
            else client.wait_done(view.job_id, timeout=timeout_per_job)
        )
        if final.state != "done" or final.record is None:
            raise ServeError(
                f"job {final.job_id} ({final.state}): {final.error or 'no record'}"
            )
        campaign.records.append(record_from_json_dict(final.record))
    campaign.wall_clock_seconds = time.perf_counter() - start
    return campaign
