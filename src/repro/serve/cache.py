"""Two-tier content-addressed result store for served verification jobs.

Tier 1 is a bounded in-memory LRU (the hot set); tier 2 is an append-only
JSON-lines log under the cache directory (the complete set).  Every ``put``
appends one line; ``get`` hits memory first and falls back to a byte-offset
index into the log, so a restart costs one sequential scan to rebuild the
index and nothing more.

Keys come from :meth:`repro.serve.keys.JobSpec.cache_key` and embed the
design *fingerprint*, so an RTL change never returns a stale verdict -- the
old entries are simply unreachable.  :meth:`ResultCache.invalidate_fingerprint`
additionally drops them eagerly (e.g. when a design family is retired).

Upgrade semantics are **monotone**: a result whose QED verdict was
non-definitive (its conflict budget expired before a violation was found)
may be *replaced* by a definitive verdict for the same key, never the
reverse.  The log replay applies the same rule, so persistence cannot
resurrect a weaker answer.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro import faults

#: Bump when the entry layout changes; old log lines are skipped on replay.
ENTRY_FORMAT = 1

DEFAULT_CACHE_DIR = ".repro_cache"
_LOG_NAME = "results.jsonl"


@dataclass
class CacheEntry:
    """One cached job result."""

    key: str
    fingerprint: str
    #: ``True`` when the verdict cannot be improved by re-running (a found
    #: violation, or a full no-violation proof with no budget expiry).
    definitive: bool
    #: Full :func:`repro.eval.campaign.record_to_json_dict` payload.
    record: Dict[str, object]
    #: Canonical spec dict, kept for ``GET /results/<key>`` transparency.
    spec: Dict[str, object] = field(default_factory=dict)
    created_at: float = 0.0
    hits: int = 0

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "format": ENTRY_FORMAT,
            "key": self.key,
            "fingerprint": self.fingerprint,
            "definitive": self.definitive,
            "record": self.record,
            "spec": self.spec,
            "created_at": self.created_at,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "CacheEntry":
        return cls(
            key=str(data["key"]),
            fingerprint=str(data.get("fingerprint", "")),
            definitive=bool(data.get("definitive", True)),
            record=dict(data.get("record") or {}),
            spec=dict(data.get("spec") or {}),
            created_at=float(data.get("created_at", 0.0)),
        )


class ResultCache:
    """In-memory LRU over an append-only JSON-lines persistence log.

    Thread-safe (one lock around both tiers): the job queue touches it from
    the event loop while the CLI and tests may read it from other threads.
    ``directory=None`` disables persistence (pure in-memory cache).
    """

    def __init__(
        self,
        directory: Optional[str] = DEFAULT_CACHE_DIR,
        *,
        memory_limit: int = 256,
    ) -> None:
        if memory_limit < 1:
            raise ValueError("memory_limit must be at least 1")
        self.directory = directory
        self.memory_limit = memory_limit
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, CacheEntry]" = OrderedDict()
        #: Byte offset of each key's *newest admitted* log line.
        self._disk_offsets: Dict[str, int] = {}
        #: Definitive flags mirrored for every known key (memory or disk),
        #: so monotonicity checks never need a disk read.
        self._definitive: Dict[str, bool] = {}
        #: Fingerprint per known key, so invalidation never reads the log.
        self._fingerprints: Dict[str, str] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.upgrades = 0
        self.downgrades_rejected = 0
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            self._replay_log()

    # ------------------------------------------------------------------
    @property
    def log_path(self) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, _LOG_NAME)

    def _replay_log(self) -> None:
        """Rebuild the key index from the log (restart path).

        Later lines win subject to the monotone-upgrade rule, mirroring the
        in-process admission logic -- so a crash between an UNKNOWN write
        and its definitive upgrade replays to the strongest surviving line.
        """
        path = self.log_path
        if path is None or not os.path.exists(path):
            return
        with open(path, "rb") as stream:
            offset = 0
            for raw in stream:
                line = raw.decode("utf-8", errors="replace").strip()
                if line:
                    try:
                        data = json.loads(line)
                    except json.JSONDecodeError:
                        data = None  # torn tail write; skip
                    if isinstance(data, dict) and data.get("format") == ENTRY_FORMAT:
                        if data.get("tombstone"):
                            self._drop_fingerprint(str(data["tombstone"]))
                        elif data.get("key"):
                            key = str(data["key"])
                            definitive = bool(data.get("definitive", True))
                            if not (
                                self._definitive.get(key, False)
                                and not definitive
                            ):
                                self._disk_offsets[key] = offset
                                self._definitive[key] = definitive
                                self._fingerprints[key] = str(
                                    data.get("fingerprint", "")
                                )
                offset += len(raw)

    def _read_disk(self, key: str) -> Optional[CacheEntry]:
        path = self.log_path
        offset = self._disk_offsets.get(key)
        if path is None or offset is None:
            return None
        try:
            with open(path, "rb") as stream:
                stream.seek(offset)
                data = json.loads(stream.readline().decode("utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        entry = CacheEntry.from_json_dict(data)
        return entry if entry.key == key else None

    def _append_raw(self, data: Dict[str, object]) -> Optional[int]:
        path = self.log_path
        if path is None:
            return None
        line = json.dumps(data, sort_keys=True) + "\n"
        # Chaos-harness write site: a seeded torn_write truncates the
        # payload mid-line (exactly what a crash between ``write`` and the
        # page hitting disk produces) and a seeded duplicate appends the
        # line twice -- the replay path must shrug both off.
        payload = faults.mangle_write("serve.cache.append", line.encode("utf-8"))
        mode = "r+b" if os.path.exists(path) else "wb"
        with open(path, mode) as stream:
            stream.seek(0, os.SEEK_END)
            offset = stream.tell()
            if offset:
                # Heal a torn tail before appending: a previous crash mid-
                # write can leave a line without its newline, and gluing
                # this entry onto it would lose *both* on replay.  One
                # seek+read per append buys crash-safety for the whole log.
                stream.seek(offset - 1)
                if stream.read(1) != b"\n":
                    stream.write(b"\n")
                    offset += 1
            stream.write(payload)
        return offset

    def _append_log(self, entry: CacheEntry) -> None:
        offset = self._append_raw(entry.to_json_dict())
        if offset is not None:
            self._disk_offsets[entry.key] = offset

    def _remember(self, entry: CacheEntry) -> None:
        self._memory[entry.key] = entry
        self._memory.move_to_end(entry.key)
        while len(self._memory) > self.memory_limit:
            self._memory.popitem(last=False)  # evict LRU; disk still has it

    # ------------------------------------------------------------------
    def get(
        self, key: str, *, fingerprint: Optional[str] = None
    ) -> Optional[CacheEntry]:
        """Look *key* up (memory, then disk).

        ``fingerprint`` is a defense-in-depth check: the fingerprint is
        already part of the key, but a caller that knows the current design
        content can assert the entry matches it.
        """
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
            else:
                entry = self._read_disk(key)
                if entry is not None:
                    self._remember(entry)
            if entry is None or (
                fingerprint is not None and entry.fingerprint != fingerprint
            ):
                self.misses += 1
                return None
            entry.hits += 1
            self.hits += 1
            return entry

    def put(
        self,
        key: str,
        record: Dict[str, object],
        *,
        fingerprint: str,
        definitive: bool,
        spec: Optional[Dict[str, object]] = None,
    ) -> CacheEntry:
        """Admit a result, honouring monotone upgrade semantics.

        Returns the entry now stored under *key* -- the new one, or the
        existing definitive entry when the new result would be a downgrade
        (UNKNOWN-at-budget never replaces a definitive verdict).
        """
        with self._lock:
            if self._definitive.get(key, False) and not definitive:
                self.downgrades_rejected += 1
                existing = self._memory.get(key) or self._read_disk(key)
                if existing is not None:
                    return existing
                # Index said definitive but the log line is unreadable --
                # fall through and store the fresh result instead.
            if key in self._definitive and definitive and not self._definitive[key]:
                self.upgrades += 1
            entry = CacheEntry(
                key=key,
                fingerprint=fingerprint,
                definitive=definitive,
                record=dict(record),
                spec=dict(spec or {}),
                created_at=time.time(),
            )
            self._definitive[key] = definitive
            self._fingerprints[key] = fingerprint
            self._remember(entry)
            self._append_log(entry)
            self.puts += 1
            return entry

    # ------------------------------------------------------------------
    def _drop_fingerprint(self, fingerprint: str) -> int:
        """Index-only removal of every key recorded under *fingerprint*."""
        stale = [
            key
            for key, known in self._fingerprints.items()
            if known == fingerprint
        ]
        for key in stale:
            self._memory.pop(key, None)
            self._disk_offsets.pop(key, None)
            self._definitive.pop(key, None)
            del self._fingerprints[key]
        return len(stale)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry recorded under *fingerprint* -- durably.

        Key-embedding already guarantees such entries can never answer a
        request for the *current* design content; this retires the old
        entries outright.  A tombstone line is appended to the log so the
        drop survives restarts (log replay applies tombstones in order:
        entries appended after one are admitted again).  Returns the
        number of entries dropped.
        """
        with self._lock:
            dropped = self._drop_fingerprint(fingerprint)
            self._append_raw(
                {"format": ENTRY_FORMAT, "tombstone": fingerprint}
            )
            return dropped

    def read_log(
        self, since: int = 0, max_bytes: int = 1 << 20
    ) -> "Tuple[bytes, int]":
        """Raw byte range of the persistence log, for replication.

        Returns ``(chunk, size)``: up to *max_bytes* bytes starting at
        offset *since* (clamped to the current end), plus the log's total
        size.  The log is append-only *in bytes* -- even torn-tail healing
        only appends -- so a follower that copies successive ranges builds
        a byte-identical mirror whose replay (torn tails and all) matches
        the primary's.  ``GET /cache/log?since=N`` serves this.
        """
        path = self.log_path
        if path is None:
            raise ValueError("cache has no persistence log (directory=None)")
        if since < 0 or max_bytes < 1:
            raise ValueError("since must be >= 0 and max_bytes >= 1")
        with self._lock:
            try:
                with open(path, "rb") as stream:
                    stream.seek(0, os.SEEK_END)
                    size = stream.tell()
                    stream.seek(min(since, size))
                    chunk = stream.read(max_bytes)
            except FileNotFoundError:
                return b"", 0
        return chunk, size

    def writable(self) -> bool:
        """Whether the persistence log can currently be appended to.

        The ``GET /healthz`` readiness probe reports this: a cache whose
        log directory lost write permission (full disk remount, volume
        detach) silently degrades every solve to non-persisted, which an
        operator wants surfaced *before* jobs start failing.  An
        in-memory cache (``directory=None``) is always "writable".
        """
        if self.directory is None:
            return True
        path = self.log_path
        assert path is not None
        probe = path if os.path.exists(path) else self.directory
        return os.access(probe, os.W_OK)

    def __len__(self) -> int:
        with self._lock:
            return len(self._definitive)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._definitive

    def stats_dict(self) -> Dict[str, object]:
        """Counters for ``GET /stats`` and
        :func:`repro.eval.report.serving_statistics`."""
        with self._lock:
            return {
                "entries": len(self._definitive),
                "entries_in_memory": len(self._memory),
                "memory_limit": self.memory_limit,
                "persistent": self.directory is not None,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "upgrades": self.upgrades,
                "downgrades_rejected": self.downgrades_rejected,
            }
