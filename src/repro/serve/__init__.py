"""Verification-as-a-service over the Symbolic QED campaign machinery.

The paper's industrial flow is a *service*: engineers launch per-block
Symbolic QED runs against design versions all day, and most queries repeat
-- same version, same focus set, same bound.  This package turns the
repository's campaign jobs into exactly that service: an async job queue
with a content-addressed result cache behind a small stdlib HTTP API, so
the second ask of any query is a cache lookup instead of a solve.

Architecture
============

::

    client / CLI (repro.serve.client, scripts/serve_qed.py)
        |  POST /jobs {bug_id | spec, deadline_seconds?}
        |  GET /jobs/<id>?wait= (long-poll, streams per-bound BoundStats)
        |  [transport error -> retry w/ capped, seed-jittered exponential
        v   backoff; safe: submissions are content-addressed / idempotent]
    +------------------ QEDServer (repro.serve.server) ------------------+
    |  stdlib asyncio HTTP: parse -> route; malformed input => 4xx on    |
    |  that connection only, the accept loop never dies                  |
    |  admission control: bounded queue depth + per-client token bucket  |
    |  (X-Client-Id) => 429 + Retry-After instead of unbounded backlog   |
    |  GET /healthz: readiness (pool liveness, cache writability, queue  |
    |  depth, fleet liveness) -- 503 while pool rebuilds / cache         |
    |  read-only / draining / fleet-only with no live remote worker      |
    |  SIGTERM -> drain(): running solves finish (local AND leased       |
    |  remote), queued specs persist to queue_state.json, restored on    |
    |  the next start                                                    |
    +------+--------------------------------+-----------------------------+
           v                                | POST /fleet/* (remote pull)
    (local fork pool)                       v
    +----------- FleetCoordinator + FleetWorker (repro.serve.fleet) ------+
    |  worker protocol: register -> lease(job, fence epoch, TTL) ->       |
    |  heartbeat (renews lease, ships telemetry/progress batches) ->      |
    |  complete {lease_id, fence, result | crashed | error}               |
    |                                                                     |
    |  lease / fence state machine (per job):                             |
    |      grant: fence += 1, lease ACTIVE, expires = now + TTL           |
    |      heartbeat: expires = now + TTL (healthy slow solves never      |
    |          expire); revoked lease answered "revoked" -> worker kills  |
    |          its child solve                                            |
    |      expiry (missed beats / dead worker): lease removed => token    |
    |          invalid, job requeued into the capped-backoff/quarantine   |
    |          machinery, reassignment counted                            |
    |      commit: accepted iff lease still ACTIVE and body.fence ==      |
    |          current epoch -- a paused-then-resumed zombie's late       |
    |          commit is fence-rejected, never double-applied             |
    |  failure detection: live -> suspect (2 missed beats) -> dead (4);   |
    |  any request from the worker revives it                            |
    +---------------------------+-----------------------------------------+
                                v  (remote commits join the SAME
                                    completion path as local solves)
    +------------------ JobQueue (repro.serve.queue) ---------------------+
    |  JobSpec.resolved().cache_key()   (repro.serve.keys: canonical      |
    |      version+fingerprint+mode+focus+bound+knobs -> SHA-256;         |
    |      deadlines/retries are NOT keyed -- submission, not semantics)  |
    |    |                                                                |
    |    |-- cache hit  -> DONE immediately (served_from_cache=True)      |
    |    |-- identical in-flight spec -> coalesce (N waiters, one solve)  |
    |    |-- quarantined spec (kept killing workers) -> fail fast,        |
    |    |       force=True clears                                        |
    |    '-- else: priority heap -> scheduler -> fork process pool        |
    |              detect_bug(...) with remaining deadline budget and     |
    |              on_bound streaming BoundStats back through a shared    |
    |              mp queue; worker crash => pool replaced + retry with   |
    |              capped backoff, then quarantine (never a hung job);    |
    |              deadline expiry => honest non-definitive UNKNOWN       |
    +---------------------------+-----------------------------------------+
                                v
    +------------------ ResultCache (repro.serve.cache) ------------------+
    |  tier 1: in-memory LRU     tier 2: append-only JSON-lines log       |
    |  keys embed the design fingerprint (content, not version name)      |
    |  monotone upgrades: UNKNOWN-at-budget/-deadline may become          |
    |  definitive, never the reverse -- including across restarts (log    |
    |  replay); torn tails are healed at the next append                  |
    |      |  GET /cache/log?since=<offset> (raw byte ranges)             |
    |      v                                                              |
    |  CacheFollower (repro.serve.fleet): byte-mirrors the append-only    |
    |  log onto a standby, which replays it and serves warm hits after    |
    |  primary loss (torn tails skipped, healed on the next sync)         |
    +----------------------------------------------------------------------+

Deployment shapes: :class:`~repro.serve.server.LocalServer` runs the whole
stack on a background thread in-process (tests, quickstart, CLI spawn
mode); ``scripts/serve_qed.py serve`` runs it standalone, and
``scripts/serve_qed.py worker --server URL`` joins its fleet from another
host.  The invariant that matters: a definitive verdict is byte-identical
whether the solve ran locally, remotely, or survived any schedule of
worker kills, partitions and zombie commits -- fault tolerance changes
*when* the answer arrives, never *what* it is.  Exercised by the seeded
chaos harness (:mod:`repro.faults` driving ``tests/chaos``, including the
network-boundary sites) and ``scripts/loadgen_qed.py`` for the admission
path.
"""

from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.client import (
    JobView,
    ServeClient,
    ServeError,
    run_campaign_via_server,
)
from repro.serve.fleet import (
    AdmissionController,
    CacheFollower,
    FleetCoordinator,
    FleetWorker,
)
from repro.serve.keys import JobSpec
from repro.serve.queue import (
    Job,
    JobQueue,
    JobState,
    QueueDraining,
    QueueFull,
    execute_job_spec,
)
from repro.serve.server import LocalServer, QEDServer

__all__ = [
    "AdmissionController",
    "CacheEntry",
    "CacheFollower",
    "FleetCoordinator",
    "FleetWorker",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "JobView",
    "LocalServer",
    "QEDServer",
    "QueueDraining",
    "QueueFull",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "execute_job_spec",
    "run_campaign_via_server",
]
