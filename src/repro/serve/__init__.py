"""Verification-as-a-service over the Symbolic QED campaign machinery.

The paper's industrial flow is a *service*: engineers launch per-block
Symbolic QED runs against design versions all day, and most queries repeat
-- same version, same focus set, same bound.  This package turns the
repository's campaign jobs into exactly that service: an async job queue
with a content-addressed result cache behind a small stdlib HTTP API, so
the second ask of any query is a cache lookup instead of a solve.

Architecture
============

::

    client / CLI (repro.serve.client, scripts/serve_qed.py)
        |  POST /jobs {bug_id | spec}        GET /jobs/<id>?wait= (long-poll,
        v                                        streams per-bound BoundStats)
    +------------------ QEDServer (repro.serve.server) ------------------+
    |  stdlib asyncio HTTP: parse -> route; malformed input => 4xx on    |
    |  that connection only, the accept loop never dies                  |
    +---------------------------+-----------------------------------------+
                                v
    +------------------ JobQueue (repro.serve.queue) ---------------------+
    |  JobSpec.resolved().cache_key()   (repro.serve.keys: canonical      |
    |      version+fingerprint+mode+focus+bound+knobs -> SHA-256)         |
    |    |                                                                |
    |    |-- cache hit  -> DONE immediately (served_from_cache=True)      |
    |    |-- identical in-flight spec -> coalesce (N waiters, one solve)  |
    |    '-- else: priority heap -> scheduler -> fork process pool        |
    |              detect_bug(...) with on_bound streaming BoundStats     |
    |              back through a shared mp queue; worker crash => FAILED |
    |              and a fresh pool (never a hung job)                    |
    +---------------------------+-----------------------------------------+
                                v
    +------------------ ResultCache (repro.serve.cache) ------------------+
    |  tier 1: in-memory LRU     tier 2: append-only JSON-lines log       |
    |  keys embed the design fingerprint (content, not version name)      |
    |  monotone upgrades: UNKNOWN-at-budget may become definitive,        |
    |  never the reverse -- including across restarts (log replay)        |
    +----------------------------------------------------------------------+

Deployment shapes: :class:`~repro.serve.server.LocalServer` runs the whole
stack on a background thread in-process (tests, quickstart, CLI spawn
mode); ``scripts/serve_qed.py serve`` runs it standalone.
"""

from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.client import (
    JobView,
    ServeClient,
    ServeError,
    run_campaign_via_server,
)
from repro.serve.keys import JobSpec
from repro.serve.queue import Job, JobQueue, JobState, execute_job_spec
from repro.serve.server import LocalServer, QEDServer

__all__ = [
    "CacheEntry",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "JobView",
    "LocalServer",
    "QEDServer",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "execute_job_spec",
    "run_campaign_via_server",
]
