"""Verification-as-a-service over the Symbolic QED campaign machinery.

The paper's industrial flow is a *service*: engineers launch per-block
Symbolic QED runs against design versions all day, and most queries repeat
-- same version, same focus set, same bound.  This package turns the
repository's campaign jobs into exactly that service: an async job queue
with a content-addressed result cache behind a small stdlib HTTP API, so
the second ask of any query is a cache lookup instead of a solve.

Architecture
============

::

    client / CLI (repro.serve.client, scripts/serve_qed.py)
        |  POST /jobs {bug_id | spec, deadline_seconds?}
        |  GET /jobs/<id>?wait= (long-poll, streams per-bound BoundStats)
        |  [transport error -> retry w/ capped exponential backoff; safe:
        v   submissions are content-addressed, hence idempotent]
    +------------------ QEDServer (repro.serve.server) ------------------+
    |  stdlib asyncio HTTP: parse -> route; malformed input => 4xx on    |
    |  that connection only, the accept loop never dies                  |
    |  GET /healthz: readiness (pool liveness, cache writability, queue  |
    |  depth) -- 503 while pool rebuilds / cache read-only / draining    |
    |  SIGTERM -> drain(): running solves finish, queued specs persist   |
    |  to queue_state.json, restored on the next start                   |
    +---------------------------+-----------------------------------------+
                                v
    +------------------ JobQueue (repro.serve.queue) ---------------------+
    |  JobSpec.resolved().cache_key()   (repro.serve.keys: canonical      |
    |      version+fingerprint+mode+focus+bound+knobs -> SHA-256;         |
    |      deadlines/retries are NOT keyed -- submission, not semantics)  |
    |    |                                                                |
    |    |-- cache hit  -> DONE immediately (served_from_cache=True)      |
    |    |-- identical in-flight spec -> coalesce (N waiters, one solve)  |
    |    |-- quarantined spec (kept killing workers) -> fail fast,        |
    |    |       force=True clears                                        |
    |    '-- else: priority heap -> scheduler -> fork process pool        |
    |              detect_bug(...) with remaining deadline budget and     |
    |              on_bound streaming BoundStats back through a shared    |
    |              mp queue; worker crash => pool replaced + retry with   |
    |              capped backoff, then quarantine (never a hung job);    |
    |              deadline expiry => honest non-definitive UNKNOWN       |
    +---------------------------+-----------------------------------------+
                                v
    +------------------ ResultCache (repro.serve.cache) ------------------+
    |  tier 1: in-memory LRU     tier 2: append-only JSON-lines log       |
    |  keys embed the design fingerprint (content, not version name)      |
    |  monotone upgrades: UNKNOWN-at-budget/-deadline may become          |
    |  definitive, never the reverse -- including across restarts (log    |
    |  replay); torn tails are healed at the next append                  |
    +----------------------------------------------------------------------+

Deployment shapes: :class:`~repro.serve.server.LocalServer` runs the whole
stack on a background thread in-process (tests, quickstart, CLI spawn
mode); ``scripts/serve_qed.py serve`` runs it standalone.  Fault tolerance
is exercised by the seeded chaos harness (:mod:`repro.faults` driving
``tests/chaos``).
"""

from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.client import (
    JobView,
    ServeClient,
    ServeError,
    run_campaign_via_server,
)
from repro.serve.keys import JobSpec
from repro.serve.queue import (
    Job,
    JobQueue,
    JobState,
    QueueDraining,
    execute_job_spec,
)
from repro.serve.server import LocalServer, QEDServer

__all__ = [
    "CacheEntry",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "JobView",
    "LocalServer",
    "QEDServer",
    "QueueDraining",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "execute_job_spec",
    "run_campaign_via_server",
]
