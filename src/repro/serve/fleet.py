"""Multi-host solve fabric: lease-based remote workers over HTTP.

The serving stack of :mod:`repro.serve` is single-process: one
:class:`~repro.serve.queue.JobQueue` dispatching to a local executor pool.
This module adds the multi-host tier on top of the same queue, with the
same invariant PR 7 established in-process -- **a fault may cost time or
degrade a verdict to a non-definitive UNKNOWN, but a definitive verdict
produced under any failure schedule is byte-identical to a fault-free
direct run** -- now holding across worker processes on other hosts.

Four pieces, all stdlib-only:

:class:`FleetCoordinator`
    Server-side. Owns the worker registry, the lease table and the
    per-job **fence epochs**.  Workers pull queued jobs under
    time-bounded leases; each grant bumps the job's fence epoch, and a
    commit is accepted only when it carries the fence of the currently
    active lease.  A worker that goes silent (partition, SIGKILL) stops
    renewing; its lease expires and the job is requeued through the
    queue's existing capped-backoff/quarantine machinery.  When the
    zombie comes back and commits, the fence comparison rejects it -- a
    job is never double-recorded.  Heartbeat-driven failure detection
    runs alongside: ``live -> suspect -> dead`` with grace derived from
    the heartbeat interval (suspect after 2 missed beats, dead after 4);
    a dead worker's leases are expired immediately instead of waiting
    out the lease clock.

:class:`FleetWorker`
    Worker-side pull loop: register, lease, solve (in a child process it
    can SIGKILL on revocation, or a thread for tests), heartbeat while
    solving (each beat renews the lease and ships buffered progress /
    telemetry / obs events upstream), then commit with the fence token.
    Chaos sites ``fleet.worker.heartbeat`` (drop a beat) and
    ``fleet.worker.commit`` (delay into zombiehood, drop, duplicate)
    make the failure schedules of :mod:`tests.chaos` reproducible.

:class:`AdmissionController`
    Front-end admission: per-client token buckets (client identity from
    the ``X-Client-Id`` header, else the peer address) so one greedy
    client cannot starve the farm.  Works with the queue's bounded
    ``max_queue_depth``; both reject with HTTP 429 + ``Retry-After``.

:class:`CacheFollower`
    Replication client for the append-only result-cache log.  Streams
    ``GET /cache/log?since=<offset>`` byte ranges into a local mirror; a
    standby server over the mirror directory replays it (torn tails are
    skipped by the normal replay path) and serves warm hits after
    primary loss.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import queue as queue_mod
import random
import socket
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Set

from repro import faults
from repro.serve.cache import _LOG_NAME, ResultCache
from repro.serve.client import ServeClient, ServeError
from repro.serve.queue import Job, JobState, _init_worker, execute_job_spec

__all__ = [
    "AdmissionController",
    "CacheFollower",
    "FleetCoordinator",
    "FleetWorker",
    "Lease",
    "WorkerInfo",
    "WorkerState",
]


class WorkerState(str, Enum):
    """Heartbeat-driven liveness verdict for one registered worker."""

    LIVE = "live"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class WorkerInfo:
    """Coordinator-side view of one registered worker."""

    worker_id: str
    pid: int = 0
    host: str = ""
    state: WorkerState = WorkerState.LIVE
    registered_at: float = 0.0
    last_seen_mono: float = 0.0
    lease_ids: Set[str] = field(default_factory=set)
    jobs_done: int = 0
    heartbeats: int = 0

    def to_json_dict(self, now_mono: float) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "pid": self.pid,
            "host": self.host,
            "state": self.state.value,
            "leases": len(self.lease_ids),
            "jobs_done": self.jobs_done,
            "heartbeats": self.heartbeats,
            "last_seen_seconds_ago": max(0.0, now_mono - self.last_seen_mono),
        }


@dataclass
class Lease:
    """One time-bounded grant of one job to one worker.

    ``fence`` is the job's fence epoch at grant time -- monotonically
    increasing per job, so of all leases ever granted for a job exactly
    one carries the current epoch.  Commit acceptance requires the lease
    to still be in the active table *and* its fence to equal the job's
    current epoch; expiry removes it from the table, which is what
    invalidates a zombie's token even before the job is re-granted.
    """

    lease_id: str
    job_id: str
    cache_key: str
    worker_id: str
    fence: int
    granted_mono: float
    expires_mono: float


#: Completed/rejected lease ids remembered for duplicate-commit detection.
_COMPLETED_LEASES_KEPT = 1024


class FleetCoordinator:
    """Lease/fence bookkeeping between the job queue and remote workers.

    Lives on the queue's event loop (all handlers are called from server
    coroutines; the reaper is an asyncio task on the same loop), so no
    locking is needed -- same threading contract as :class:`JobQueue`.
    Attaches itself as ``queue.fleet``.
    """

    def __init__(
        self,
        queue,
        *,
        lease_seconds: float = 15.0,
        heartbeat_seconds: float = 2.0,
    ) -> None:
        if lease_seconds <= 0 or heartbeat_seconds <= 0:
            raise ValueError("lease_seconds and heartbeat_seconds must be > 0")
        self.queue = queue
        self.lease_seconds = lease_seconds
        self.heartbeat_seconds = heartbeat_seconds
        #: Failure-detection grace, derived from the heartbeat interval:
        #: two missed beats makes a worker suspect, four makes it dead.
        self.suspect_after = 2.0 * heartbeat_seconds
        self.dead_after = 4.0 * heartbeat_seconds
        self._workers: Dict[str, WorkerInfo] = {}
        self._leases: Dict[str, Lease] = {}
        #: Per-job fence epoch (bumped on every grant); entries are pruned
        #: once the job is terminal, never while it can still be granted.
        self._fences: Dict[str, int] = {}
        self._lease_seq = itertools.count()
        self._completed: Set[str] = set()
        self._completed_order: "deque[str]" = deque()
        self._reaper_task: Optional[asyncio.Task] = None
        # Counters for /stats and /metrics.
        self.workers_registered = 0
        self.workers_died = 0
        self.workers_revived = 0
        self.leases_granted = 0
        self.leases_expired = 0
        self.lease_reassignments = 0
        self.heartbeats_received = 0
        self.commits_received = 0
        self.commits_accepted = 0
        self.fenced_rejections = 0
        self.duplicate_commits = 0
        self.crash_reports = 0
        queue.fleet = self

    # -- lifecycle ---------------------------------------------------
    def start(self) -> None:
        """Start the reaper task (requires a running event loop)."""
        if self._reaper_task is None:
            self._reaper_task = asyncio.get_running_loop().create_task(
                self._reaper()
            )

    async def stop(self) -> None:
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            try:
                await self._reaper_task
            except asyncio.CancelledError:
                pass
            self._reaper_task = None

    async def _reaper(self) -> None:
        """Periodic sweep: liveness transitions + lease expiry."""
        interval = max(self.heartbeat_seconds / 2.0, 0.02)
        while True:
            await asyncio.sleep(interval)
            self.sweep(time.monotonic())

    # -- handlers (one per POST /fleet/<verb>) -----------------------
    def register(self, body: Dict[str, object]) -> Dict[str, object]:
        """``POST /fleet/register``: join (or rejoin) the fleet.

        The response carries the coordinator's lease/heartbeat intervals;
        workers adopt them so one server-side knob paces the whole fleet.
        """
        worker_id = self._worker_id(body)
        now = time.monotonic()
        info = self._workers.get(worker_id)
        if info is None:
            self._prune_workers()
            info = WorkerInfo(
                worker_id=worker_id, registered_at=time.time()
            )
            self._workers[worker_id] = info
            self.workers_registered += 1
            self.queue.metrics.inc("qed_fleet_workers_registered_total")
        info.pid = int(body.get("pid") or 0)
        info.host = str(body.get("host") or "")
        self._touch(info, now)
        return {
            "worker_id": worker_id,
            "lease_seconds": self.lease_seconds,
            "heartbeat_seconds": self.heartbeat_seconds,
            "suspect_after_seconds": self.suspect_after,
            "dead_after_seconds": self.dead_after,
        }

    def lease(self, body: Dict[str, object]) -> Dict[str, object]:
        """``POST /fleet/lease``: pull one queued job under a fresh lease.

        Every poll doubles as a liveness signal.  An unregistered worker
        (e.g. after a coordinator restart) gets ``reregister`` instead of
        work so it can rejoin before pulling.
        """
        worker_id = self._worker_id(body)
        now = time.monotonic()
        info = self._workers.get(worker_id)
        if info is None:
            return {"lease": None, "reregister": True}
        self._touch(info, now)
        job = self.queue.fleet_lease_pop()
        if job is None:
            return {"lease": None}
        fence = self._fences.get(job.job_id, 0) + 1
        self._fences[job.job_id] = fence
        lease = Lease(
            lease_id=f"lease-{next(self._lease_seq):06d}",
            job_id=job.job_id,
            cache_key=job.cache_key,
            worker_id=worker_id,
            fence=fence,
            granted_mono=now,
            expires_mono=now + self.lease_seconds,
        )
        self._leases[lease.lease_id] = lease
        info.lease_ids.add(lease.lease_id)
        self.leases_granted += 1
        self.queue.metrics.inc("qed_fleet_leases_granted_total")
        self.queue.traces.add_event(
            job.job_id,
            "fleet.lease_granted",
            worker=worker_id,
            lease_id=lease.lease_id,
            fence=fence,
        )
        payload: Dict[str, object] = {
            "lease_id": lease.lease_id,
            "job_id": job.job_id,
            "cache_key": job.cache_key,
            "fence": fence,
            "spec": job.spec.canonical_dict(),
            "lease_seconds": self.lease_seconds,
            "heartbeat_seconds": self.heartbeat_seconds,
        }
        if job.deadline is not None:
            payload["deadline_seconds"] = job.deadline.remaining()
        return {"lease": payload}

    def heartbeat(self, body: Dict[str, object]) -> Dict[str, object]:
        """``POST /fleet/heartbeat``: renew a lease, ship buffered events.

        A valid beat pushes the lease expiry out by a full lease window,
        so a healthy-but-slow solve is never reassigned.  Events (per-bound
        progress, ``__telemetry__`` batches, ``__obs__`` batches) are
        forwarded into the queue's normal progress pipeline -- but only
        while the lease is live, so a zombie cannot pollute the telemetry
        of a reassigned attempt.
        """
        worker_id = self._worker_id(body)
        now = time.monotonic()
        info = self._workers.get(worker_id)
        if info is not None:
            self._touch(info, now)
            info.heartbeats += 1
        self.heartbeats_received += 1
        self.queue.metrics.inc("qed_fleet_heartbeats_total")
        status = "none"
        lease_id = str(body.get("lease_id") or "")
        if lease_id:
            lease = self._leases.get(lease_id)
            if lease is not None and lease.worker_id == worker_id:
                lease.expires_mono = now + self.lease_seconds
                status = "ok"
                self._forward_events(lease.job_id, body.get("events"))
            else:
                status = "revoked"
        response: Dict[str, object] = {"lease": status}
        if info is None:
            response["reregister"] = True
        return response

    def complete(self, body: Dict[str, object]) -> Dict[str, object]:
        """``POST /fleet/complete``: fenced commit of one lease's outcome.

        Accepted only for the currently active lease carrying the job's
        current fence epoch; the completion then runs through the exact
        code path a local dispatch uses (:meth:`JobQueue.fleet_complete`),
        which is what makes a remote definitive verdict byte-identical to
        a direct run.  Everything else is rejected with a reason --
        ``stale_fence`` (the zombie case: the lease expired, and possibly
        another worker now owns a newer epoch), ``duplicate_commit`` (this
        lease already committed), or ``unknown_job``.
        """
        worker_id = self._worker_id(body)
        lease_id = str(body.get("lease_id") or "")
        job_id = str(body.get("job_id") or "")
        try:
            fence = int(body.get("fence", -1))
        except (TypeError, ValueError):
            raise ValueError("fence must be an integer")
        now = time.monotonic()
        info = self._workers.get(worker_id)
        if info is not None:
            self._touch(info, now)  # a committing zombie is at least alive
        self.commits_received += 1
        self.queue.metrics.inc("qed_fleet_commits_total")
        lease = self._leases.get(lease_id)
        job = self.queue.jobs.get(job_id)
        current = self._fences.get(job_id)
        if (
            lease is not None
            and lease.worker_id == worker_id
            and lease.job_id == job_id
            and fence == lease.fence
            and fence == current
            and job is not None
            and job.state is JobState.RUNNING
        ):
            self._release(lease, completed=True)
            self._forward_events(job_id, body.get("events"))
            return self._apply_outcome(job, info, body)
        # -- rejection taxonomy (only stale fences count as fenced) --
        if lease_id in self._completed:
            self.duplicate_commits += 1
            self.queue.metrics.inc("qed_fleet_duplicate_commits_total")
            return {"accepted": False, "reason": "duplicate_commit"}
        if job is None:
            return {"accepted": False, "reason": "unknown_job"}
        self.fenced_rejections += 1
        self.queue.metrics.inc("qed_fleet_fenced_commits_total")
        self.queue.traces.add_event(
            job_id,
            "fleet.commit_fenced",
            worker=worker_id,
            lease_id=lease_id,
            fence=fence,
            current_fence=current,
            job_state=job.state.value,
        )
        return {"accepted": False, "reason": "stale_fence"}

    def deregister(self, body: Dict[str, object]) -> Dict[str, object]:
        """``POST /fleet/deregister``: graceful exit.

        Any leases the worker still holds are expired immediately (their
        jobs requeue without waiting out the lease clock).
        """
        worker_id = self._worker_id(body)
        info = self._workers.pop(worker_id, None)
        if info is not None:
            for lease_id in list(info.lease_ids):
                lease = self._leases.get(lease_id)
                if lease is not None:
                    self._expire(lease, reason="worker_deregistered")
        return {"worker_id": worker_id, "removed": info is not None}

    # -- internals ---------------------------------------------------
    @staticmethod
    def _worker_id(body: Dict[str, object]) -> str:
        worker_id = str(body.get("worker_id") or "") if isinstance(body, dict) else ""
        if not worker_id:
            raise ValueError("worker_id is required")
        return worker_id

    def _touch(self, info: WorkerInfo, now: float) -> None:
        if info.state is WorkerState.DEAD:
            self.workers_revived += 1
        info.state = WorkerState.LIVE
        info.last_seen_mono = now

    def _prune_workers(self, limit: int = 256) -> None:
        """Bound the registry: drop the longest-dead entries past *limit*."""
        if len(self._workers) < limit:
            return
        dead = sorted(
            (w for w in self._workers.values() if w.state is WorkerState.DEAD),
            key=lambda w: w.last_seen_mono,
        )
        for info in dead[: max(1, len(self._workers) - limit + 1)]:
            if not info.lease_ids:
                del self._workers[info.worker_id]

    def _forward_events(self, job_id: str, events: object) -> None:
        """Feed worker-shipped events through the queue's progress path.

        Each event is exactly what the local progress pipe would carry: a
        per-bound stats dict, a ``{"__telemetry__": [...]}`` batch, or a
        ``{"__obs__": {...}}`` batch -- so telemetry rings, trace
        re-rooting and metrics merging all work unchanged for remote jobs.
        """
        if not isinstance(events, list):
            return
        for event in events:
            if isinstance(event, dict):
                self.queue._on_progress(job_id, event)

    def _apply_outcome(
        self,
        job: Job,
        info: Optional[WorkerInfo],
        body: Dict[str, object],
    ) -> Dict[str, object]:
        """Commit an accepted lease's outcome to the queue."""
        result = body.get("result")
        if isinstance(result, dict) and isinstance(result.get("record"), dict):
            self.queue.fleet_complete(job, result)
            self.commits_accepted += 1
            if info is not None:
                info.jobs_done += 1
            self._fences.pop(job.job_id, None)
            return {"accepted": True, "reason": "accepted"}
        if body.get("crashed"):
            # The remote *solver process* died under the worker -- the
            # same retryable class as a local pool crash, so it goes back
            # through the capped-backoff/quarantine machinery instead of
            # failing the job on a deterministic-error path.
            self.crash_reports += 1
            self.queue.metrics.inc("qed_fleet_crash_reports_total")
            requeued = self.queue.fleet_requeue(job, reason="worker_crash")
            if not requeued:
                self._fences.pop(job.job_id, None)
            return {"accepted": True, "reason": "crash_reported", "requeued": requeued}
        error = str(body.get("error") or "remote worker reported no result")
        self.queue.fleet_fail(job, error)
        self.commits_accepted += 1
        self._fences.pop(job.job_id, None)
        return {"accepted": True, "reason": "accepted"}

    def _release(self, lease: Lease, *, completed: bool) -> None:
        self._leases.pop(lease.lease_id, None)
        info = self._workers.get(lease.worker_id)
        if info is not None:
            info.lease_ids.discard(lease.lease_id)
        if completed:
            self._completed.add(lease.lease_id)
            self._completed_order.append(lease.lease_id)
            while len(self._completed_order) > _COMPLETED_LEASES_KEPT:
                self._completed.discard(self._completed_order.popleft())

    def _expire(self, lease: Lease, *, reason: str) -> None:
        """Invalidate a lease and hand its job back to the queue."""
        self._release(lease, completed=False)
        self.leases_expired += 1
        self.queue.metrics.inc("qed_fleet_leases_expired_total")
        self.queue.traces.add_event(
            lease.job_id,
            "fleet.lease_expired",
            worker=lease.worker_id,
            lease_id=lease.lease_id,
            fence=lease.fence,
            reason=reason,
        )
        job = self.queue.jobs.get(lease.job_id)
        if job is not None and job.state is JobState.RUNNING:
            self.lease_reassignments += 1
            self.queue.metrics.inc("qed_fleet_lease_reassignments_total")
            self.queue.fleet_requeue(job, reason=reason)

    def sweep(self, now: float) -> None:
        """One reaper pass: liveness transitions, lease expiry, GC."""
        for info in self._workers.values():
            age = now - info.last_seen_mono
            if info.state is not WorkerState.DEAD and age > self.dead_after:
                info.state = WorkerState.DEAD
                self.workers_died += 1
                self.queue.metrics.inc("qed_fleet_worker_deaths_total")
                for lease_id in list(info.lease_ids):
                    lease = self._leases.get(lease_id)
                    if lease is not None:
                        self._expire(lease, reason="worker_dead")
            elif info.state is WorkerState.LIVE and age > self.suspect_after:
                info.state = WorkerState.SUSPECT
        for lease in list(self._leases.values()):
            if lease.expires_mono <= now:
                self._expire(lease, reason="lease_expired")
        leased_jobs = {lease.job_id for lease in self._leases.values()}
        for job_id in list(self._fences):
            if job_id in leased_jobs:
                continue
            job = self.queue.jobs.get(job_id)
            if job is None or job.state.terminal:
                del self._fences[job_id]

    # -- introspection -----------------------------------------------
    def worker_counts(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in WorkerState}
        for info in self._workers.values():
            counts[info.state.value] += 1
        return counts

    def live_workers(self) -> int:
        return self.worker_counts()["live"]

    def has_active_leases(self) -> bool:
        return bool(self._leases)

    def stats_dict(self) -> Dict[str, object]:
        """Fleet section of ``GET /stats`` (and ``GET /fleet``)."""
        now = time.monotonic()
        counts = self.worker_counts()
        return {
            "lease_seconds": self.lease_seconds,
            "heartbeat_seconds": self.heartbeat_seconds,
            "workers": counts,
            "workers_registered": self.workers_registered,
            "workers_died": self.workers_died,
            "workers_revived": self.workers_revived,
            "leases_outstanding": len(self._leases),
            "leases_granted": self.leases_granted,
            "leases_expired": self.leases_expired,
            "lease_reassignments": self.lease_reassignments,
            "heartbeats_received": self.heartbeats_received,
            "commits_received": self.commits_received,
            "commits_accepted": self.commits_accepted,
            "fenced_commits_rejected": self.fenced_rejections,
            "duplicate_commits": self.duplicate_commits,
            "crash_reports": self.crash_reports,
            "workers_table": [
                info.to_json_dict(now)
                for info in sorted(
                    self._workers.values(), key=lambda w: w.worker_id
                )
            ],
        }

    def refresh_gauges(self) -> None:
        """Point-in-time fleet gauges for ``GET /metrics`` scrape time."""
        counts = self.worker_counts()
        metrics = self.queue.metrics
        metrics.set_gauge("qed_fleet_workers_live", float(counts["live"]))
        metrics.set_gauge("qed_fleet_workers_suspect", float(counts["suspect"]))
        metrics.set_gauge("qed_fleet_workers_dead", float(counts["dead"]))
        metrics.set_gauge(
            "qed_fleet_leases_outstanding", float(len(self._leases))
        )


# ----------------------------------------------------------------------
# Worker side.
def _remote_child(  # fork-entry: dispatched via multiprocessing.Process
    entry: Callable,
    spec_dict: Dict[str, object],
    job_id: str,
    deadline_seconds: Optional[float],
    progress_queue,
    result_queue,
) -> None:
    """Child-process body of one remote solve.

    Installs the progress queue exactly like the local pool initializer
    does, so ``execute_job_spec`` ships per-bound progress, telemetry
    batches and obs batches through the same ``(job_id, payload)`` tuples
    -- the worker relays them upstream in heartbeat/commit bodies.
    """
    _init_worker(progress_queue)
    try:
        kwargs: Dict[str, object] = {}
        if deadline_seconds is not None:
            kwargs["deadline_seconds"] = deadline_seconds
        outcome: Dict[str, object] = {
            "result": entry(spec_dict, job_id, **kwargs)
        }
    except BaseException as exc:  # entry exceptions are deterministic
        outcome = {"error": f"{type(exc).__name__}: {exc}"}
    try:
        result_queue.put(outcome)
        result_queue.close()
        result_queue.join_thread()  # flush before exit; the put is the point
    except Exception:
        pass


class _ProcessRunner:
    """One solve in a child process (killable on lease revocation)."""

    def __init__(
        self,
        entry: Callable,
        spec_dict: Dict[str, object],
        job_id: str,
        deadline_seconds: Optional[float],
    ) -> None:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        self._progress = ctx.Queue()
        self._result = ctx.Queue()
        self._proc = ctx.Process(
            target=_remote_child,
            args=(
                entry,
                spec_dict,
                job_id,
                deadline_seconds,
                self._progress,
                self._result,
            ),
            daemon=True,
        )
        self._proc.start()

    def wait(self, timeout: float) -> bool:
        self._proc.join(timeout)
        return self._proc.exitcode is not None

    def drain_events(self) -> List[Dict[str, object]]:
        events: List[Dict[str, object]] = []
        while True:
            try:
                item = self._progress.get_nowait()
            except (queue_mod.Empty, EOFError, OSError):
                break
            if (
                isinstance(item, tuple)
                and len(item) == 2
                and isinstance(item[1], dict)
            ):
                events.append(item[1])
        return events

    def kill(self) -> None:
        if self._proc.exitcode is None:
            self._proc.kill()
        self._proc.join(1.0)

    def outcome(self) -> Dict[str, object]:
        try:
            out = self._result.get(timeout=1.0)
        except (queue_mod.Empty, EOFError, OSError):
            out = None
        if isinstance(out, dict):
            return out
        return {"crashed": True, "exitcode": self._proc.exitcode}


class _ThreadRunner:
    """One solve on a thread (test mode; revocation abandons the thread)."""

    def __init__(
        self,
        entry: Callable,
        spec_dict: Dict[str, object],
        job_id: str,
        deadline_seconds: Optional[float],
    ) -> None:
        self._events: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._outcome: Optional[Dict[str, object]] = None

        def progress(stats: Dict[str, object]) -> None:
            with self._lock:
                self._events.append(stats)

        def main() -> None:
            try:
                kwargs: Dict[str, object] = {}
                if deadline_seconds is not None:
                    kwargs["deadline_seconds"] = deadline_seconds
                self._outcome = {
                    "result": entry(spec_dict, job_id, progress, **kwargs)
                }
            except BaseException as exc:
                self._outcome = {"error": f"{type(exc).__name__}: {exc}"}

        self._thread = threading.Thread(
            target=main, name="fleet-solve", daemon=True
        )
        self._thread.start()

    def wait(self, timeout: float) -> bool:
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def drain_events(self) -> List[Dict[str, object]]:
        with self._lock:
            events, self._events = self._events, []
        return events

    def kill(self) -> None:
        pass  # threads cannot be killed; the daemon thread is abandoned

    def outcome(self) -> Dict[str, object]:
        out = self._outcome
        if isinstance(out, dict):
            return out
        return {"crashed": True}


class FleetWorker:
    """Pull-loop worker: register -> lease -> solve+heartbeat -> commit.

    ``use_processes=True`` (the deployment mode) runs each solve in a
    child process that can be SIGKILLed when the coordinator revokes the
    lease; ``use_processes=False`` runs it on a daemon thread (tests).
    The worker's client backoff is jittered with a seed derived from the
    worker id, so a fleet that lost its server retries decorrelated
    instead of in lockstep.
    """

    def __init__(
        self,
        server_url: str,
        *,
        worker_id: Optional[str] = None,
        entry: Callable = execute_job_spec,
        use_processes: bool = True,
        poll_seconds: float = 0.5,
        max_jobs: Optional[int] = None,
        request_timeout: float = 30.0,
        client: Optional[ServeClient] = None,
        stop_event: Optional[threading.Event] = None,
    ) -> None:
        self.worker_id = worker_id or (
            f"w-{socket.gethostname()}-{os.getpid()}"
        )
        self.client = client or ServeClient(
            server_url,
            timeout=request_timeout,
            jitter_seed=self.worker_id,
        )
        self.entry = entry
        self.use_processes = use_processes
        self.poll_seconds = poll_seconds
        self.max_jobs = max_jobs
        self._stop = stop_event or threading.Event()
        self._rng = random.Random(f"fleet:{self.worker_id}")
        # Paced by the coordinator's answer at registration time.
        self.heartbeat_seconds = 2.0
        self.lease_seconds = 15.0
        # Counters (returned by run(), printed by the worker subcommand).
        self.jobs_leased = 0
        self.commits_accepted = 0
        self.commits_rejected = 0
        self.commits_redundant = 0
        self.commits_dropped = 0
        self.heartbeats_sent = 0
        self.heartbeats_dropped = 0
        self.heartbeat_errors = 0
        self.leases_revoked = 0
        self.transport_errors = 0

    def stop(self) -> None:
        """Ask the pull loop to exit after the current lease."""
        self._stop.set()

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, object]:
        """Run the pull loop until stopped (or ``max_jobs`` served)."""
        if not self._register():
            return self.stats_dict()
        try:
            while not self._stop.is_set():
                if self.max_jobs is not None and self.jobs_leased >= self.max_jobs:
                    break
                lease = self._acquire_lease()
                if lease is None:
                    self._stop.wait(self._poll_delay())
                    continue
                self.jobs_leased += 1
                self._run_lease(lease)
        finally:
            try:
                self.client.fleet_deregister(worker_id=self.worker_id)
            except ServeError:
                pass
        return self.stats_dict()

    def _register(self) -> bool:
        while not self._stop.is_set():
            try:
                resp = self.client.fleet_register(
                    worker_id=self.worker_id,
                    pid=os.getpid(),
                    host=socket.gethostname(),
                )
            except ServeError:
                # Server not up yet (or partitioned): wait and retry with
                # the same jittered pacing as an empty poll.
                self.transport_errors += 1
                self._stop.wait(self._poll_delay())
                continue
            self.heartbeat_seconds = float(
                resp.get("heartbeat_seconds", self.heartbeat_seconds)
            )
            self.lease_seconds = float(
                resp.get("lease_seconds", self.lease_seconds)
            )
            return True
        return False

    def _poll_delay(self) -> float:
        return self.poll_seconds * (0.5 + 0.5 * self._rng.random())

    def _acquire_lease(self) -> Optional[Dict[str, object]]:
        try:
            resp = self.client.fleet_lease(worker_id=self.worker_id)
        except ServeError:
            self.transport_errors += 1
            return None
        if resp.get("reregister"):
            self._register()
            return None
        lease = resp.get("lease")
        return lease if isinstance(lease, dict) else None

    # ------------------------------------------------------------------
    def _run_lease(self, lease: Dict[str, object]) -> None:
        job_id = str(lease["job_id"])
        lease_id = str(lease["lease_id"])
        fence = int(lease["fence"])
        spec_dict = dict(lease["spec"])
        deadline_seconds = lease.get("deadline_seconds")
        if deadline_seconds is not None:
            deadline_seconds = float(deadline_seconds)
        runner_cls = _ProcessRunner if self.use_processes else _ThreadRunner
        runner = runner_cls(self.entry, spec_dict, job_id, deadline_seconds)
        pending: List[Dict[str, object]] = []
        revoked = False
        while True:
            done = runner.wait(self.heartbeat_seconds)
            pending.extend(runner.drain_events())
            if done:
                break
            # Chaos-harness message site: a seeded drop silences this beat
            # (buffered events survive for the next one) -- enough dropped
            # beats and the coordinator declares us dead.
            fate = faults.message_fate("fleet.worker.heartbeat")
            if fate == "drop":
                self.heartbeats_dropped += 1
                continue
            body = {
                "worker_id": self.worker_id,
                "lease_id": lease_id,
                "job_id": job_id,
                "events": pending,
            }
            try:
                resp = self.client.fleet_heartbeat(body)
                self.heartbeats_sent += 1
                pending = []
                if fate == "duplicate":
                    self.client.fleet_heartbeat(
                        {**body, "events": []}
                    )
                if resp.get("lease") == "revoked":
                    revoked = True
                    self.leases_revoked += 1
                    break
            except ServeError:
                # Partitioned mid-solve: keep solving.  If the partition
                # outlives the lease the coordinator reassigns the job and
                # our eventual commit is fence-rejected -- correct either
                # way, so there is nothing to abort here.
                self.heartbeat_errors += 1
        if revoked:
            runner.kill()  # the lease is gone; stop burning CPU on it
            return
        outcome = runner.outcome()
        pending.extend(runner.drain_events())
        body = {
            "worker_id": self.worker_id,
            "lease_id": lease_id,
            "job_id": job_id,
            "fence": fence,
            "events": pending,
            **outcome,
        }
        # Chaos-harness commit site (one hit per commit: message_fate also
        # applies inline actions): a seeded ``delay`` here longer than the
        # lease turns this worker into the canonical zombie (solved,
        # paused, resumed after reassignment); ``kill`` dies with the
        # result computed but unsent; ``drop`` loses the commit outright
        # (lease expiry recovers); ``duplicate`` sends it twice (the
        # second must be rejected as duplicate_commit).
        fate = faults.message_fate("fleet.worker.commit")
        if fate == "drop":
            self.commits_dropped += 1
            return
        try:
            resp = self.client.fleet_complete(body)
            if fate == "duplicate":
                self.client.fleet_complete(body)
        except ServeError as exc:
            if exc.status is not None:
                raise
            self.transport_errors += 1
            return
        reason = str(resp.get("reason", ""))
        if resp.get("accepted"):
            self.commits_accepted += 1
        elif reason == "duplicate_commit":
            self.commits_redundant += 1
        else:
            self.commits_rejected += 1

    def stats_dict(self) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "jobs_leased": self.jobs_leased,
            "commits_accepted": self.commits_accepted,
            "commits_rejected": self.commits_rejected,
            "commits_redundant": self.commits_redundant,
            "commits_dropped": self.commits_dropped,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_dropped": self.heartbeats_dropped,
            "heartbeat_errors": self.heartbeat_errors,
            "leases_revoked": self.leases_revoked,
            "transport_errors": self.transport_errors,
        }


# ----------------------------------------------------------------------
class AdmissionController:
    """Per-client token-bucket fairness in front of ``POST /jobs``.

    Loop-confined like the queue (called only from server coroutines), so
    no locking.  Each client accrues ``rate`` tokens/second up to
    ``burst``; a submission spends one token, and an empty bucket answers
    with the seconds until the next token accrues -- the 429 response's
    ``Retry-After``.  The bucket table is LRU-bounded so an open endpoint
    cannot be memory-exhausted by client-id churn.
    """

    def __init__(
        self,
        *,
        rate: float = 20.0,
        burst: float = 40.0,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        #: client id -> [tokens, last refill instant]
        self._buckets: "OrderedDict[str, List[float]]" = OrderedDict()
        self.admitted = 0
        self.rejected = 0

    def admit(self, client_id: str) -> Optional[float]:
        """Spend one token; ``None`` admits, a float is the Retry-After."""
        now = self._clock()
        bucket = self._buckets.get(client_id)
        if bucket is None:
            while len(self._buckets) >= self.max_clients:
                self._buckets.popitem(last=False)
            bucket = [float(self.burst), now]
            self._buckets[client_id] = bucket
        else:
            tokens, last = bucket
            bucket[0] = min(self.burst, tokens + (now - last) * self.rate)
            bucket[1] = now
            self._buckets.move_to_end(client_id)
        if bucket[0] >= 1.0:
            bucket[0] -= 1.0
            self.admitted += 1
            return None
        self.rejected += 1
        return max((1.0 - bucket[0]) / self.rate, 0.001)

    def stats_dict(self) -> Dict[str, object]:
        return {
            "rate_per_second": self.rate,
            "burst": self.burst,
            "clients_tracked": len(self._buckets),
            "admitted": self.admitted,
            "rejected": self.rejected,
        }


# ----------------------------------------------------------------------
class CacheFollower:
    """Replicate a primary's append-only result-cache log to a local dir.

    The primary's log is append-only *in bytes* (even torn-tail healing
    only ever appends), so replication is a plain byte copy from a
    ``since`` offset -- no parsing on the wire.  The mirror is therefore
    byte-identical to the primary's log prefix; opening a
    :class:`ResultCache` over it replays with the normal torn-tail-
    tolerant path, and a standby server over the same directory serves
    warm hits after primary loss.
    """

    def __init__(
        self,
        server_url: str,
        directory: str,
        *,
        client: Optional[ServeClient] = None,
        chunk_bytes: int = 1 << 20,
    ) -> None:
        self.client = client or ServeClient(server_url)
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, _LOG_NAME)
        self.offset = (
            os.path.getsize(self.path) if os.path.exists(self.path) else 0
        )
        self.chunk_bytes = chunk_bytes
        self.syncs = 0
        self.bytes_copied = 0
        self.resets = 0

    def sync(self, *, max_rounds: int = 64) -> int:
        """Pull the primary's log tail; returns bytes copied this call."""
        copied = 0
        for _ in range(max_rounds):
            payload = self.client.cache_log(
                since=self.offset, max_bytes=self.chunk_bytes
            )
            start = int(payload.get("since", self.offset))
            if start < self.offset:
                # The primary's log is shorter than our mirror: a fresh
                # server took over the endpoint.  Restart the mirror
                # rather than splice two unrelated logs.
                self.resets += 1
                with open(self.path, "wb"):
                    pass
                self.offset = 0
                continue
            data = str(payload.get("data", "")).encode("latin-1")
            if not data:
                break
            with open(self.path, "ab") as stream:
                stream.write(data)
            self.offset += len(data)
            copied += len(data)
            if self.offset >= int(payload.get("size", 0)):
                break
        self.syncs += 1
        self.bytes_copied += copied
        return copied

    def open_cache(self, **kwargs) -> ResultCache:
        """Open the mirror as a normal result cache (replays the log)."""
        return ResultCache(self.directory, **kwargs)
