"""Stdlib-only asyncio HTTP front end over the job queue.

One :class:`QEDServer` binds a :class:`~repro.serve.queue.JobQueue` (and its
result cache) to a TCP port.  The protocol is deliberately small --
HTTP/1.1, one request per connection, JSON bodies -- so the whole server
fits in the standard library and survives hostile input: any parse error or
handler exception turns into a 4xx/5xx response (or a dropped connection)
on *that* connection only; the accept loop never dies.

Endpoints
=========

``POST /jobs``
    Submit a job.  Body: ``{"bug_id": ..., "config": <CampaignConfig json>,
    "priority": N}`` or ``{"spec": <JobSpec canonical dict>}``.  Responds
    ``202`` with the job view (``200`` when answered from cache).
``GET /jobs/<id>[?wait=SECS&since=VERSION]``
    Job view.  With ``wait``, long-polls until the job's version counter
    passes ``since`` (progress event, state change) or the timeout lapses
    -- repeated calls stream per-bound ``BoundStats`` as they arrive.
``DELETE /jobs/<id>``
    Cancel (queued jobs only; running solves finish and are cached).
``GET /results/<cache-key>``
    Raw cache entry for a content-addressed key, 404 when absent.
``GET /jobs/<id>/trace``
    The job's span tree (queue-side spans plus re-rooted worker batches)
    as JSON -- the :class:`repro.obs.trace.TraceStore` view rendered by
    ``scripts/trace_qed.py``.
``GET /stats``
    Queue + cache counters (input of
    :func:`repro.eval.report.serving_statistics`).
``GET /metrics``
    Prometheus text exposition: queue/cache/retry counters, solver work
    counters merged up from worker processes, stage-seconds histograms.
``GET /healthz``
    Liveness + readiness probe: ``200`` with queue depth, pool liveness
    and cache-log writability when the service can take work, ``503``
    (with the same payload) while the worker pool is being rebuilt after
    a crash, the cache log is unwritable, the queue is draining, or a
    fleet-only deployment (``workers=0``) has no live remote workers.
    With a fleet attached the payload also carries live/suspect/dead
    worker counts and outstanding leases.
``POST /fleet/register|lease|heartbeat|complete|deregister``
    The remote-worker protocol (:mod:`repro.serve.fleet`): pull jobs
    under time-bounded, fence-epoch leases, heartbeat to renew them and
    ship telemetry, commit with the fence token.  ``GET /fleet`` is the
    coordinator's worker/lease table.  404 when no coordinator is
    attached.
``GET /cache/log?since=N[&max=M]``
    Replication stream: a raw byte range of the append-only result-cache
    log (latin-1 in JSON), which :class:`repro.serve.fleet.CacheFollower`
    mirrors so a standby can replay and serve warm hits after primary
    loss.

Admission control (when configured) answers ``POST /jobs`` with **429 +
Retry-After** instead of queueing without bound: the queue's
``max_queue_depth`` caps backlog depth, and a per-client token bucket
(:class:`repro.serve.fleet.AdmissionController`, identity from the
``X-Client-Id`` header or the peer address) keeps one greedy client from
starving the farm.

:class:`LocalServer` runs the full stack (loop, queue, server) on a
background thread -- the in-process deployment used by tests, the CLI's
``campaign --via-server`` mode and the quickstart example.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import threading
import time
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.analysis.findings import DesignLintError
from repro.serve.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.serve.fleet import AdmissionController, FleetCoordinator
from repro.serve.keys import JobSpec
from repro.serve.queue import (
    JobQueue,
    QueueDraining,
    QueueFull,
    execute_job_spec,
)

__all__ = ["QEDServer", "LocalServer"]


def _lint_spec_design(spec: JobSpec) -> None:
    """Structural lint of the design version a job spec names.

    Runs in the executor (design building is CPU work).  Raises
    :class:`DesignLintError` on a malformed netlist and ``KeyError`` on an
    unknown version name; memoized per (version, arch) in the lint layer,
    so repeat submissions of a known-good version are free.  A spec that
    arrives already resolved is not re-linted: its fingerprint was computed
    by structurally hashing the elaborated design, which a malformed
    netlist cannot survive.
    """
    if spec.fingerprint:
        return
    from repro.analysis.netlist_lint import check_version_design
    from repro.uarch.versions import version_by_name

    version = version_by_name(spec.version)
    check_version_design(version, spec.campaign_config().arch)

#: Hard request limits -- a malformed or hostile client exhausts these and
#: gets a 4xx, not a wedged server.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 1024 * 1024
#: Long-poll ceiling; clients re-issue the request to keep streaming.
MAX_WAIT_SECONDS = 60.0

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    """Raised by parsing/handling; mapped to a 400 response."""


class QEDServer:
    """The asyncio HTTP server; owns nothing but the listening socket."""

    def __init__(
        self,
        queue: JobQueue,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self.queue = queue
        self.host = host
        self.port = port
        #: Per-client token buckets in front of POST /jobs; ``None``
        #: disables the fairness layer (depth bounding stays with the
        #: queue's own ``max_queue_depth``).
        self.admission = admission
        self._server: Optional[asyncio.base_events.Server] = None
        self.requests_served = 0
        self.requests_rejected = 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the queue (if idle) and begin accepting connections."""
        if self.queue._scheduler_task is None:
            await self.queue.start()
        if self.queue.fleet is not None:
            self.queue.fleet.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.queue.fleet is not None:
            await self.queue.fleet.stop()
        await self.queue.stop()

    async def drain(self, state_path: Optional[str] = None) -> dict:
        """Graceful shutdown: drain the queue and persist its state.

        In-flight long-polls keep streaming while running solves finish
        (the listener stays up so ``GET /jobs/<id>`` and ``/healthz``
        still answer; new ``POST /jobs`` get 503).  The queued-work
        snapshot is written atomically to *state_path* (when given) and
        returned; pass it to :meth:`JobQueue.restore_state` -- or start
        the server with the same path -- to resume after a restart.
        """
        state = await self.queue.drain()
        if state_path is not None:
            tmp_path = state_path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as stream:
                json.dump(state, stream, sort_keys=True, indent=2)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_path, state_path)
        return state

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, headers, body = await self._read_request(reader)
            except _BadRequest as exc:
                self.requests_rejected += 1
                await self._respond(writer, 400, {"error": str(exc)})
                return
            client_id = headers.get("x-client-id")
            if not client_id:
                peer = writer.get_extra_info("peername")
                client_id = peer[0] if isinstance(peer, tuple) else "unknown"
            extra_headers: Optional[Dict[str, str]] = None
            try:
                result = await self._route(method, path, body, client_id)
                if len(result) == 3:
                    status, payload, extra_headers = result
                else:
                    status, payload = result
            except _BadRequest as exc:
                self.requests_rejected += 1
                status, payload = 400, {"error": str(exc)}
            except KeyError as exc:
                status, payload = 404, {"error": f"not found: {exc}"}
            except Exception as exc:  # handler bug: report, keep serving
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            self.requests_served += 1
            await self._respond(writer, status, payload, extra_headers)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], Optional[dict]]:
        try:
            request_line = await reader.readuntil(b"\r\n")
        except asyncio.LimitOverrunError:
            raise _BadRequest("request line too long")
        except asyncio.IncompleteReadError:
            raise _BadRequest("truncated request line")
        if len(request_line) > MAX_REQUEST_LINE:
            raise _BadRequest("request line too long")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].upper().startswith("HTTP/"):
            raise _BadRequest("malformed request line")
        method, path = parts[0].upper(), parts[1]

        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await reader.readuntil(b"\r\n")
            except (asyncio.LimitOverrunError, asyncio.IncompleteReadError):
                raise _BadRequest("malformed headers")
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise _BadRequest("headers too large")
            if line in (b"\r\n", b"\n"):
                break
            text = line.decode("latin-1").strip()
            if ":" not in text:
                raise _BadRequest(f"malformed header line {text!r}")
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()

        body: Optional[dict] = None
        length_text = headers.get("content-length")
        if length_text is not None:
            try:
                length = int(length_text)
            except ValueError:
                raise _BadRequest("malformed Content-Length")
            if length < 0 or length > MAX_BODY_BYTES:
                raise _BadRequest("body too large")
            if length:
                try:
                    raw = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    raise _BadRequest("truncated body")
                try:
                    body = json.loads(raw)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    raise _BadRequest("body is not valid JSON")
                if not isinstance(body, dict):
                    raise _BadRequest("body must be a JSON object")
        return method, path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: object,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # A str payload is pre-rendered plain text (the Prometheus
        # exposition of GET /metrics); everything else is a JSON body.
        if isinstance(payload, str):
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload).encode()
            content_type = "application/json"
        extras = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"{extras}"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # ------------------------------------------------------------------
    async def _route(
        self, method: str, target: str, body: Optional[dict], client_id: str
    ) -> Tuple[int, object]:
        url = urlsplit(target)
        segments = [s for s in url.path.split("/") if s]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}

        if segments == ["healthz"] and method == "GET":
            return self._healthz()
        if segments == ["stats"] and method == "GET":
            return 200, self._stats()
        if segments == ["metrics"] and method == "GET":
            return 200, self.queue.render_metrics()
        if segments and segments[0] == "fleet":
            return await self._fleet(method, segments, body)
        if segments == ["cache", "log"] and method == "GET":
            return self._cache_log(query)
        if segments == ["jobs"]:
            if method == "GET":
                return 200, {"jobs": self.queue.jobs_summary()}
            if method != "POST":
                return 405, {"error": "POST /jobs or GET /jobs"}
            return await self._submit(body or {}, client_id)
        if (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "trace"
        ):
            if method != "GET":
                return 405, {"error": "GET /jobs/<id>/trace"}
            return self._get_trace(segments[1])
        if (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "telemetry"
        ):
            if method != "GET":
                return 405, {"error": "GET /jobs/<id>/telemetry"}
            return self._get_telemetry(segments[1], query)
        if len(segments) == 2 and segments[0] == "jobs":
            if method == "GET":
                return await self._get_job(segments[1], query)
            if method == "DELETE":
                return self._cancel_job(segments[1])
            return 405, {"error": "GET or DELETE /jobs/<id>"}
        if len(segments) == 2 and segments[0] == "results" and method == "GET":
            return self._get_result(segments[1])
        return 404, {"error": f"no route for {method} {url.path}"}

    async def _fleet(
        self, method: str, segments: list, body: Optional[dict]
    ) -> Tuple[int, dict]:
        """The remote-worker protocol: dispatch to the coordinator."""
        fleet = self.queue.fleet
        if fleet is None:
            return 404, {"error": "fleet mode is not enabled"}
        if segments == ["fleet"]:
            if method != "GET":
                return 405, {"error": "GET /fleet"}
            return 200, {"fleet": fleet.stats_dict()}
        handlers = {
            "register": fleet.register,
            "lease": fleet.lease,
            "heartbeat": fleet.heartbeat,
            "complete": fleet.complete,
            "deregister": fleet.deregister,
        }
        if len(segments) != 2 or segments[1] not in handlers:
            return 404, {"error": f"no fleet route {'/'.join(segments)!r}"}
        if method != "POST":
            return 405, {"error": f"POST /fleet/{segments[1]}"}
        try:
            return 200, handlers[segments[1]](body or {})
        except ValueError as exc:
            raise _BadRequest(str(exc))

    def _cache_log(self, query: Dict[str, str]) -> Tuple[int, dict]:
        """``GET /cache/log?since=N``: replication byte-stream chunk."""
        cache = self.queue.cache
        if cache is None or cache.directory is None:
            return 404, {"error": "no persistent cache log to replicate"}
        try:
            since = int(query.get("since", 0))
            max_bytes = min(int(query.get("max", 1 << 20)), 4 << 20)
            chunk, size = cache.read_log(since=since, max_bytes=max_bytes)
        except ValueError as exc:
            raise _BadRequest(str(exc))
        start = min(since, size)
        return 200, {
            "since": start,
            "end": start + len(chunk),
            "size": size,
            "data": chunk.decode("latin-1"),
        }

    async def _submit(self, body: dict, client_id: str) -> Tuple[int, object]:
        if self.admission is not None:
            retry_after = self.admission.admit(client_id)
            if retry_after is not None:
                self.requests_rejected += 1
                self.queue.metrics.inc(
                    "qed_admission_rejections_total", reason="client_rate"
                )
                return (
                    429,
                    {
                        "error": "client rate limit exceeded",
                        "retry_after": retry_after,
                    },
                    {"Retry-After": str(max(1, math.ceil(retry_after)))},
                )
        try:
            if "spec" in body:
                if not isinstance(body["spec"], dict):
                    raise _BadRequest("'spec' must be a JSON object")
                spec = JobSpec.from_dict(body["spec"])
            elif "bug_id" in body:
                from repro.eval.campaign import CampaignConfig

                config = (
                    CampaignConfig.from_json_dict(body["config"])
                    if body.get("config")
                    else None
                )
                spec = JobSpec.from_campaign(
                    str(body["bug_id"]), config, resolve_fingerprint=False
                )
            else:
                raise _BadRequest("body needs 'spec' or 'bug_id'")
            priority = int(body.get("priority", 0))
            force = bool(body.get("force", False))
            deadline_seconds = body.get("deadline_seconds")
            if deadline_seconds is not None:
                deadline_seconds = float(deadline_seconds)
                if deadline_seconds <= 0:
                    raise _BadRequest("deadline_seconds must be positive")
        except _BadRequest:
            raise
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            raise _BadRequest(f"invalid job spec: {exc}")
        # Structural lint BEFORE fingerprint resolution: resolving hashes
        # the elaborated netlist, and a malformed design (e.g. a forged
        # combinational cycle) would hang that walk.  A lint failure is a
        # client error -- return the structured report, not a solve.
        # Fingerprint resolution may elaborate a netlist (~100 ms on a
        # cold memo); both run off-loop so long-polls keep streaming.
        loop = asyncio.get_running_loop()
        lint_start = time.monotonic()
        try:
            await loop.run_in_executor(None, _lint_spec_design, spec)
        except DesignLintError as exc:
            self.requests_rejected += 1
            return 400, {"error": str(exc), "lint": exc.report.to_json_dict()}
        except (KeyError, ValueError) as exc:
            raise _BadRequest(f"invalid job spec: {exc}")
        lint_end = time.monotonic()
        try:
            spec = await loop.run_in_executor(None, spec.resolved)
        except (KeyError, ValueError) as exc:
            raise _BadRequest(f"invalid job spec: {exc}")
        resolve_end = time.monotonic()
        try:
            job = self.queue.submit(
                spec,
                priority=priority,
                force=force,
                deadline_seconds=deadline_seconds,
            )
        except QueueDraining as exc:
            self.requests_rejected += 1
            return 503, {"error": str(exc), "draining": True}
        except QueueFull as exc:
            self.requests_rejected += 1
            return (
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                {"Retry-After": str(max(1, math.ceil(exc.retry_after)))},
            )
        # The lint/resolve spans happen before the job exists, so they are
        # captured here and recorded once its trace entry is open.
        self.queue.traces.add_span(job.job_id, "serve.lint", lint_start, lint_end)
        self.queue.traces.add_span(
            job.job_id, "serve.resolve", lint_end, resolve_end
        )
        return (200 if job.cache_hit else 202), {"job": job.to_json_dict()}

    async def _get_job(self, job_id: str, query: Dict[str, str]) -> Tuple[int, dict]:
        job = self.queue.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if "wait" in query:
            try:
                timeout = min(float(query["wait"]), MAX_WAIT_SECONDS)
                since = int(query.get("since", job.version))
            except ValueError:
                raise _BadRequest("wait/since must be numeric")
            await self.queue.wait(job, since=since, timeout=timeout)
        try:
            progress_since = int(query.get("progress_since", 0))
        except ValueError:
            raise _BadRequest("progress_since must be an integer")
        return 200, {"job": job.to_json_dict(since=progress_since)}

    def _get_trace(self, job_id: str) -> Tuple[int, dict]:
        """``GET /jobs/<id>/trace``: the job's aggregated span tree."""
        job = self.queue.jobs.get(job_id)
        trace = self.queue.traces.to_json_dict(job_id)
        if trace is None:
            if job is None:
                return 404, {"error": f"unknown job {job_id!r}"}
            return 404, {
                "error": f"no trace recorded for {job_id!r} (tracing off?)"
            }
        if job is not None:
            trace["state"] = job.state.value
            trace["attempts"] = job.attempts
        return 200, {"trace": trace}

    def _get_telemetry(
        self, job_id: str, query: Dict[str, str]
    ) -> Tuple[int, dict]:
        """``GET /jobs/<id>/telemetry[?since=N]``: live solver heartbeats.

        Heartbeats stream up from the solver's cold branches while the
        job runs; a poller passes the ``total`` it already holds as
        ``since`` and receives only newer entries from the bounded ring.
        """
        try:
            since = int(query.get("since", 0))
        except ValueError:
            raise _BadRequest("since must be an integer")
        telemetry = self.queue.telemetry_dict(job_id, since=since)
        if telemetry is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, {"telemetry": telemetry}

    def _cancel_job(self, job_id: str) -> Tuple[int, dict]:
        try:
            cancelled = self.queue.cancel(job_id)
        except KeyError:
            return 404, {"error": f"unknown job {job_id!r}"}
        job = self.queue.jobs[job_id]
        return 200, {"cancelled": cancelled, "job": job.to_json_dict()}

    def _healthz(self) -> Tuple[int, dict]:
        """Readiness probe: 200 when the service can take work, else 503.

        Not-ready causes: the worker pool died and has not been rebuilt
        yet, the result-cache log lost writability (full disk, detached
        volume), or the queue is draining for shutdown.  The payload
        carries the individual signals either way, so an operator sees
        *why* from the probe itself.
        """
        stats = self.queue.stats_dict()
        cache_writable = self.queue.cache is None or self.queue.cache.writable()
        fleet = self.queue.fleet
        # Fleet-only deployments (workers=0) have no local executors; the
        # probe stays 503 until at least one remote worker is live.
        no_executors = self.queue.workers == 0 and (
            fleet is None or fleet.live_workers() == 0
        )
        ready = (
            not stats["pool_broken"]
            and not stats["draining"]
            and cache_writable
            and not no_executors
        )
        payload = {
            "ok": ready,
            "queued": stats["queued"],
            "running": stats["running"],
            "pool_broken": stats["pool_broken"],
            "draining": stats["draining"],
            "cache_writable": cache_writable,
            "no_executors": no_executors,
        }
        if fleet is not None:
            counts = fleet.worker_counts()
            payload["fleet"] = {
                "live": counts["live"],
                "suspect": counts["suspect"],
                "dead": counts["dead"],
                "leases_outstanding": len(fleet._leases),
            }
        return (200 if ready else 503), payload

    def _get_result(self, key: str) -> Tuple[int, dict]:
        cache = self.queue.cache
        entry = cache.get(key) if cache is not None else None
        if entry is None:
            return 404, {"error": f"no cached result for {key!r}"}
        return 200, {"result": entry.to_json_dict(), "hits": entry.hits}

    def _stats(self) -> dict:
        return {
            "queue": self.queue.stats_dict(),
            "cache": (
                self.queue.cache.stats_dict()
                if self.queue.cache is not None
                else None
            ),
            "http": {
                "requests_served": self.requests_served,
                "requests_rejected": self.requests_rejected,
                "admission": (
                    self.admission.stats_dict()
                    if self.admission is not None
                    else None
                ),
            },
        }


# ----------------------------------------------------------------------
class LocalServer:
    """Run the whole serving stack on a background thread.

    ``with LocalServer(...) as url:`` yields a ready ``http://host:port``
    and tears everything down (server, queue, executor) on exit.  This is
    the in-process deployment: tests, the CLI's spawn-a-server modes and
    the quickstart example all use it.
    """

    def __init__(
        self,
        *,
        cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        entry=execute_job_spec,
        use_processes: bool = True,
        host: str = "127.0.0.1",
        port: int = 0,
        state_path: Optional[str] = None,
        fleet: bool = False,
        fleet_kwargs: Optional[dict] = None,
        admission: Optional[dict] = None,
        **queue_kwargs,
    ) -> None:
        self.cache = cache if cache is not None else (
            ResultCache(cache_dir) if cache_dir is not None else None
        )
        self._queue_args = dict(
            cache=self.cache,
            workers=workers,
            entry=entry,
            use_processes=use_processes,
            **queue_kwargs,
        )
        self._host = host
        self._port = port
        #: ``fleet=True`` attaches a :class:`FleetCoordinator` so remote
        #: workers (``serve_qed.py worker``) can pull jobs; ``admission``
        #: is the kwargs dict for an :class:`AdmissionController`.
        self._fleet = fleet
        self._fleet_kwargs = dict(fleet_kwargs or {})
        self._admission_kwargs = admission
        #: Where :meth:`drain` persists queued work, and where start-up
        #: looks for a previous drain's snapshot to resume (the file is
        #: consumed -- deleted once its jobs are resubmitted).
        self.state_path = state_path
        self.server: Optional[QEDServer] = None
        self.queue: Optional[JobQueue] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def start(self) -> str:
        """Start the stack; returns the base URL once the port is bound."""
        if self._thread is not None:
            raise RuntimeError("LocalServer already started")
        self._thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self.base_url

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.queue = JobQueue(**self._queue_args)
        if self._fleet:
            FleetCoordinator(self.queue, **self._fleet_kwargs)
        admission = (
            AdmissionController(**self._admission_kwargs)
            if self._admission_kwargs is not None
            else None
        )
        self.server = QEDServer(
            self.queue, host=self._host, port=self._port, admission=admission
        )
        try:
            loop.run_until_complete(self.server.start())
            self._restore_persisted_state()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def _restore_persisted_state(self) -> None:
        """Resubmit work a previous drain persisted (runs on the loop)."""
        path = self.state_path
        if path is None or not os.path.exists(path):
            return
        assert self.queue is not None
        try:
            with open(path, "r", encoding="utf-8") as stream:
                state = json.load(stream)
            self.queue.restore_state(state)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return  # corrupt snapshot: leave it on disk for inspection
        os.remove(path)

    def drain(self, state_path: Optional[str] = None, *, timeout: float = 60.0) -> dict:
        """Drain the queue from any thread; returns the persisted state.

        Running solves finish, queued work is snapshotted to
        ``state_path`` (default: the server's configured ``state_path``)
        and new submissions get 503 until the process restarts.
        """
        loop = self._loop
        assert loop is not None and self.server is not None
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(state_path or self.state_path), loop
        )
        return future.result(timeout=timeout)

    def stop(self) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    @property
    def base_url(self) -> str:
        assert self.server is not None
        return self.server.base_url

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
