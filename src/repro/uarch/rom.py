"""Instruction-ROM wrappers for simulation.

During directed and constrained-random simulation the core fetches from a
program ROM; during BMC the ROM is detached and the QED module drives the
instruction port instead (exactly the paper's setup, where the QED module is
inserted at the fetch unit only inside the BMC tool).

Design A uses a dual-ROM interface: even addresses are served by bank 0 and
odd addresses by bank 1.  Designs B and C use a single ROM.  The two wrappers
produce identical instruction streams; the structural difference is what made
adapting the Symbolic QED setup from Design A to B/C a one-person-day task in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.isa.arch import ArchParams
from repro.isa.assembler import Program
from repro.isa.encoding import nop_word


@dataclass
class RomProgram:
    """A program image placed in the instruction ROM."""

    arch: ArchParams
    words: List[int]

    @classmethod
    def from_program(cls, program: Program) -> "RomProgram":
        """Build a ROM image from an assembled :class:`Program`."""
        return cls(arch=program.arch, words=list(program.words))

    @classmethod
    def from_words(cls, arch: ArchParams, words: List[int]) -> "RomProgram":
        """Build a ROM image from raw instruction words."""
        return cls(arch=arch, words=list(words))

    def fetch(self, address: int) -> int:
        """Return the instruction at *address* (NOP beyond the image)."""
        if 0 <= address < len(self.words):
            return self.words[address]
        return nop_word(self.arch)

    def fetch_dual(self, address: int) -> Dict[str, int]:
        """Model the dual-ROM interface: both banks respond, one is selected.

        Returns the words presented by the even and odd banks for *address*;
        the bank select is the address LSB.
        """
        even_address = address & ~1
        odd_address = address | 1
        return {
            "bank0": self.fetch(even_address),
            "bank1": self.fetch(odd_address),
            "selected": self.fetch(address),
        }


class attach_rom:
    """Drive a core simulation from a ROM image.

    This is a lightweight testbench helper rather than an RTL block: it reads
    the simulator's PC each cycle, looks up the instruction in the ROM image
    (honouring the dual- or single-ROM interface of the design family) and
    produces the input map for :meth:`repro.rtl.simulator.Simulator.step`.
    """

    def __init__(
        self,
        rom: RomProgram,
        *,
        interface: str = "single",
        extra_inputs: Mapping[str, int] | None = None,
    ) -> None:
        if interface not in ("single", "dual"):
            raise ValueError("interface must be 'single' or 'dual'")
        self.rom = rom
        self.interface = interface
        self.extra_inputs = dict(extra_inputs or {})
        self.fetch_log: List[int] = []

    def inputs_for(self, pc: int) -> Dict[str, int]:
        """Input map for one cycle given the current fetch PC."""
        if self.interface == "dual":
            word = self.rom.fetch_dual(pc)["selected"]
        else:
            word = self.rom.fetch(pc)
        self.fetch_log.append(pc)
        inputs = {"instr_in": word, "instr_valid": 1}
        inputs.update(self.extra_inputs)
        return inputs
