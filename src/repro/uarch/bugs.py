"""The seeded bug library.

Fourteen bugs are seeded across the sixteen design versions, chosen so that
the measured detection breakdown reproduces Fig. 10 of the paper:

* five microarchitectural interaction bugs detectable by baseline Symbolic
  QED (EDDI-V with the interleaving QED module) -- 5/14 = 35.7%,
* four control-flow bugs (wrong branch direction or wrong jump target) that
  require the QED-CF enhancement -- 4/14 = 28.6%,
* one bug on an instruction with a fixed destination register that requires
  the duplication-using-memory enhancement -- 1/14 = 7.1%,
* four single-instruction behaviour/specification bugs caught by Single-I
  properties -- 4/14 = 28.6%.

One of the Single-I bugs (``cmpi_carry_spec``) is a *specification* bug: the
RTL and the specification (golden model) agree with each other, so the
constrained-random flow cannot see it -- it is the "+7%" of Fig. 8 that only
Symbolic QED reports, present in Design A's final version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple


#: Symbolic QED feature names used for attribution (Fig. 10).
FEATURE_EDDIV = "eddiv"
FEATURE_QED_CF = "qed_cf"
FEATURE_QED_MEM = "qed_mem"
FEATURE_SINGLE_I = "single_i"

FEATURES: Tuple[str, ...] = (
    FEATURE_EDDIV,
    FEATURE_QED_CF,
    FEATURE_QED_MEM,
    FEATURE_SINGLE_I,
)


@dataclass(frozen=True)
class Bug:
    """One seeded logic or specification bug."""

    bug_id: str
    title: str
    description: str
    kind: str  # "rtl" or "spec"
    primary_feature: str
    detected_by_crs: bool
    trigger: str
    #: fnmatch patterns of the netlist signals this bug's injection may
    #: touch.  The bug-library sanity check
    #: (:func:`repro.analysis.netlist_lint.lint_bug_library`) diffs each
    #: buggy version against its clean base and fails when the diff strays
    #: outside these patterns -- a bug that silently rewires unrelated
    #: logic would corrupt the detection study it exists to calibrate.
    signals: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("rtl", "spec"):
            raise ValueError("bug kind must be 'rtl' or 'spec'")
        if self.primary_feature not in FEATURES:
            raise ValueError(f"unknown feature {self.primary_feature!r}")


BUGS: List[Bug] = [
    # ----------------------------------------------------------------- EDDI-V
    Bug(
        bug_id="wrport_collision",
        title="Register-file write port drops back-to-back writes",
        description=(
            "When two consecutive committed instructions write the same "
            "destination register, the second write is silently dropped."
        ),
        kind="rtl",
        primary_feature=FEATURE_EDDIV,
        detected_by_crs=True,
        signals=('wb_enable', 'hist_wb_valid', 'regs*', 'safety_parity_reg'),
        trigger="two consecutive writes to the same register",
    ),
    Bug(
        bug_id="alu_after_load",
        title="ALU operand corrupted after a load",
        description=(
            "The second ALU operand has its least-significant bit forced high "
            "when the previous committed instruction was a load."
        ),
        kind="rtl",
        primary_feature=FEATURE_EDDIV,
        detected_by_crs=True,
        signals=('wb_value', 'flag_*', 'next_flag_*', 'regs*', 'safety_parity_reg'),
        trigger="register-register ALU instruction immediately after a load",
    ),
    Bug(
        bug_id="consecutive_sub",
        title="Back-to-back SUB off by one",
        description=(
            "The second of two consecutive SUB instructions produces a result "
            "that is one too large."
        ),
        kind="rtl",
        primary_feature=FEATURE_EDDIV,
        detected_by_crs=True,
        signals=('wb_value', 'flag_n', 'flag_z', 'next_flag_n', 'next_flag_z', 'regs*', 'safety_parity_reg'),
        trigger="two consecutive SUB instructions",
    ),
    Bug(
        bug_id="st_ld_stale",
        title="Load after store to the same address returns corrupted data",
        description=(
            "A load issued in the cycle immediately after a store to the same "
            "data-memory address takes the write-data forwarding path, which "
            "flips the least-significant bit of the returned value."
        ),
        kind="rtl",
        primary_feature=FEATURE_EDDIV,
        detected_by_crs=True,
        signals=('mem_rdata', 'wb_value', 'flag_n', 'flag_z', 'next_flag_n', 'next_flag_z', 'regs*', 'safety_parity_reg'),
        trigger="load immediately following a store to the same address",
    ),
    Bug(
        bug_id="inplace_after_store",
        title="In-place update dropped after a store",
        description=(
            "An instruction whose destination equals its first source (an "
            "in-place update) loses its write-back when the previous committed "
            "instruction was a store."
        ),
        kind="rtl",
        primary_feature=FEATURE_EDDIV,
        detected_by_crs=True,
        signals=('wb_enable', 'hist_wb_valid', 'regs*', 'safety_parity_reg'),
        trigger="rd == rs1 instruction immediately after a store",
    ),
    # ----------------------------------------------------------------- QED-CF
    Bug(
        bug_id="bz_flag_misread",
        title="BZ samples the wrong flag",
        description=(
            "BZ evaluates the N flag instead of Z when the previous write-back "
            "targeted an upper-half register, taking the branch in the wrong "
            "direction."
        ),
        kind="rtl",
        primary_feature=FEATURE_QED_CF,
        detected_by_crs=True,
        signals=('pc', 'ex_valid', 'cf_taken'),
        trigger="BZ after a flag-setting write to an upper-half register",
    ),
    Bug(
        bug_id="bnz_carry_confusion",
        title="BNZ suppressed by carry",
        description=(
            "BNZ is not taken when the carry flag is set and the previous "
            "write-back targeted an upper-half register."
        ),
        kind="rtl",
        primary_feature=FEATURE_QED_CF,
        detected_by_crs=True,
        signals=('pc', 'ex_valid', 'cf_taken'),
        trigger="BNZ with C=1 after a write to an upper-half register",
    ),
    Bug(
        bug_id="jr_target_offby1",
        title="JR target off by one for upper-half registers",
        description=(
            "JR through an upper-half register jumps one instruction past the "
            "intended target address."
        ),
        kind="rtl",
        primary_feature=FEATURE_QED_CF,
        detected_by_crs=True,
        signals=('pc', 'cf_target'),
        trigger="JR with rs1 in the upper half of the register file",
    ),
    Bug(
        bug_id="beq_high_inverted",
        title="BEQ comparison inverted for upper-half registers",
        description=(
            "BEQ branches on inequality instead of equality when both source "
            "registers lie in the upper half of the register file."
        ),
        kind="rtl",
        primary_feature=FEATURE_QED_CF,
        detected_by_crs=True,
        signals=('pc', 'ex_valid', 'cf_taken'),
        trigger="BEQ with both sources in the upper half",
    ),
    # ------------------------------------------------------------ QED memory
    Bug(
        bug_id="ldil_after_load",
        title="LDIL corrupted after a load",
        description=(
            "LDIL (load-immediate with fixed destination R0) corrupts bit 0 of "
            "the immediate when the previous committed instruction was a load."
        ),
        kind="rtl",
        primary_feature=FEATURE_QED_MEM,
        detected_by_crs=True,
        signals=('wb_value', 'flag_n', 'flag_z', 'next_flag_n', 'next_flag_z', 'regs*', 'safety_parity_reg'),
        trigger="LDIL immediately after a load",
    ),
    # -------------------------------------------------------------- Single-I
    Bug(
        bug_id="sra_zero_fill",
        title="SRA shifts in zeros",
        description=(
            "The register-register arithmetic shift right fills with zeros "
            "instead of the sign bit (it behaves like SRL)."
        ),
        kind="rtl",
        primary_feature=FEATURE_SINGLE_I,
        detected_by_crs=True,
        signals=('wb_value', 'flag_n', 'flag_z', 'next_flag_n', 'next_flag_z', 'regs*', 'safety_parity_reg'),
        trigger="SRA of a negative value",
    ),
    Bug(
        bug_id="cmpi_carry_spec",
        title="CMPI stops updating the carry flag (specification bug)",
        description=(
            "CMPI no longer updates the carry flag.  The design specification "
            "was amended to match the RTL, so simulation against the "
            "specification model cannot expose the deviation from the original "
            "architectural intent."
        ),
        kind="spec",
        primary_feature=FEATURE_SINGLE_I,
        detected_by_crs=False,
        signals=('flag_c', 'next_flag_c'),
        trigger="CMPI followed by a carry-dependent decision",
    ),
    Bug(
        bug_id="ror_direction",
        title="ROR rotates the wrong way",
        description="ROR performs a rotate-left instead of a rotate-right.",
        kind="rtl",
        primary_feature=FEATURE_SINGLE_I,
        detected_by_crs=True,
        signals=('wb_value', 'flag_n', 'flag_z', 'next_flag_n', 'next_flag_z', 'regs*', 'safety_parity_reg'),
        trigger="ROR of an asymmetric bit pattern",
    ),
    Bug(
        bug_id="satadd_clamp",
        title="SATADD saturates one short of the maximum",
        description=(
            "The saturating add clamps to MAX-1 instead of MAX on overflow "
            "(extension instruction, Designs B and C only)."
        ),
        kind="rtl",
        primary_feature=FEATURE_SINGLE_I,
        detected_by_crs=True,
        signals=('wb_value', 'flag_n', 'flag_z', 'next_flag_n', 'next_flag_z', 'regs*', 'safety_parity_reg'),
        trigger="SATADD overflow",
    ),
]

_BY_ID: Dict[str, Bug] = {bug.bug_id: bug for bug in BUGS}


def bug_by_id(bug_id: str) -> Bug:
    """Look up a bug by identifier."""
    try:
        return _BY_ID[bug_id]
    except KeyError:
        raise KeyError(f"unknown bug id {bug_id!r}") from None


def bugs_by_feature(feature: str) -> List[Bug]:
    """All bugs whose primary detecting feature is *feature*."""
    return [bug for bug in BUGS if bug.primary_feature == feature]


def all_bug_ids() -> FrozenSet[str]:
    """The identifiers of every bug in the library."""
    return frozenset(bug.bug_id for bug in BUGS)
