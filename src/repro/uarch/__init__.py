"""Microcontroller core designs (the devices under verification).

The package builds a family of 2-stage in-order pipelined microcontroller
cores equivalent (at reduced scale) to the industrial Designs A, B and C of
the paper:

* Design A -- base feature set, dual-ROM instruction interface.
* Design B -- single-ROM interface, one additional instruction (``SATADD``).
* Design C -- single-ROM interface, ``SATADD``, extended monitoring.

Sixteen RTL versions are provided (A.v3-A.v8, B.v2-B.v6, C.v2-C.v6), each
carrying the seeded logic/specification bugs documented in
:mod:`repro.uarch.bugs`.  The final version of each design family is bug-free
except for the Design-A specification issue that the paper reports as the
"+7%" uniquely detected by Symbolic QED.
"""

from repro.uarch.config import CoreConfig
from repro.uarch.core import CORE_OUTPUTS, build_core, build_core_circuit
from repro.uarch.bugs import Bug, BUGS, bug_by_id, bugs_by_feature
from repro.uarch.versions import (
    DesignVersion,
    ALL_VERSIONS,
    final_version,
    version_by_name,
    versions_of_design,
)
from repro.uarch.designs import build_design, build_design_with_rom
from repro.uarch.rom import RomProgram, attach_rom

__all__ = [
    "CoreConfig",
    "CORE_OUTPUTS",
    "build_core",
    "build_core_circuit",
    "Bug",
    "BUGS",
    "bug_by_id",
    "bugs_by_feature",
    "DesignVersion",
    "ALL_VERSIONS",
    "final_version",
    "version_by_name",
    "versions_of_design",
    "build_design",
    "build_design_with_rom",
    "RomProgram",
    "attach_rom",
]
