"""The 2-stage in-order pipelined microcontroller core.

The pipeline has two stages, matching the cores of the industrial case study:

* **IF** -- the instruction word presented on ``instr_in`` (by a ROM wrapper
  during simulation, or by the QED module during BMC) is captured into the
  ``ex_instr`` register together with a valid bit and the fetch PC.
* **EX** -- the captured instruction is decoded, operands are read from the
  register file, the ALU / memory / branch unit executes, results are written
  back and the flags register is updated, all in one cycle.  Taken branches
  flush the instruction currently being fetched (one-cycle flush, exactly the
  situation the paper's QED-CF conditions are designed for).

The core carries a small monitoring block (write-back history, a parity
monitor and a watchdog counter) standing in for the ASIL safety mechanisms of
the industrial designs; the seeded bugs use the history registers as their
trigger context.

Bug injection: :func:`build_core_circuit` accepts the set of bug identifiers
to inject (see :mod:`repro.uarch.bugs`).  A bug is a small, localised change
to the datapath expressions -- the same way the real RTL versions differed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.expr.bitvec import (
    BV,
    BVConst,
    BVVar,
    concat,
    mux,
    reduce_or,
    zero_extend,
)
from repro.isa.arch import ArchParams
from repro.isa.encoding import field_layout
from repro.isa.instructions import (
    FlagsUpdate,
    Instruction,
    InstructionClass,
    instructions_for_design,
    instruction_by_name,
)
from repro.rtl.circuit import Circuit
from repro.rtl.design import Design, elaborate
from repro.uarch.config import CoreConfig

#: Names of the combinational outputs every core exposes (used by the QED
#: harness, the Single-I / OCS-FV property generators and the testbenches).
CORE_OUTPUTS: Tuple[str, ...] = (
    "pc_out",
    "ex_pc_out",
    "commit",
    "ex_valid_out",
    "ex_opcode",
    "ex_rd",
    "ex_rs1",
    "ex_rs2",
    "ex_imm",
    "ex_rs1_val",
    "ex_rs2_val",
    "wb_enable",
    "wb_addr",
    "wb_value",
    "mem_we",
    "mem_addr",
    "mem_wdata",
    "mem_rdata",
    "cf_valid",
    "cf_taken",
    "cf_target",
    "next_flag_z",
    "next_flag_c",
    "next_flag_n",
    "halt_now",
    "safety_parity",
    "watchdog",
)


def _resize(expr: BV, width: int) -> BV:
    """Zero-extend or truncate *expr* to *width* bits."""
    if expr.width == width:
        return expr
    if expr.width < width:
        return zero_extend(expr, width)
    return expr[0:width]


def _bit(value: int) -> BV:
    return BVConst(1, value)


def build_core_circuit(config: CoreConfig, circuit: Circuit | None = None) -> Circuit:
    """Construct (but do not elaborate) the core circuit for *config*.

    When *circuit* is given, the core is built into that existing circuit;
    this is how the Symbolic QED harness places the QED module and the core
    side by side in one model for BMC.
    """
    arch = config.arch
    bugs = config.bugs
    xlen = arch.xlen
    mask = arch.xlen_mask
    if circuit is None:
        circuit = Circuit(config.name)

    # ------------------------------------------------------------------
    # Ports and state
    # ------------------------------------------------------------------
    instr_in = circuit.input("instr_in", arch.instr_width)
    instr_valid = circuit.input("instr_valid", 1)

    pc = circuit.register("pc", arch.pc_width, reset=0)
    ex_instr = circuit.register("ex_instr", arch.instr_width, reset=0)
    ex_valid = circuit.register("ex_valid", 1, reset=0)
    ex_pc = circuit.register("ex_pc", arch.pc_width, reset=0)
    halted = circuit.register("halted", 1, reset=0)
    flag_z = circuit.register("flag_z", 1, reset=0)
    flag_c = circuit.register("flag_c", 1, reset=0)
    flag_n = circuit.register("flag_n", 1, reset=0)

    regs = circuit.memory("regs", arch.num_regs, xlen)
    dmem = circuit.memory("dmem", arch.dmem_words, xlen)

    # Monitoring / history block (stands in for the ASIL monitoring logic and
    # provides the microarchitectural context the seeded bugs key on).
    hist_wb_valid = circuit.register("hist_wb_valid", 1, reset=0)
    hist_wb_addr = circuit.register("hist_wb_addr", arch.reg_index_width, reset=0)
    hist_was_load = circuit.register("hist_was_load", 1, reset=0)
    hist_was_store = circuit.register("hist_was_store", 1, reset=0)
    hist_store_addr = circuit.register(
        "hist_store_addr", arch.dmem_addr_width, reset=0
    )
    hist_opcode = circuit.register("hist_opcode", 6, reset=0)
    parity_reg = circuit.register("safety_parity_reg", 1, reset=0)
    watchdog = circuit.register("watchdog_counter", 3, reset=0)

    # ------------------------------------------------------------------
    # Decode (EX stage works on the captured instruction word)
    # ------------------------------------------------------------------
    layout = field_layout(arch)

    def fetch_field(name: str) -> BV:
        low, width = layout[name]
        return ex_instr.q[low : low + width]

    opcode = fetch_field("opcode")
    rd_field = fetch_field("rd")
    rs1_field = fetch_field("rs1")
    rs2_field = fetch_field("rs2")
    imm_field = fetch_field("imm")

    isa = instructions_for_design(with_extension=config.with_extension)
    is_op: Dict[str, BV] = {
        instr.name: opcode.eq(BVConst(6, instr.opcode)) for instr in isa
    }
    if "SATADD" not in is_op:
        is_op["SATADD"] = _bit(0)

    def any_op(names: List[str]) -> BV:
        result: BV = _bit(0)
        for name in names:
            result = result | is_op[name]
        return result

    by_class: Dict[InstructionClass, List[Instruction]] = {}
    for instr in isa:
        by_class.setdefault(instr.iclass, []).append(instr)

    def class_pred(iclass: InstructionClass) -> BV:
        return any_op([i.name for i in by_class.get(iclass, [])])

    is_alu_rr = class_pred(InstructionClass.ALU_RR) | is_op["SATADD"]
    is_alu_ri = class_pred(InstructionClass.ALU_RI)
    is_unary = class_pred(InstructionClass.UNARY)
    is_imm_load = class_pred(InstructionClass.IMM_LOAD)
    is_compare = class_pred(InstructionClass.COMPARE)
    is_branch_flag = class_pred(InstructionClass.BRANCH_FLAG)
    is_branch_reg = class_pred(InstructionClass.BRANCH_REG)
    is_jump = class_pred(InstructionClass.JUMP)
    is_load_op = any_op([i.name for i in isa if i.is_load])
    is_store_op = any_op([i.name for i in isa if i.is_store])
    is_cf_op = any_op([i.name for i in isa if i.is_control_flow])
    writes_rd_op = any_op([i.name for i in isa if i.writes_rd])
    sets_flags_op = any_op([i.name for i in isa if i.sets_flags])
    arith_add_op = any_op(
        [i.name for i in isa if i.flags is FlagsUpdate.ARITH_ADD]
    )
    arith_sub_op = any_op(
        [i.name for i in isa if i.flags is FlagsUpdate.ARITH_SUB]
    )

    ex_commit = ex_valid.q & ~halted.q

    # ------------------------------------------------------------------
    # Register file read
    # ------------------------------------------------------------------
    rd_idx = _resize(rd_field, arch.reg_index_width)
    rs1_idx = _resize(rs1_field, arch.reg_index_width)
    rs2_idx = _resize(rs2_field, arch.reg_index_width)
    rs1_val = regs.read(rs1_idx)
    rs2_val = regs.read(rs2_idx)

    half = arch.half_regs
    rs1_high = rs1_idx.uge(BVConst(arch.reg_index_width, half))
    rs2_high = rs2_idx.uge(BVConst(arch.reg_index_width, half))
    hist_wb_high = hist_wb_addr.q.uge(BVConst(arch.reg_index_width, half))

    # Immediate as data (truncated / extended to the data-path width).
    imm_data = _resize(imm_field, xlen)

    # ------------------------------------------------------------------
    # ALU
    # ------------------------------------------------------------------
    alu_b_raw = mux(is_alu_ri | is_op["CMPI"], imm_data, rs2_val)
    if "alu_after_load" in bugs:
        # Bug: the second ALU operand is corrupted (LSB forced high) when the
        # previous committed instruction was a load.
        alu_b = mux(
            hist_was_load.q & is_alu_rr, alu_b_raw | BVConst(xlen, 1), alu_b_raw
        )
    else:
        alu_b = alu_b_raw

    add_ext = zero_extend(rs1_val, xlen + 1) + zero_extend(alu_b, xlen + 1)
    add_result = add_ext[0:xlen]
    add_carry = add_ext[xlen]
    sub_result_plain = rs1_val - alu_b
    if "consecutive_sub" in bugs:
        # Bug: two back-to-back SUB instructions make the second one off by one.
        sub_result = mux(
            is_op["SUB"] & hist_opcode.q.eq(BVConst(6, instruction_by_name("SUB").opcode)),
            sub_result_plain + BVConst(xlen, 1),
            sub_result_plain,
        )
    else:
        sub_result = sub_result_plain
    no_borrow = ~rs1_val.ult(alu_b)

    and_result = rs1_val & alu_b
    or_result = rs1_val | alu_b
    xor_result = rs1_val ^ alu_b
    mul_result = rs1_val * alu_b
    min_result = mux(rs1_val.ult(alu_b), rs1_val, alu_b)
    max_result = mux(rs1_val.ult(alu_b), alu_b, rs1_val)
    sll_result = rs1_val << alu_b
    srl_result = rs1_val >> alu_b
    sra_result_plain = rs1_val.arith_shift_right(alu_b)
    sra_result = srl_result if "sra_zero_fill" in bugs else sra_result_plain

    not_result = ~rs1_val
    neg_result = -rs1_val
    neg_carry = rs1_val.eq(BVConst(xlen, 0))
    inc_ext = zero_extend(rs1_val, xlen + 1) + BVConst(xlen + 1, 1)
    inc_result = inc_ext[0:xlen]
    inc_carry = inc_ext[xlen]
    dec_result = rs1_val - BVConst(xlen, 1)
    dec_no_borrow = rs1_val.ne(BVConst(xlen, 0))
    rol_result = concat(rs1_val[0 : xlen - 1], rs1_val[xlen - 1])
    ror_result_plain = concat(rs1_val[0], rs1_val[1:xlen])
    ror_result = rol_result if "ror_direction" in bugs else ror_result_plain
    half_bits = xlen // 2
    swap_result = concat(rs1_val[0:half_bits], rs1_val[half_bits:xlen])
    parity_bit: BV = rs1_val[0]
    for bit_index in range(1, xlen):
        parity_bit = parity_bit ^ rs1_val[bit_index]
    parity_result = zero_extend(parity_bit, xlen)
    abs_result = mux(rs1_val[xlen - 1], neg_result, rs1_val)

    sat_limit = mask - 1 if "satadd_clamp" in bugs else mask
    satadd_result = mux(add_carry, BVConst(xlen, sat_limit), add_result)

    ldi_result = imm_data
    ldih_result = _resize(imm_data << BVConst(xlen, half_bits), xlen)
    if "ldil_after_load" in bugs:
        # Bug: LDIL (fixed destination R0) corrupts bit 0 of the immediate
        # when the previous committed instruction was a load.
        ldil_result = mux(
            hist_was_load.q, imm_data ^ BVConst(xlen, 1), imm_data
        )
    else:
        ldil_result = imm_data

    jal_link = _resize(ex_pc.q + BVConst(arch.pc_width, 1), xlen)

    # ------------------------------------------------------------------
    # Data memory
    # ------------------------------------------------------------------
    addr_base = mux(
        any_op(["LDA", "STA"]),
        imm_data,
        mux(any_op(["LDO", "STO"]), rs1_val + imm_data, rs1_val),
    )
    mem_addr = _resize(addr_base, arch.dmem_addr_width)
    mem_rdata_plain = dmem.read(mem_addr)
    if "st_ld_stale" in bugs:
        # Bug: a load immediately following a store to the same address goes
        # through the (broken) write-data forwarding path, which flips the
        # least-significant bit of the returned data.
        mem_rdata = mux(
            hist_was_store.q & hist_store_addr.q.eq(mem_addr),
            mem_rdata_plain ^ BVConst(xlen, 1),
            mem_rdata_plain,
        )
    else:
        mem_rdata = mem_rdata_plain
    mem_we = ex_commit & is_store_op
    dmem.write(mem_addr, rs2_val, mem_we)

    # ------------------------------------------------------------------
    # Result selection
    # ------------------------------------------------------------------
    result_candidates: List[Tuple[BV, BV]] = [
        (is_op["ADD"] | is_op["ADDI"], add_result),
        (is_op["SUB"] | is_op["SUBI"], sub_result),
        (is_op["AND"] | is_op["ANDI"], and_result),
        (is_op["OR"] | is_op["ORI"], or_result),
        (is_op["XOR"] | is_op["XORI"], xor_result),
        (is_op["NAND"], ~and_result),
        (is_op["NOR"], ~or_result),
        (is_op["XNOR"], ~xor_result),
        (is_op["MUL"], mul_result),
        (is_op["MIN"], min_result),
        (is_op["MAX"], max_result),
        (is_op["SLL"] | is_op["SLLI"], sll_result),
        (is_op["SRL"] | is_op["SRLI"], srl_result),
        (is_op["SRA"] | is_op["SRAI"], sra_result),
        (is_op["NOT"], not_result),
        (is_op["NEG"], neg_result),
        (is_op["MOV"], rs1_val),
        (is_op["INC"], inc_result),
        (is_op["DEC"], dec_result),
        (is_op["ROL"], rol_result),
        (is_op["ROR"], ror_result),
        (is_op["SWAP"], swap_result),
        (is_op["PARITY"], parity_result),
        (is_op["ABS"], abs_result),
        (is_op["LDI"], ldi_result),
        (is_op["LDIH"], ldih_result),
        (is_op["LDIL"], ldil_result),
        (is_op["LD"] | is_op["LDO"] | is_op["LDA"], mem_rdata),
        (is_op["CMP"] | is_op["CMPI"], sub_result),
        (is_op["TST"], rs1_val),
        (is_op["JAL"], jal_link),
        (is_op["SATADD"], satadd_result),
    ]
    result: BV = BVConst(xlen, 0)
    for condition, value in result_candidates:
        result = mux(condition, value, result)

    # SRAI shares the SRA data path but is unaffected by the SRA seeded bug
    # (the bug lives in the register-register shifter).
    if "sra_zero_fill" in bugs:
        result = mux(is_op["SRAI"], sra_result_plain, result)

    # ------------------------------------------------------------------
    # Write-back
    # ------------------------------------------------------------------
    wb_addr = mux(is_op["LDIL"], BVConst(arch.reg_index_width, 0), rd_idx)
    wb_enable = ex_commit & writes_rd_op
    if "wrport_collision" in bugs:
        # Bug: the register-file write port drops the second of two
        # back-to-back writes to the same register.
        wb_enable = wb_enable & ~(hist_wb_valid.q & hist_wb_addr.q.eq(wb_addr))
    if "inplace_after_store" in bugs:
        # Bug: an in-place update (rd == rs1) immediately after a store loses
        # its write-back.
        reads_rs1_op = any_op([i.name for i in isa if i.reads_rs1])
        wb_enable = wb_enable & ~(
            hist_was_store.q & writes_rd_op & reads_rs1_op & rd_idx.eq(rs1_idx)
        )
    wb_value = result
    regs.write(wb_addr, wb_value, wb_enable)

    # ------------------------------------------------------------------
    # Flags
    # ------------------------------------------------------------------
    flag_value = result
    flags_write = ex_commit & sets_flags_op
    next_z = mux(flags_write, flag_value.eq(BVConst(xlen, 0)), flag_z.q)
    next_n = mux(flags_write, flag_value[xlen - 1], flag_n.q)

    carry_candidates: List[Tuple[BV, BV]] = [
        (is_op["ADD"] | is_op["ADDI"] | is_op["SATADD"], add_carry),
        (is_op["SUB"] | is_op["SUBI"] | is_op["CMP"] | is_op["CMPI"], no_borrow),
        (is_op["INC"], inc_carry),
        (is_op["DEC"], dec_no_borrow),
        (is_op["NEG"], neg_carry),
    ]
    carry_value: BV = flag_c.q
    for condition, value in carry_candidates:
        carry_value = mux(condition, value, carry_value)
    carry_write = ex_commit & (arith_add_op | arith_sub_op)
    if "cmpi_carry_spec" in bugs:
        # Specification-level issue: CMPI stops updating the carry flag.  The
        # design specification (golden model) was amended to match, so only a
        # property written from the original architectural intent notices.
        carry_write = carry_write & ~is_op["CMPI"]
    next_c = mux(carry_write, carry_value, flag_c.q)

    flag_z.next = next_z
    flag_n.next = next_n
    flag_c.next = next_c

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    bz_taken = flag_z.q
    if "bz_flag_misread" in bugs:
        # Bug: BZ samples the N flag instead of Z when the previously written
        # destination register lies in the upper half of the register file.
        bz_taken = mux(hist_wb_valid.q & hist_wb_high, flag_n.q, flag_z.q)
    bnz_taken = ~flag_z.q
    if "bnz_carry_confusion" in bugs:
        # Bug: BNZ is suppressed when the carry flag is set and the previous
        # write-back targeted an upper-half register.
        bnz_taken = ~flag_z.q & ~(flag_c.q & hist_wb_valid.q & hist_wb_high)

    beq_taken = rs1_val.eq(rs2_val)
    bne_taken = rs1_val.ne(rs2_val)
    if "beq_high_inverted" in bugs:
        # Bug: BEQ inverts its comparison when both source registers lie in
        # the upper half of the register file and the comparator bank is
        # still busy with the previous write-back.
        beq_taken = mux(
            rs1_high & rs2_high & hist_wb_valid.q,
            rs1_val.ne(rs2_val),
            beq_taken,
        )

    taken_candidates: List[Tuple[BV, BV]] = [
        (is_op["BZ"], bz_taken),
        (is_op["BNZ"], bnz_taken),
        (is_op["BC"], flag_c.q),
        (is_op["BNC"], ~flag_c.q),
        (is_op["BN"], flag_n.q),
        (is_op["BNN"], ~flag_n.q),
        (is_op["BEQ"], beq_taken),
        (is_op["BNE"], bne_taken),
        (is_op["JMP"] | is_op["JR"] | is_op["JAL"], _bit(1)),
    ]
    cf_taken: BV = _bit(0)
    for condition, value in taken_candidates:
        cf_taken = mux(condition, value, cf_taken)

    imm_target = _resize(imm_field, arch.pc_width)
    jr_target_val = rs1_val
    if "jr_target_offby1" in bugs:
        # Bug: JR through an upper-half register jumps one word past the
        # intended target when the previous instruction produced a write-back
        # (the target adder erroneously reuses the write-back increment).
        jr_target_val = mux(
            rs1_high & hist_wb_valid.q, rs1_val + BVConst(xlen, 1), rs1_val
        )
    jr_target = _resize(jr_target_val, arch.pc_width)
    cf_target = mux(is_op["JR"], jr_target, imm_target)

    cf_valid = ex_commit & is_cf_op
    branch_taken = cf_valid & cf_taken
    halt_now = ex_commit & is_op["HALT"]

    pc_plus_1 = pc.q + BVConst(arch.pc_width, 1)
    pc.next = mux(
        halted.q | halt_now,
        pc.q,
        mux(branch_taken, cf_target, pc_plus_1),
    )
    ex_instr.next = instr_in
    ex_pc.next = pc.q
    ex_valid.next = instr_valid & ~branch_taken & ~halt_now & ~halted.q
    halted.next = halted.q | halt_now

    # ------------------------------------------------------------------
    # Monitoring / history
    # ------------------------------------------------------------------
    hist_wb_valid.next = wb_enable
    hist_wb_addr.next = wb_addr
    hist_was_load.next = ex_commit & is_load_op
    hist_was_store.next = mem_we
    hist_store_addr.next = mem_addr
    hist_opcode.next = mux(ex_commit, opcode, BVConst(6, 0))
    parity_bit_wb: BV = wb_value[0]
    for bit_index in range(1, xlen):
        parity_bit_wb = parity_bit_wb ^ wb_value[bit_index]
    parity_reg.next = mux(wb_enable, parity_bit_wb, parity_reg.q)
    watchdog.next = mux(
        ex_commit,
        BVConst(3, 0),
        mux(watchdog.q.eq(BVConst(3, 7)), watchdog.q, watchdog.q + BVConst(3, 1)),
    )

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    circuit.output("pc_out", pc.q)
    circuit.output("ex_pc_out", ex_pc.q)
    circuit.output("commit", ex_commit)
    circuit.output("ex_valid_out", ex_valid.q)
    circuit.output("ex_opcode", opcode)
    circuit.output("ex_rd", rd_field)
    circuit.output("ex_rs1", rs1_field)
    circuit.output("ex_rs2", rs2_field)
    circuit.output("ex_imm", imm_field)
    circuit.output("ex_rs1_val", rs1_val)
    circuit.output("ex_rs2_val", rs2_val)
    circuit.output("wb_enable", wb_enable)
    circuit.output("wb_addr", wb_addr)
    circuit.output("wb_value", wb_value)
    circuit.output("mem_we", mem_we)
    circuit.output("mem_addr", mem_addr)
    circuit.output("mem_wdata", rs2_val)
    circuit.output("mem_rdata", mem_rdata)
    circuit.output("cf_valid", cf_valid)
    circuit.output("cf_taken", cf_valid & cf_taken)
    circuit.output("cf_target", cf_target)
    circuit.output("next_flag_z", next_z)
    circuit.output("next_flag_c", next_c)
    circuit.output("next_flag_n", next_n)
    circuit.output("halt_now", halt_now)
    circuit.output("safety_parity", parity_reg.q)
    circuit.output("watchdog", watchdog.q)
    return circuit


def build_core(config: CoreConfig) -> Design:
    """Build and elaborate a core for *config*."""
    return elaborate(build_core_circuit(config), name=config.name)


def register_word_name(index: int) -> str:
    """State-element name of architectural register *index*."""
    return f"regs[{index}]"


def dmem_word_name(index: int) -> str:
    """State-element name of data-memory word *index*."""
    return f"dmem[{index}]"
