"""Construction of the study's design versions.

``build_design("A", 5)`` returns the elaborated RTL of Design A version 5
with its documented bugs injected; ``build_design_with_rom`` additionally
returns the ROM testbench helper for simulation-based flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.isa.arch import ArchParams, TINY_PROFILE
from repro.isa.golden import GoldenModel
from repro.rtl.design import Design
from repro.uarch.config import CoreConfig
from repro.uarch.core import build_core
from repro.uarch.rom import RomProgram, attach_rom
from repro.uarch.versions import DesignVersion, version_by_name


def _resolve_version(
    design: Union[str, DesignVersion], version: Optional[int]
) -> DesignVersion:
    if isinstance(design, DesignVersion):
        return design
    if version is None:
        if "." in design:
            return version_by_name(design)
        raise ValueError(
            "a version number is required when passing a family name "
            "(or pass a full name such as 'A.v5')"
        )
    return version_by_name(f"{design}.v{version}")


def config_for_version(
    design: Union[str, DesignVersion],
    version: Optional[int] = None,
    *,
    arch: ArchParams = TINY_PROFILE,
) -> CoreConfig:
    """Return the :class:`CoreConfig` of a design version."""
    info = _resolve_version(design, version)
    return CoreConfig(
        name=info.name,
        arch=arch,
        with_extension=info.with_extension,
        rom_interface=info.rom_interface,
        bugs=info.bugs,
    )


def build_design(
    design: Union[str, DesignVersion],
    version: Optional[int] = None,
    *,
    arch: ArchParams = TINY_PROFILE,
) -> Design:
    """Build the elaborated RTL of a design version.

    Parameters
    ----------
    design:
        Design family name (``"A"``, ``"B"``, ``"C"``) or a
        :class:`~repro.uarch.versions.DesignVersion`.
    version:
        Version number within the family (ignored when a
        :class:`DesignVersion` is passed).
    arch:
        Architecture profile to build at (the study's evaluation uses the
        ``tiny`` profile so BMC runs complete in seconds).
    """
    return build_core(config_for_version(design, version, arch=arch))


def golden_model_for_version(
    design: Union[str, DesignVersion],
    version: Optional[int] = None,
    *,
    arch: ArchParams = TINY_PROFILE,
) -> GoldenModel:
    """The specification (golden) model matching a design version.

    The golden model follows the *specification document* of that version:
    for versions carrying the ``cmpi_carry_spec`` specification bug the model
    agrees with the (incorrect) amended specification, which is what blinds
    the simulation-based flows to that bug.
    """
    info = _resolve_version(design, version)
    return GoldenModel(
        arch,
        with_extension=info.with_extension,
        cmpi_carry_broken="cmpi_carry_spec" in info.bugs,
    )


@dataclass
class DesignWithRom:
    """A design plus the ROM-driving testbench helper."""

    design: Design
    rom: RomProgram
    driver: attach_rom
    version: DesignVersion


def build_design_with_rom(
    design: Union[str, DesignVersion],
    rom: RomProgram,
    version: Optional[int] = None,
    *,
    arch: ArchParams = TINY_PROFILE,
) -> DesignWithRom:
    """Build a design version together with a ROM driver for simulation."""
    info = _resolve_version(design, version)
    elaborated = build_design(info, arch=arch)
    driver = attach_rom(rom, interface=info.rom_interface)
    return DesignWithRom(design=elaborated, rom=rom, driver=driver, version=info)
