"""The sixteen design versions analysed in the case study.

The paper studies three designs derived from a common ancestor: Design A
(six accessible versions, ``A.v3`` ... ``A.v8``), Design B and Design C (five
accessible versions each).  Each version reflects an RTL update that adds a
feature and/or fixes a bug; some bugs were specification bugs and were fixed
in the specification rather than the RTL.

We mirror that structure: every :class:`DesignVersion` lists the bugs still
present in that version, and the final versions are clean except for the
Design-A specification issue (``cmpi_carry_spec``) that the industrial flow
never recorded.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple, TYPE_CHECKING

from repro.uarch.bugs import bug_by_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (designs -> versions)
    from repro.isa.arch import ArchParams


@dataclass(frozen=True)
class DesignVersion:
    """One RTL version of one design family."""

    design: str             # "A", "B" or "C"
    version: int            # version number within the family
    bugs: FrozenSet[str]    # bug ids present in this version
    change_note: str        # what changed relative to the previous version

    @property
    def name(self) -> str:
        """Canonical name, e.g. ``A.v3``."""
        return f"{self.design}.v{self.version}"

    @property
    def with_extension(self) -> bool:
        """Whether this design family implements the SATADD extension."""
        return self.design in ("B", "C")

    @property
    def rom_interface(self) -> str:
        """ROM interface style of the design family."""
        return "dual" if self.design == "A" else "single"

    @property
    def has_spec_bug(self) -> bool:
        """Whether any of the present bugs is a specification bug."""
        return any(bug_by_id(bug_id).kind == "spec" for bug_id in self.bugs)

    def fingerprint(self, arch: Optional["ArchParams"] = None) -> str:
        """Content hash of this version's RTL as built for *arch*.

        The version's core is elaborated (bugs injected) and the resulting
        netlist is hashed structurally
        (:meth:`repro.rtl.design.Design.structural_hash`), so the
        fingerprint identifies the design *content*, not the version name:
        two versions whose injected netlists coincide share a fingerprint,
        and any RTL-generator or bug-library change shifts it.  This is the
        invalidation key of the serving layer's result cache -- stale
        cached verdicts become unreachable the moment the content changes.

        Elaboration takes ~100 ms, so fingerprints are memoized per
        ``(version, arch)``.
        """
        from repro.isa.arch import TINY_PROFILE

        return _fingerprint(self, arch if arch is not None else TINY_PROFILE)


@functools.lru_cache(maxsize=None)
def _fingerprint(version: DesignVersion, arch: "ArchParams") -> str:
    # Imported here: repro.uarch.designs imports this module at load time.
    import hashlib
    import json

    from repro.uarch.designs import build_design

    design = build_design(version, arch=arch)
    payload = json.dumps(
        {
            "format": 1,
            "arch": arch.to_json_dict(),
            "netlist": design.structural_hash(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _v(design: str, version: int, bugs: Tuple[str, ...], note: str) -> DesignVersion:
    for bug_id in bugs:
        bug_by_id(bug_id)  # validate
    return DesignVersion(design, version, frozenset(bugs), note)


#: The sixteen versions of the study.  Design A exposes versions 3..8 (the
#: first two versions were not accessible, matching the paper's "first i
#: versions" caveat), Designs B and C expose versions 2..6.
ALL_VERSIONS: List[DesignVersion] = [
    # ----------------------------------------------------------- Design A
    _v(
        "A", 3,
        ("wrport_collision", "alu_after_load"),
        "first accessible version; write-port and load-use issues present",
    ),
    _v(
        "A", 4,
        ("consecutive_sub", "bz_flag_misread"),
        "fixes write-port and load-use issues; introduces SUB pairing and BZ "
        "flag selection regressions while adding the extended compare unit",
    ),
    _v(
        "A", 5,
        ("consecutive_sub", "ldil_after_load"),
        "fixes the BZ flag selection; LDIL fast path added with a load "
        "interaction regression",
    ),
    _v(
        "A", 6,
        ("sra_zero_fill", "bnz_carry_confusion"),
        "fixes SUB pairing and LDIL; shifter rewritten (SRA regression) and "
        "branch unit retimed (BNZ regression)",
    ),
    _v(
        "A", 7,
        ("cmpi_carry_spec",),
        "fixes SRA and BNZ; CMPI flag behaviour changed and the specification "
        "document amended to match (specification bug)",
    ),
    _v(
        "A", 8,
        ("cmpi_carry_spec",),
        "final version of Design A; no logic bugs, the CMPI specification "
        "deviation remains (never recorded by the industrial flow)",
    ),
    # ----------------------------------------------------------- Design B
    _v(
        "B", 2,
        ("st_ld_stale", "satadd_clamp"),
        "first accessible version; single-ROM interface, SATADD extension "
        "added with a saturation regression, store buffer issue present",
    ),
    _v(
        "B", 3,
        ("jr_target_offby1",),
        "fixes the store buffer and SATADD saturation; jump unit extended "
        "for upper-half registers with an off-by-one regression",
    ),
    _v(
        "B", 4,
        ("ror_direction",),
        "fixes JR; rotate unit shared with the new CRC block (ROR regression)",
    ),
    _v(
        "B", 5,
        ("inplace_after_store",),
        "fixes ROR; write-back arbitration reworked (in-place update "
        "regression)",
    ),
    _v(
        "B", 6,
        (),
        "final version of Design B; no known bugs",
    ),
    # ----------------------------------------------------------- Design C
    _v(
        "C", 2,
        ("beq_high_inverted", "alu_after_load"),
        "first accessible version; comparator bank duplicated for the upper "
        "half (BEQ regression), load-use issue inherited from Design 1",
    ),
    _v(
        "C", 3,
        ("beq_high_inverted",),
        "fixes the load-use issue; BEQ regression still present",
    ),
    _v(
        "C", 4,
        ("wrport_collision",),
        "fixes BEQ; write-port arbitration shared with the new DMA port "
        "(write collision regression reappears)",
    ),
    _v(
        "C", 5,
        (),
        "fixes the write collision; feature-only update",
    ),
    _v(
        "C", 6,
        (),
        "final version of Design C; no known bugs",
    ),
]

_BY_NAME: Dict[str, DesignVersion] = {v.name: v for v in ALL_VERSIONS}


def version_by_name(name: str) -> DesignVersion:
    """Look up a version by canonical name (e.g. ``"A.v5"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown design version {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def versions_of_design(design: str) -> List[DesignVersion]:
    """All accessible versions of one design family, oldest first."""
    selected = [v for v in ALL_VERSIONS if v.design == design]
    if not selected:
        raise KeyError(f"unknown design family {design!r}")
    return sorted(selected, key=lambda v: v.version)


def final_version(design: str) -> DesignVersion:
    """The final (most recent) version of a design family."""
    return versions_of_design(design)[-1]


def buggy_versions() -> List[DesignVersion]:
    """All versions that contain at least one bug."""
    return [v for v in ALL_VERSIONS if v.bugs]


def unique_bugs() -> FrozenSet[str]:
    """The set of distinct bug ids present across all versions."""
    bugs: set = set()
    for version in ALL_VERSIONS:
        bugs |= version.bugs
    return frozenset(bugs)
