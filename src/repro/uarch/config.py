"""Core build configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.isa.arch import ArchParams, TINY_PROFILE


@dataclass(frozen=True)
class CoreConfig:
    """Parameters controlling how a core instance is built.

    Attributes
    ----------
    name:
        Instance name; becomes the elaborated design name.
    arch:
        Architecture profile (data width, register count, memory sizes).
    with_extension:
        Whether the ``SATADD`` extension instruction is implemented
        (Designs B and C implement it, Design A does not).
    rom_interface:
        ``"dual"`` or ``"single"`` -- the instruction-memory interface style.
        Design A uses a dual-ROM interface (even/odd banks); Designs B and C
        use a single ROM.  The interface only matters when a ROM is attached
        for simulation; the bare core exposes a single instruction-injection
        port either way (which is where the QED module hooks in during BMC).
    bugs:
        Identifiers of the seeded bugs to inject (see
        :mod:`repro.uarch.bugs`).
    """

    name: str = "core"
    arch: ArchParams = TINY_PROFILE
    with_extension: bool = False
    rom_interface: str = "dual"
    bugs: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.rom_interface not in ("dual", "single"):
            raise ValueError("rom_interface must be 'dual' or 'single'")

    def with_bugs(self, *bug_ids: str) -> "CoreConfig":
        """Return a copy of the configuration with *bug_ids* injected."""
        return CoreConfig(
            name=self.name,
            arch=self.arch,
            with_extension=self.with_extension,
            rom_interface=self.rom_interface,
            bugs=frozenset(self.bugs) | frozenset(bug_ids),
        )

    def has_bug(self, bug_id: str) -> bool:
        """Whether a particular bug is injected in this configuration."""
        return bug_id in self.bugs
