"""Directed Simulation Tests (DST).

Designer-written testbenches that verify specific features or functions:
state transitions (reset, halt, restart), representative instructions of each
class, and the memory interface.  As in the paper, directed tests are not
meant to be comprehensive -- the suite below checks the architectural basics
and deliberately exercises "typical" scenarios rather than the corner-case
interactions where the seeded bugs hide; bugs found (and immediately fixed)
by designers during bring-up are not recorded, so DST contributes no entries
to the detection comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.isa.arch import ArchParams, TINY_PROFILE
from repro.isa.assembler import Program, assemble
from repro.isa.encoding import nop_word
from repro.rtl.simulator import Simulator
from repro.uarch.core import dmem_word_name, register_word_name
from repro.uarch.designs import build_design
from repro.uarch.rom import RomProgram, attach_rom
from repro.uarch.versions import DesignVersion


@dataclass
class DirectedTest:
    """One directed test: a program plus expected architectural results."""

    name: str
    description: str
    source: str
    expected_regs: Dict[int, int] = field(default_factory=dict)
    expected_mem: Dict[int, int] = field(default_factory=dict)
    expect_halted: bool = True
    max_cycles: int = 64
    requires_extension: bool = False


@dataclass
class DirectedTestResult:
    """Outcome of one directed test on one design version."""

    test_name: str
    passed: bool
    failures: List[str] = field(default_factory=list)
    cycles: int = 0


class DirectedTestSuite:
    """A collection of directed tests runnable against any design version."""

    def __init__(self, arch: ArchParams = TINY_PROFILE) -> None:
        self.arch = arch
        self.tests: List[DirectedTest] = []

    def add(self, test: DirectedTest) -> None:
        """Add a test to the suite."""
        self.tests.append(test)

    # ------------------------------------------------------------------
    def run_test(
        self, version: Union[DesignVersion, str], test: DirectedTest
    ) -> DirectedTestResult:
        """Run one test on one design version and check its expectations."""
        design = build_design(version, arch=self.arch)
        program = assemble(test.source, self.arch)
        rom = RomProgram.from_program(program)
        driver = attach_rom(rom)
        simulator = Simulator(design)

        cycles = 0
        for _ in range(test.max_cycles):
            inputs = driver.inputs_for(simulator.peek("pc"))
            simulator.step(inputs)
            cycles += 1
            if simulator.peek("halted"):
                # Let the pipeline drain one more cycle for the final commit.
                simulator.step({"instr_in": nop_word(self.arch), "instr_valid": 0})
                cycles += 1
                break

        failures: List[str] = []
        if test.expect_halted and not simulator.peek("halted"):
            failures.append("core did not halt")
        for register, expected in test.expected_regs.items():
            actual = simulator.peek(register_word_name(register))
            if actual != expected:
                failures.append(
                    f"R{register} = {actual}, expected {expected}"
                )
        for address, expected in test.expected_mem.items():
            actual = simulator.peek(dmem_word_name(address))
            if actual != expected:
                failures.append(
                    f"mem[{address}] = {actual}, expected {expected}"
                )
        return DirectedTestResult(
            test_name=test.name,
            passed=not failures,
            failures=failures,
            cycles=cycles,
        )

    def run_all(
        self, version: Union[DesignVersion, str], *, with_extension: bool = True
    ) -> List[DirectedTestResult]:
        """Run every applicable test on one design version."""
        results = []
        for test in self.tests:
            if test.requires_extension and not with_extension:
                continue
            results.append(self.run_test(version, test))
        return results

    def detected_bug(self, results: List[DirectedTestResult]) -> bool:
        """Whether any directed test failed (i.e. a bug was observed)."""
        return any(not result.passed for result in results)


def default_directed_suite(arch: ArchParams = TINY_PROFILE) -> DirectedTestSuite:
    """The designer-written directed suite used across all versions.

    The programs verify basic functionality per instruction class; operand
    values are the "nice" values a designer reaches for, which is exactly why
    the seeded interaction bugs slip through (their triggers require specific
    back-to-back patterns the directed tests do not produce).
    """
    mask = arch.xlen_mask
    suite = DirectedTestSuite(arch)

    suite.add(
        DirectedTest(
            name="reset_and_halt",
            description="core comes out of reset executing and honours HALT",
            source="""
                LDI R1, #1
                NOP
                HALT
            """,
            expected_regs={1: 1},
        )
    )
    suite.add(
        DirectedTest(
            name="alu_basic",
            description="representative ALU register-register operations",
            source="""
                LDI R1, #3
                NOP
                LDI R2, #2
                NOP
                ADD R3, R1, R2
                NOP
                SUB R4, R1, R2
                NOP
                AND R5, R1, R2
                NOP
                HALT
            """,
            expected_regs={3: 5 & mask, 4: 1, 5: 2},
        )
    )
    suite.add(
        DirectedTest(
            name="immediate_and_unary",
            description="immediate ALU forms and unary operations",
            source="""
                LDI R1, #5
                NOP
                ADDI R2, R1, #2
                NOP
                NOT R3, R1
                NOP
                INC R4, R1
                NOP
                HALT
            """,
            expected_regs={2: 7 & mask, 3: (~5) & mask, 4: 6 & mask},
        )
    )
    suite.add(
        DirectedTest(
            name="memory_store_load",
            description="store then (later) load through the data memory",
            source="""
                LDI R1, #3
                NOP
                STA #1, R1
                NOP
                NOP
                LDA R2, #1
                NOP
                HALT
            """,
            expected_regs={2: 3},
            expected_mem={1: 3},
        )
    )
    suite.add(
        DirectedTest(
            name="branch_taken_and_not_taken",
            description="flag-based branch in both directions",
            source="""
                LDI R1, #1
                NOP
                CMPI R1, #1
                BZ @skip
                LDI R2, #7
            skip:
                LDI R3, #2
                NOP
                CMPI R1, #2
                BZ @end
                LDI R4, #4
                NOP
            end:
                HALT
            """,
            expected_regs={2: 0, 3: 2, 4: 4},
        )
    )
    suite.add(
        DirectedTest(
            name="jump_and_link",
            description="unconditional jumps and the link register",
            source="""
                JMP @target
                LDI R1, #7
            target:
                LDI R2, #1
                NOP
                HALT
            """,
            expected_regs={1: 0, 2: 1},
        )
    )
    suite.add(
        DirectedTest(
            name="saturating_add_extension",
            description="SATADD extension sanity (Designs B and C only)",
            source="""
                LDI R1, #3
                NOP
                LDI R2, #2
                NOP
                SATADD R3, R1, R2
                NOP
                HALT
            """,
            expected_regs={3: min(5, mask)},
            requires_extension=True,
        )
    )
    return suite
