"""OCS-FV: the case study's in-house property-based formal flow.

OCS-FV generates one property per instruction (Fig. 2 of the paper) and
proves it on the pipeline with BMC.  Its weakness -- and the reason every
recorded bug escaped it -- is the manual work needed to avoid false failures:

* interactions with other in-flight instructions are excluded by constraints
  (modelled here by proving each property from the concrete reset state with
  an otherwise empty pipeline, i.e. operand values are *not* symbolic), and
* "human error" details are missing from the hand-maintained properties
  (modelled here by omitting the carry-flag checks).

Structurally the properties are the same shape as the Single-I properties of
:mod:`repro.qed.single_i`; the two flows differ exactly in the settings above,
which is what makes the comparison between them meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.isa.arch import ArchParams, TINY_PROFILE
from repro.qed.single_i import SingleIChecker, SingleIResult
from repro.uarch.config import CoreConfig
from repro.uarch.versions import DesignVersion


@dataclass
class OCSFVResult:
    """Outcome of running the OCS-FV property set on one design version."""

    design_name: str
    results: List[SingleIResult] = field(default_factory=list)

    @property
    def failing_properties(self) -> List[str]:
        """Instructions whose OCS-FV property failed."""
        return [r.instruction for r in self.results if r.violated]

    @property
    def detected_bug(self) -> bool:
        """Whether any property failed (i.e. OCS-FV observed a bug)."""
        return bool(self.failing_properties)

    @property
    def total_runtime_seconds(self) -> float:
        """Total BMC runtime over all properties."""
        return sum(r.runtime_seconds for r in self.results)


class OCSFVChecker:
    """Run the OCS-FV property set on a design version."""

    def __init__(
        self,
        design: Union[CoreConfig, DesignVersion, str],
        *,
        arch: ArchParams = TINY_PROFILE,
    ) -> None:
        # Concrete (non-symbolic) operands and no carry checks: the two
        # deliberate weaknesses described in the module docstring.
        self._checker = SingleIChecker(
            design,
            arch=arch,
            symbolic_operands=False,
            check_carry=False,
            name_prefix="ocsfv",
        )
        self.design_name = self._checker.config.name

    def check_all(self, *, instructions: Optional[List[str]] = None) -> OCSFVResult:
        """Prove every per-instruction property; collect the failures."""
        results = self._checker.check_all(instructions=instructions)
        return OCSFVResult(design_name=self.design_name, results=results)
