"""Constrained Random Simulation (CRS).

A UVM-style environment: a constrained stimulus generator produces random but
valid programs with the biases a verification plan would call out
(back-to-back register reuse, store/load address collisions, branch-heavy
sections), the RTL core executes them on the cycle-accurate simulator, and a
scoreboard compares the architectural state against the specification
(golden) model after every committed instruction.  Functional coverage is
collected by :mod:`repro.indverif.coverage`.

Because the scoreboard's reference is the *specification document* of the
design version, CRS finds every RTL bug whose trigger it manages to generate,
but is structurally blind to specification bugs -- which reproduces the
paper's Fig. 8/9 split (CRS finds all recorded logic bugs, Symbolic QED finds
one more).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.isa.arch import ArchParams, TINY_PROFILE
from repro.isa.encoding import decode, encode, nop_word
from repro.isa.golden import GoldenModel
from repro.isa.instructions import Instruction, InstructionClass, instructions_for_design
from repro.indverif.coverage import CoverageModel
from repro.rtl.simulator import Simulator
from repro.uarch.core import dmem_word_name, register_word_name
from repro.uarch.designs import build_design, golden_model_for_version
from repro.uarch.versions import DesignVersion, version_by_name


@dataclass
class CRSConfig:
    """Knobs of the constrained-random environment."""

    num_programs: int = 40
    program_length: int = 24
    seed: int = 2019
    #: probability of re-using the previous destination register as this
    #: instruction's destination or source (RAW/WAW hazard bias).
    reuse_register_bias: float = 0.35
    #: probability of a memory instruction re-using the previous address.
    reuse_address_bias: float = 0.5
    #: fraction of control-flow instructions in the mix.
    control_flow_fraction: float = 0.15
    max_cycles_per_program: int = 64

    # -- canonical serialization ---------------------------------------
    def to_json_dict(self) -> dict:
        """Canonical, versioned JSON form (every knob explicit, sorted)."""
        return {
            "format": 1,
            "num_programs": self.num_programs,
            "program_length": self.program_length,
            "seed": self.seed,
            "reuse_register_bias": self.reuse_register_bias,
            "reuse_address_bias": self.reuse_address_bias,
            "control_flow_fraction": self.control_flow_fraction,
            "max_cycles_per_program": self.max_cycles_per_program,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "CRSConfig":
        """Inverse of :meth:`to_json_dict` (validates the format tag)."""
        if data.get("format", 1) != 1:
            raise ValueError(f"unsupported CRSConfig format {data.get('format')!r}")
        return cls(
            num_programs=int(data.get("num_programs", 40)),
            program_length=int(data.get("program_length", 24)),
            seed=int(data.get("seed", 2019)),
            reuse_register_bias=float(data.get("reuse_register_bias", 0.35)),
            reuse_address_bias=float(data.get("reuse_address_bias", 0.5)),
            control_flow_fraction=float(data.get("control_flow_fraction", 0.15)),
            max_cycles_per_program=int(data.get("max_cycles_per_program", 64)),
        )


@dataclass
class CRSMismatch:
    """One scoreboard mismatch observed during simulation."""

    program_index: int
    commit_index: int
    instruction: str
    detail: str


@dataclass
class CRSResult:
    """Outcome of a CRS regression on one design version."""

    design_name: str
    programs_run: int = 0
    instructions_committed: int = 0
    mismatches: List[CRSMismatch] = field(default_factory=list)
    coverage: Optional[CoverageModel] = None

    @property
    def detected_bug(self) -> bool:
        """Whether the scoreboard flagged at least one mismatch."""
        return bool(self.mismatches)


class ConstrainedRandomSim:
    """The CRS environment for one design version."""

    def __init__(
        self,
        design: Union[DesignVersion, str],
        *,
        arch: ArchParams = TINY_PROFILE,
        config: Optional[CRSConfig] = None,
    ) -> None:
        self.version = (
            design if isinstance(design, DesignVersion) else version_by_name(design)
        )
        self.arch = arch
        self.config = config or CRSConfig()
        self.design = build_design(self.version, arch=arch)
        self.golden: GoldenModel = golden_model_for_version(self.version, arch=arch)
        self.isa: List[Instruction] = instructions_for_design(
            with_extension=self.version.with_extension
        )
        self._data_instructions = [
            i for i in self.isa if not i.is_control_flow and i.name != "HALT"
        ]
        self._cf_instructions = [i for i in self.isa if i.is_control_flow]

    # ------------------------------------------------------------------
    # Stimulus generation
    # ------------------------------------------------------------------
    def generate_program(self, rng: random.Random) -> List[int]:
        """Generate one constrained-random program (a list of words)."""
        cfg = self.config
        arch = self.arch
        words: List[int] = []
        previous_rd: Optional[int] = None
        previous_addr: Optional[int] = None
        for _ in range(cfg.program_length):
            if self._cf_instructions and rng.random() < cfg.control_flow_fraction:
                instr = rng.choice(self._cf_instructions)
            else:
                instr = rng.choice(self._data_instructions)
            rd = rng.randrange(arch.num_regs)
            rs1 = rng.randrange(arch.num_regs)
            rs2 = rng.randrange(arch.num_regs)
            if previous_rd is not None and rng.random() < cfg.reuse_register_bias:
                rd = previous_rd
            if previous_rd is not None and rng.random() < cfg.reuse_register_bias:
                rs1 = previous_rd
            imm = rng.randrange(1 << arch.imm_width)
            if instr.is_memory:
                if previous_addr is not None and rng.random() < cfg.reuse_address_bias:
                    imm = previous_addr
                imm = imm % arch.dmem_words
                previous_addr = imm
            if instr.is_control_flow:
                # Keep branch targets forward and close so programs terminate.
                imm = min(
                    len(words) + 1 + rng.randrange(3), arch.imem_words - 1
                )
            words.append(
                encode(
                    arch,
                    instr,
                    rd=rd if instr.writes_rd and instr.fixed_rd is None else 0,
                    rs1=rs1 if instr.reads_rs1 else 0,
                    rs2=rs2 if instr.reads_rs2 else 0,
                    imm=imm if instr.uses_imm else 0,
                )
            )
            if instr.writes_rd:
                previous_rd = instr.fixed_rd if instr.fixed_rd is not None else rd
        words.append(encode(arch, "HALT"))
        return words

    # ------------------------------------------------------------------
    # Scoreboarded simulation
    # ------------------------------------------------------------------
    def _compare_states(self, simulator: Simulator, golden_state) -> Optional[str]:
        arch = self.arch
        for register in range(arch.num_regs):
            rtl = simulator.peek(register_word_name(register))
            ref = golden_state.regs[register]
            if rtl != ref:
                return f"R{register}: rtl={rtl} golden={ref}"
        for address in range(arch.dmem_words):
            rtl = simulator.peek(dmem_word_name(address))
            ref = golden_state.dmem[address]
            if rtl != ref:
                return f"mem[{address}]: rtl={rtl} golden={ref}"
        rtl_flags = (
            simulator.peek("flag_z"),
            simulator.peek("flag_c"),
            simulator.peek("flag_n"),
        )
        ref_flags = (golden_state.flag_z, golden_state.flag_c, golden_state.flag_n)
        if rtl_flags != ref_flags:
            return f"flags: rtl={rtl_flags} golden={ref_flags}"
        return None

    def run_program(
        self, words: List[int], program_index: int, result: CRSResult
    ) -> None:
        """Simulate one program and scoreboard it against the golden model."""
        arch = self.arch
        simulator = Simulator(self.design)
        golden_state = self.golden.initial_state()
        commits = 0
        for _ in range(self.config.max_cycles_per_program):
            pc = simulator.peek("pc")
            word = words[pc] if pc < len(words) else nop_word(arch)
            in_ex = simulator.peek("ex_instr")
            outputs = simulator.step({"instr_in": word, "instr_valid": 1})
            if outputs["commit"]:
                commits += 1
                executed_word = decode(arch, in_ex)
                if result.coverage is not None:
                    result.coverage.record(
                        executed_word,
                        branch_taken=bool(outputs["cf_taken"])
                        if executed_word.instruction is not None
                        and executed_word.instruction.is_branch
                        else None,
                    )
                if not golden_state.halted:
                    ref_word = (
                        words[golden_state.pc]
                        if golden_state.pc < len(words)
                        else nop_word(arch)
                    )
                    golden_state = self.golden.execute_word(golden_state, ref_word)
                mismatch = self._compare_states(simulator, golden_state)
                if mismatch is not None:
                    result.mismatches.append(
                        CRSMismatch(
                            program_index=program_index,
                            commit_index=commits,
                            instruction=executed_word.render(),
                            detail=mismatch,
                        )
                    )
                    break
            if simulator.peek("halted"):
                break
        result.instructions_committed += commits

    # ------------------------------------------------------------------
    def run(self) -> CRSResult:
        """Run the whole constrained-random regression."""
        rng = random.Random(self.config.seed)
        result = CRSResult(
            design_name=self.version.name,
            coverage=CoverageModel(
                self.arch, with_extension=self.version.with_extension
            ),
        )
        for program_index in range(self.config.num_programs):
            words = self.generate_program(rng)
            self.run_program(words, program_index, result)
            result.programs_run += 1
            if result.mismatches and program_index >= 4:
                # The regression keeps running a few programs after the first
                # failure (to gather more evidence) but does not need the
                # full budget once a bug is on the board.
                break
        return result
