"""Functional coverage collection for the simulation-based flows.

The industrial CRS flow's completion criterion is guided by code and
functional coverage [Wile 05].  This model collects the functional-coverage
dimensions that matter for a small in-order core:

* opcode coverage (every instruction executed at least once),
* instruction-class coverage,
* branch outcome coverage (taken / not taken per conditional branch),
* destination/source register coverage,
* back-to-back instruction-pair coverage (the cross bin that matters for the
  interaction bugs seeded in this study).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.arch import ArchParams
from repro.isa.encoding import EncodedInstruction
from repro.isa.instructions import InstructionClass, instructions_for_design


@dataclass
class CoverageModel:
    """Accumulates functional coverage over executed instructions."""

    arch: ArchParams
    with_extension: bool = True
    opcodes_seen: Set[str] = field(default_factory=set)
    classes_seen: Set[str] = field(default_factory=set)
    branch_outcomes: Set[Tuple[str, bool]] = field(default_factory=set)
    destinations_seen: Set[int] = field(default_factory=set)
    pair_bins: Set[Tuple[str, str]] = field(default_factory=set)
    executed_instructions: int = 0
    _previous_mnemonic: Optional[str] = None

    # ------------------------------------------------------------------
    def record(self, enc: EncodedInstruction, *, branch_taken: Optional[bool] = None) -> None:
        """Record one executed instruction."""
        self.executed_instructions += 1
        if enc.instruction is None:
            return
        instr = enc.instruction
        self.opcodes_seen.add(instr.name)
        self.classes_seen.add(instr.iclass.value)
        if instr.writes_rd:
            destination = instr.fixed_rd if instr.fixed_rd is not None else enc.rd
            self.destinations_seen.add(destination % self.arch.num_regs)
        if instr.is_branch and branch_taken is not None:
            self.branch_outcomes.add((instr.name, branch_taken))
        if self._previous_mnemonic is not None:
            self.pair_bins.add((self._previous_mnemonic, instr.name))
        self._previous_mnemonic = instr.name

    # ------------------------------------------------------------------
    @property
    def opcode_coverage(self) -> float:
        """Fraction of the ISA's opcodes that have been executed."""
        total = len(instructions_for_design(with_extension=self.with_extension))
        return len(self.opcodes_seen) / total if total else 0.0

    @property
    def class_coverage(self) -> float:
        """Fraction of instruction classes exercised."""
        total = len(
            {
                instr.iclass.value
                for instr in instructions_for_design(
                    with_extension=self.with_extension
                )
            }
        )
        return len(self.classes_seen) / total if total else 0.0

    @property
    def branch_outcome_coverage(self) -> float:
        """Fraction of (branch, taken/not-taken) bins exercised."""
        branches = [
            instr
            for instr in instructions_for_design(
                with_extension=self.with_extension
            )
            if instr.is_branch
        ]
        total = 2 * len(branches)
        return len(self.branch_outcomes) / total if total else 0.0

    @property
    def destination_coverage(self) -> float:
        """Fraction of architectural registers used as a destination."""
        return len(self.destinations_seen) / self.arch.num_regs

    def summary(self) -> Dict[str, float]:
        """All coverage metrics in one dictionary."""
        return {
            "opcode": self.opcode_coverage,
            "instruction_class": self.class_coverage,
            "branch_outcome": self.branch_outcome_coverage,
            "destination_register": self.destination_coverage,
            "instruction_pairs": float(len(self.pair_bins)),
            "executed_instructions": float(self.executed_instructions),
        }

    def meets_closure(self, *, opcode_goal: float = 0.95, branch_goal: float = 0.8) -> bool:
        """Whether the coverage closure criterion of the plan is met."""
        return (
            self.opcode_coverage >= opcode_goal
            and self.branch_outcome_coverage >= branch_goal
            and self.destination_coverage >= 0.9
        )
