"""And-Inverter Graph (AIG) with structural hashing, constant folding and
local two-level rewriting.

The AIG is the bit-level intermediate representation between the word-level
expressions of :mod:`repro.expr.bitvec` and the CNF handed to the SAT solver.
Keeping this layer explicit gives the bounded model checker three cheap but
important optimisations:

* **constant folding** -- the QED-consistent start state of Symbolic QED fixes
  all registers and memories to zero, so the first time-frames of an unrolled
  design collapse to constants;
* **structural hashing** -- the original and duplicate halves of an EDDI-V
  transformed design share most of their logic cone, which hashing detects
  and shares;
* **two-level rewriting** -- every :meth:`AIG.and_gate` call looks one level
  into AND-shaped operands and applies the classic algebraic identities
  (contradiction, idempotence/absorption, substitution, shared-child
  merging) before allocating a node, so redundant structure produced by the
  bit-blaster never reaches the Tseitin encoder.

:meth:`AIG.cone_of` extracts the transitive fan-in of a set of root literals;
the BMC engine uses it to measure (and the CNF layer to encode) only the true
cone of influence of the property window instead of every frame output.

Literals are encoded as ``2*node + sign`` where ``sign=1`` means inverted.
Node 0 is the constant false, hence literal 0 is ``False`` and literal 1 is
``True``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

AIG_FALSE = 0
AIG_TRUE = 1


class AIG:
    """A mutable And-Inverter Graph."""

    def __init__(self) -> None:
        # Node storage: for each node index >= 1, the pair of child literals.
        # Node 0 is the constant-false node and has no children.
        self._nodes: List[Tuple[int, int]] = [(0, 0)]
        self._is_input: List[bool] = [False]
        self._input_names: Dict[int, str] = {}
        self._strash: Dict[Tuple[int, int], int] = {}
        #: How often each two-level rewrite rule fired (observability for the
        #: formula-reduction pipeline; see ``rewrite_stats``).
        self._rewrite_stats: Dict[str, int] = {
            "contradiction": 0,
            "idempotence": 0,
            "absorption": 0,
            "substitution": 0,
            "shared_child": 0,
        }

    # ------------------------------------------------------------------
    # Literal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def lit_node(literal: int) -> int:
        """Return the node index of *literal*."""
        return literal >> 1

    @staticmethod
    def lit_inverted(literal: int) -> bool:
        """Return whether *literal* is inverted."""
        return bool(literal & 1)

    @staticmethod
    def negate(literal: int) -> int:
        """Return the complement of *literal*."""
        return literal ^ 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of nodes including the constant node."""
        return len(self._nodes)

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs created so far."""
        return sum(1 for flag in self._is_input if flag)

    def add_input(self, name: str = "") -> int:
        """Create a primary input and return its (positive) literal."""
        index = len(self._nodes)
        self._nodes.append((0, 0))
        self._is_input.append(True)
        if name:
            self._input_names[index] = name
        return 2 * index

    def input_name(self, node: int) -> str:
        """Return the registered name of input *node* (empty if unnamed)."""
        return self._input_names.get(node, "")

    def is_input(self, node: int) -> bool:
        """Return whether *node* is a primary input."""
        return self._is_input[node]

    def node_children(self, node: int) -> Tuple[int, int]:
        """Return the two child literals of AND node *node*."""
        return self._nodes[node]

    def and_gate(self, a: int, b: int) -> int:
        """Return a literal for ``a AND b`` with folding, rewriting, hashing."""
        # Constant folding.
        if a == AIG_FALSE or b == AIG_FALSE:
            return AIG_FALSE
        if a == AIG_TRUE:
            return b
        if b == AIG_TRUE:
            return a
        if a == b:
            return a
        if a == self.negate(b):
            return AIG_FALSE
        # Two-level rewriting: look one level into AND-shaped operands.
        is_input = self._is_input
        node_a = a >> 1
        node_b = b >> 1
        a_and = not is_input[node_a]
        b_and = not is_input[node_b]
        if a_and or b_and:
            rewritten = self._rewrite_two_level(a, b, a_and, b_and)
            if rewritten is not None:
                return rewritten
        # Canonical ordering for hashing.
        if a > b:
            a, b = b, a
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return 2 * existing
        index = len(self._nodes)
        self._nodes.append(key)
        self._is_input.append(False)
        self._strash[key] = index
        return 2 * index

    def _rewrite_two_level(
        self, a: int, b: int, a_and: bool, b_and: bool
    ) -> "int | None":
        """Apply the two-level algebraic identities to ``a AND b``.

        Returns the rewritten literal, or ``None`` when no rule applies (the
        caller then allocates/strashes the node as usual).  With children
        ``(x, y)`` of ``a``'s node and ``(u, v)`` of ``b``'s node the rules
        are the classic AIG rewriting set:

        * contradiction -- ``(x & y) & !x -> 0`` and
          ``(x & y) & (!x & v) -> 0``;
        * idempotence   -- ``(x & y) & x -> x & y``;
        * absorption    -- ``!(x & y) & !x -> !x`` and
          ``(x & y) & !(!x & v) -> x & y``;
        * substitution  -- ``!(x & y) & x -> x & !y`` and
          ``(x & y) & !(x & v) -> (x & y) & !v``;
        * shared child  -- ``(x & y) & (x & v) -> (x & y) & v``.

        Every recursive ``and_gate`` call replaces an operand with a child of
        one of the operand nodes, whose index is strictly smaller, so the
        rewriting terminates.
        """
        stats = self._rewrite_stats
        nodes = self._nodes
        if a_and:
            x, y = nodes[a >> 1]
            if not a & 1:
                if (b ^ 1) == x or (b ^ 1) == y:
                    stats["contradiction"] += 1
                    return AIG_FALSE
                if b == x or b == y:
                    stats["idempotence"] += 1
                    return a
            else:
                if (b ^ 1) == x or (b ^ 1) == y:
                    stats["absorption"] += 1
                    return b
                if b == x:
                    stats["substitution"] += 1
                    return self.and_gate(x, y ^ 1)
                if b == y:
                    stats["substitution"] += 1
                    return self.and_gate(y, x ^ 1)
        if b_and:
            u, v = nodes[b >> 1]
            if not b & 1:
                if (a ^ 1) == u or (a ^ 1) == v:
                    stats["contradiction"] += 1
                    return AIG_FALSE
                if a == u or a == v:
                    stats["idempotence"] += 1
                    return b
            else:
                if (a ^ 1) == u or (a ^ 1) == v:
                    stats["absorption"] += 1
                    return a
                if a == u:
                    stats["substitution"] += 1
                    return self.and_gate(u, v ^ 1)
                if a == v:
                    stats["substitution"] += 1
                    return self.and_gate(v, u ^ 1)
        if a_and and b_and:
            x, y = nodes[a >> 1]
            u, v = nodes[b >> 1]
            if not a & 1 and not b & 1:
                if (
                    (x ^ 1) == u
                    or (x ^ 1) == v
                    or (y ^ 1) == u
                    or (y ^ 1) == v
                ):
                    stats["contradiction"] += 1
                    return AIG_FALSE
                if x == u or y == u:
                    stats["shared_child"] += 1
                    return self.and_gate(a, v)
                if x == v or y == v:
                    stats["shared_child"] += 1
                    return self.and_gate(a, u)
            elif not a & 1 and b & 1:
                if (x ^ 1) == u or (y ^ 1) == u or (x ^ 1) == v or (y ^ 1) == v:
                    stats["absorption"] += 1
                    return a
                if u == x or u == y:
                    stats["substitution"] += 1
                    return self.and_gate(a, v ^ 1)
                if v == x or v == y:
                    stats["substitution"] += 1
                    return self.and_gate(a, u ^ 1)
            elif a & 1 and not b & 1:
                if (u ^ 1) == x or (v ^ 1) == x or (u ^ 1) == y or (v ^ 1) == y:
                    stats["absorption"] += 1
                    return b
                if x == u or x == v:
                    stats["substitution"] += 1
                    return self.and_gate(b, y ^ 1)
                if y == u or y == v:
                    stats["substitution"] += 1
                    return self.and_gate(b, x ^ 1)
        return None

    def or_gate(self, a: int, b: int) -> int:
        """Return a literal for ``a OR b``."""
        return self.negate(self.and_gate(self.negate(a), self.negate(b)))

    def xor_gate(self, a: int, b: int) -> int:
        """Return a literal for ``a XOR b``."""
        return self.or_gate(
            self.and_gate(a, self.negate(b)), self.and_gate(self.negate(a), b)
        )

    def mux_gate(self, select: int, if_true: int, if_false: int) -> int:
        """Return a literal for ``select ? if_true : if_false``."""
        if select == AIG_TRUE:
            return if_true
        if select == AIG_FALSE:
            return if_false
        if if_true == if_false:
            return if_true
        return self.or_gate(
            self.and_gate(select, if_true),
            self.and_gate(self.negate(select), if_false),
        )

    def and_many(self, literals: Iterable[int]) -> int:
        """AND an arbitrary collection of literals (TRUE for empty input)."""
        result = AIG_TRUE
        for literal in literals:
            result = self.and_gate(result, literal)
        return result

    def or_many(self, literals: Iterable[int]) -> int:
        """OR an arbitrary collection of literals (FALSE for empty input)."""
        result = AIG_FALSE
        for literal in literals:
            result = self.or_gate(result, literal)
        return result

    # ------------------------------------------------------------------
    # Adders / comparators on bit lists (LSB first)
    # ------------------------------------------------------------------
    def full_adder(self, a: int, b: int, carry_in: int) -> Tuple[int, int]:
        """Return ``(sum, carry_out)`` of a full adder."""
        partial = self.xor_gate(a, b)
        total = self.xor_gate(partial, carry_in)
        carry_out = self.or_gate(
            self.and_gate(a, b), self.and_gate(partial, carry_in)
        )
        return total, carry_out

    def ripple_add(
        self, a_bits: List[int], b_bits: List[int], carry_in: int = AIG_FALSE
    ) -> Tuple[List[int], int]:
        """Ripple-carry addition of equal-width bit lists (LSB first)."""
        if len(a_bits) != len(b_bits):
            raise ValueError("ripple_add operands must have equal width")
        result: List[int] = []
        carry = carry_in
        for a_bit, b_bit in zip(a_bits, b_bits):
            total, carry = self.full_adder(a_bit, b_bit, carry)
            result.append(total)
        return result, carry

    def equal(self, a_bits: List[int], b_bits: List[int]) -> int:
        """Return a literal that is true iff the bit lists are equal."""
        if len(a_bits) != len(b_bits):
            raise ValueError("equal operands must have equal width")
        return self.and_many(
            self.negate(self.xor_gate(a, b)) for a, b in zip(a_bits, b_bits)
        )

    def unsigned_less_than(self, a_bits: List[int], b_bits: List[int]) -> int:
        """Return a literal that is true iff ``a < b`` (unsigned)."""
        if len(a_bits) != len(b_bits):
            raise ValueError("comparison operands must have equal width")
        # a < b  iff  the carry out of (a + ~b + 1) is 0, i.e. borrow occurs.
        not_b = [self.negate(bit) for bit in b_bits]
        _, carry = self.ripple_add(a_bits, not_b, AIG_TRUE)
        return self.negate(carry)

    # ------------------------------------------------------------------
    # Cone extraction / statistics
    # ------------------------------------------------------------------
    def cone_of(self, roots: Iterable[int]) -> Set[int]:
        """Return the node indices in the transitive fan-in of *roots*.

        The cone contains every AND node and every primary input reachable
        from the root literals (the constant node is never included).  This
        is the cone-of-influence primitive of the formula-reduction pipeline:
        the BMC engine measures it per bound, and the Tseitin encoder only
        ever translates nodes inside it.
        """
        seen: Set[int] = set()
        stack = [literal >> 1 for literal in roots]
        nodes = self._nodes
        is_input = self._is_input
        while stack:
            node = stack.pop()
            if node == 0 or node in seen:
                continue
            seen.add(node)
            if not is_input[node]:
                left, right = nodes[node]
                stack.append(left >> 1)
                stack.append(right >> 1)
        return seen

    def cone_inputs(self, roots: Iterable[int]) -> Set[int]:
        """Return the primary-input nodes in the cone of *roots*.

        This is the *support* of the root literals; the engine uses it to
        decide which environmental assumptions are inside the cone of
        influence of a property window.
        """
        is_input = self._is_input
        return {node for node in self.cone_of(roots) if is_input[node]}

    @property
    def rewrite_stats(self) -> Dict[str, int]:
        """Per-rule counts of two-level rewrites performed so far."""
        return dict(self._rewrite_stats)

    def cone_size(self, roots: Iterable[int]) -> int:
        """Return the number of AND nodes in the cone of *roots*."""
        seen = set()
        stack = [self.lit_node(literal) for literal in roots]
        count = 0
        while stack:
            node = stack.pop()
            if node in seen or node == 0 or self._is_input[node]:
                continue
            seen.add(node)
            count += 1
            left, right = self._nodes[node]
            stack.append(self.lit_node(left))
            stack.append(self.lit_node(right))
        return count

    def __repr__(self) -> str:
        return (
            f"AIG(nodes={self.num_nodes}, inputs={self.num_inputs}, "
            f"ands={self.num_nodes - 1 - self.num_inputs})"
        )
