"""And-Inverter Graph (AIG) with structural hashing and constant folding.

The AIG is the bit-level intermediate representation between the word-level
expressions of :mod:`repro.expr.bitvec` and the CNF handed to the SAT solver.
Keeping this layer explicit gives the bounded model checker two cheap but
important optimisations:

* **constant folding** -- the QED-consistent start state of Symbolic QED fixes
  all registers and memories to zero, so the first time-frames of an unrolled
  design collapse to constants;
* **structural hashing** -- the original and duplicate halves of an EDDI-V
  transformed design share most of their logic cone, which hashing detects
  and shares.

Literals are encoded as ``2*node + sign`` where ``sign=1`` means inverted.
Node 0 is the constant false, hence literal 0 is ``False`` and literal 1 is
``True``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

AIG_FALSE = 0
AIG_TRUE = 1


class AIG:
    """A mutable And-Inverter Graph."""

    def __init__(self) -> None:
        # Node storage: for each node index >= 1, the pair of child literals.
        # Node 0 is the constant-false node and has no children.
        self._nodes: List[Tuple[int, int]] = [(0, 0)]
        self._is_input: List[bool] = [False]
        self._input_names: Dict[int, str] = {}
        self._strash: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Literal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def lit_node(literal: int) -> int:
        """Return the node index of *literal*."""
        return literal >> 1

    @staticmethod
    def lit_inverted(literal: int) -> bool:
        """Return whether *literal* is inverted."""
        return bool(literal & 1)

    @staticmethod
    def negate(literal: int) -> int:
        """Return the complement of *literal*."""
        return literal ^ 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of nodes including the constant node."""
        return len(self._nodes)

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs created so far."""
        return sum(1 for flag in self._is_input if flag)

    def add_input(self, name: str = "") -> int:
        """Create a primary input and return its (positive) literal."""
        index = len(self._nodes)
        self._nodes.append((0, 0))
        self._is_input.append(True)
        if name:
            self._input_names[index] = name
        return 2 * index

    def input_name(self, node: int) -> str:
        """Return the registered name of input *node* (empty if unnamed)."""
        return self._input_names.get(node, "")

    def is_input(self, node: int) -> bool:
        """Return whether *node* is a primary input."""
        return self._is_input[node]

    def node_children(self, node: int) -> Tuple[int, int]:
        """Return the two child literals of AND node *node*."""
        return self._nodes[node]

    def and_gate(self, a: int, b: int) -> int:
        """Return a literal for ``a AND b`` with folding and hashing."""
        # Constant folding.
        if a == AIG_FALSE or b == AIG_FALSE:
            return AIG_FALSE
        if a == AIG_TRUE:
            return b
        if b == AIG_TRUE:
            return a
        if a == b:
            return a
        if a == self.negate(b):
            return AIG_FALSE
        # Canonical ordering for hashing.
        if a > b:
            a, b = b, a
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return 2 * existing
        index = len(self._nodes)
        self._nodes.append(key)
        self._is_input.append(False)
        self._strash[key] = index
        return 2 * index

    def or_gate(self, a: int, b: int) -> int:
        """Return a literal for ``a OR b``."""
        return self.negate(self.and_gate(self.negate(a), self.negate(b)))

    def xor_gate(self, a: int, b: int) -> int:
        """Return a literal for ``a XOR b``."""
        return self.or_gate(
            self.and_gate(a, self.negate(b)), self.and_gate(self.negate(a), b)
        )

    def mux_gate(self, select: int, if_true: int, if_false: int) -> int:
        """Return a literal for ``select ? if_true : if_false``."""
        if select == AIG_TRUE:
            return if_true
        if select == AIG_FALSE:
            return if_false
        if if_true == if_false:
            return if_true
        return self.or_gate(
            self.and_gate(select, if_true),
            self.and_gate(self.negate(select), if_false),
        )

    def and_many(self, literals: Iterable[int]) -> int:
        """AND an arbitrary collection of literals (TRUE for empty input)."""
        result = AIG_TRUE
        for literal in literals:
            result = self.and_gate(result, literal)
        return result

    def or_many(self, literals: Iterable[int]) -> int:
        """OR an arbitrary collection of literals (FALSE for empty input)."""
        result = AIG_FALSE
        for literal in literals:
            result = self.or_gate(result, literal)
        return result

    # ------------------------------------------------------------------
    # Adders / comparators on bit lists (LSB first)
    # ------------------------------------------------------------------
    def full_adder(self, a: int, b: int, carry_in: int) -> Tuple[int, int]:
        """Return ``(sum, carry_out)`` of a full adder."""
        partial = self.xor_gate(a, b)
        total = self.xor_gate(partial, carry_in)
        carry_out = self.or_gate(
            self.and_gate(a, b), self.and_gate(partial, carry_in)
        )
        return total, carry_out

    def ripple_add(
        self, a_bits: List[int], b_bits: List[int], carry_in: int = AIG_FALSE
    ) -> Tuple[List[int], int]:
        """Ripple-carry addition of equal-width bit lists (LSB first)."""
        if len(a_bits) != len(b_bits):
            raise ValueError("ripple_add operands must have equal width")
        result: List[int] = []
        carry = carry_in
        for a_bit, b_bit in zip(a_bits, b_bits):
            total, carry = self.full_adder(a_bit, b_bit, carry)
            result.append(total)
        return result, carry

    def equal(self, a_bits: List[int], b_bits: List[int]) -> int:
        """Return a literal that is true iff the bit lists are equal."""
        if len(a_bits) != len(b_bits):
            raise ValueError("equal operands must have equal width")
        return self.and_many(
            self.negate(self.xor_gate(a, b)) for a, b in zip(a_bits, b_bits)
        )

    def unsigned_less_than(self, a_bits: List[int], b_bits: List[int]) -> int:
        """Return a literal that is true iff ``a < b`` (unsigned)."""
        if len(a_bits) != len(b_bits):
            raise ValueError("comparison operands must have equal width")
        # a < b  iff  the carry out of (a + ~b + 1) is 0, i.e. borrow occurs.
        not_b = [self.negate(bit) for bit in b_bits]
        _, carry = self.ripple_add(a_bits, not_b, AIG_TRUE)
        return self.negate(carry)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def cone_size(self, roots: Iterable[int]) -> int:
        """Return the number of AND nodes in the cone of *roots*."""
        seen = set()
        stack = [self.lit_node(literal) for literal in roots]
        count = 0
        while stack:
            node = stack.pop()
            if node in seen or node == 0 or self._is_input[node]:
                continue
            seen.add(node)
            count += 1
            left, right = self._nodes[node]
            stack.append(self.lit_node(left))
            stack.append(self.lit_node(right))
        return count

    def __repr__(self) -> str:
        return (
            f"AIG(nodes={self.num_nodes}, inputs={self.num_inputs}, "
            f"ands={self.num_nodes - 1 - self.num_inputs})"
        )
