"""Concrete evaluation of bit-vector expressions.

Used by the RTL simulator (:mod:`repro.rtl.simulator`) and by tests that
cross-check the bit-blaster against integer semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.expr.bitvec import (
    BV,
    BVAdd,
    BVAnd,
    BVAshr,
    BVConcat,
    BVConst,
    BVEq,
    BVExtract,
    BVIte,
    BVLshr,
    BVMul,
    BVNeg,
    BVNot,
    BVOr,
    BVReduceAnd,
    BVReduceOr,
    BVShl,
    BVSlt,
    BVSub,
    BVUlt,
    BVVar,
    BVXor,
    ExprError,
)


def _to_signed(value: int, width: int) -> int:
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def evaluate(expr: BV, env: Mapping[str, int], _cache: Dict[int, int] | None = None) -> int:
    """Evaluate *expr* with variable values from *env*.

    Variable values are masked to the variable width.  Unknown variables raise
    :class:`~repro.expr.bitvec.ExprError`.
    """
    cache: Dict[int, int] = {} if _cache is None else _cache

    def walk(node: BV) -> int:
        key = id(node)
        if key in cache:
            return cache[key]
        result = _evaluate_node(node, env, walk)
        cache[key] = result
        return result

    return walk(expr)


def _evaluate_node(
    node: BV, env: Mapping[str, int], walk: Callable[[BV], int]
) -> int:
    mask = node.mask
    if isinstance(node, BVConst):
        return node.value
    if isinstance(node, BVVar):
        if node.name not in env:
            raise ExprError(f"no value bound for variable {node.name!r}")
        return env[node.name] & mask
    if isinstance(node, BVNot):
        return (~walk(node.children[0])) & mask
    if isinstance(node, BVNeg):
        return (-walk(node.children[0])) & mask
    if isinstance(node, BVAnd):
        return walk(node.children[0]) & walk(node.children[1])
    if isinstance(node, BVOr):
        return walk(node.children[0]) | walk(node.children[1])
    if isinstance(node, BVXor):
        return walk(node.children[0]) ^ walk(node.children[1])
    if isinstance(node, BVAdd):
        return (walk(node.children[0]) + walk(node.children[1])) & mask
    if isinstance(node, BVSub):
        return (walk(node.children[0]) - walk(node.children[1])) & mask
    if isinstance(node, BVMul):
        return (walk(node.children[0]) * walk(node.children[1])) & mask
    if isinstance(node, BVShl):
        amount = walk(node.children[1])
        if amount >= node.width:
            return 0
        return (walk(node.children[0]) << amount) & mask
    if isinstance(node, BVLshr):
        amount = walk(node.children[1])
        if amount >= node.width:
            return 0
        return walk(node.children[0]) >> amount
    if isinstance(node, BVAshr):
        amount = walk(node.children[1])
        value = _to_signed(walk(node.children[0]), node.width)
        if amount >= node.width:
            amount = node.width - 1
        return (value >> amount) & mask
    if isinstance(node, BVEq):
        return int(walk(node.children[0]) == walk(node.children[1]))
    if isinstance(node, BVUlt):
        return int(walk(node.children[0]) < walk(node.children[1]))
    if isinstance(node, BVSlt):
        width = node.children[0].width
        return int(
            _to_signed(walk(node.children[0]), width)
            < _to_signed(walk(node.children[1]), width)
        )
    if isinstance(node, BVExtract):
        return (walk(node.children[0]) >> node.low) & node.mask
    if isinstance(node, BVConcat):
        result = 0
        for child in node.children:
            result = (result << child.width) | walk(child)
        return result
    if isinstance(node, BVIte):
        return walk(node.children[1]) if walk(node.children[0]) else walk(node.children[2])
    if isinstance(node, BVReduceOr):
        return int(walk(node.children[0]) != 0)
    if isinstance(node, BVReduceAnd):
        return int(walk(node.children[0]) == node.children[0].mask)
    raise ExprError(f"cannot evaluate expression node {node!r}")
