"""Bit-blasting of word-level expressions into an AIG.

The :class:`BitBlaster` maintains a single :class:`~repro.expr.aig.AIG` and a
binding from :class:`~repro.expr.bitvec.BVVar` names to lists of AIG literals
(LSB first).  The BMC unroller binds state variables of frame *k+1* to the
blasted next-state functions of frame *k*, which is how the transition
relation is composed without ever introducing intermediate CNF variables for
unchanged bits.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.expr.aig import AIG, AIG_FALSE, AIG_TRUE
from repro.expr.bitvec import (
    BV,
    BVAdd,
    BVAnd,
    BVAshr,
    BVConcat,
    BVConst,
    BVEq,
    BVExtract,
    BVIte,
    BVLshr,
    BVMul,
    BVNeg,
    BVNot,
    BVOr,
    BVReduceAnd,
    BVReduceOr,
    BVShl,
    BVSlt,
    BVSub,
    BVUlt,
    BVVar,
    BVXor,
    ExprError,
)

Bits = List[int]


class BitBlaster:
    """Translate bit-vector expressions into AIG literals."""

    def __init__(self, aig: Optional[AIG] = None) -> None:
        self.aig = aig if aig is not None else AIG()
        self._bindings: Dict[str, Bits] = {}
        self._cache: Dict[BV, Bits] = {}

    # ------------------------------------------------------------------
    # Variable binding
    # ------------------------------------------------------------------
    def bind(self, name: str, bits: Bits) -> None:
        """Bind variable *name* to an explicit list of AIG literals."""
        self._bindings[name] = list(bits)
        self._cache.clear()

    def bind_constant(self, name: str, width: int, value: int) -> None:
        """Bind variable *name* to a constant value."""
        self.bind(name, self.constant_bits(width, value))

    def fresh_input(self, name: str, width: int) -> Bits:
        """Create fresh primary inputs for *name* and bind them."""
        bits = [self.aig.add_input(f"{name}[{i}]") for i in range(width)]
        self.bind(name, bits)
        return bits

    def lookup(self, name: str) -> Bits:
        """Return the literals bound to *name*."""
        if name not in self._bindings:
            raise ExprError(f"variable {name!r} is not bound")
        return list(self._bindings[name])

    def is_bound(self, name: str) -> bool:
        """Return whether *name* has a binding."""
        return name in self._bindings

    @staticmethod
    def constant_bits(width: int, value: int) -> Bits:
        """Return constant literals for *value* at *width* bits (LSB first)."""
        return [
            AIG_TRUE if (value >> i) & 1 else AIG_FALSE for i in range(width)
        ]

    # ------------------------------------------------------------------
    # Blasting
    # ------------------------------------------------------------------
    def blast(self, expr: BV) -> Bits:
        """Return the AIG literals (LSB first) computing *expr*."""
        cached = self._cache.get(expr)
        if cached is not None:
            return list(cached)
        bits = self._blast_node(expr)
        if len(bits) != expr.width:
            raise AssertionError(
                f"internal error: blasted width {len(bits)} != {expr.width}"
            )
        self._cache[expr] = list(bits)
        return bits

    def blast_bit(self, expr: BV) -> int:
        """Blast a 1-bit expression and return its single literal."""
        if expr.width != 1:
            raise ExprError("blast_bit requires a 1-bit expression")
        return self.blast(expr)[0]

    # ------------------------------------------------------------------
    def _blast_node(self, expr: BV) -> Bits:
        aig = self.aig
        if isinstance(expr, BVConst):
            return self.constant_bits(expr.width, expr.value)
        if isinstance(expr, BVVar):
            if expr.name not in self._bindings:
                raise ExprError(
                    f"variable {expr.name!r} has no binding; call bind() or "
                    "fresh_input() before blasting"
                )
            bits = self._bindings[expr.name]
            if len(bits) != expr.width:
                raise ExprError(
                    f"variable {expr.name!r} bound to {len(bits)} bits but "
                    f"used with width {expr.width}"
                )
            return list(bits)
        if isinstance(expr, BVNot):
            return [aig.negate(bit) for bit in self.blast(expr.children[0])]
        if isinstance(expr, BVNeg):
            operand = self.blast(expr.children[0])
            inverted = [aig.negate(bit) for bit in operand]
            one = self.constant_bits(expr.width, 1)
            result, _ = aig.ripple_add(inverted, one)
            return result
        if isinstance(expr, BVAnd):
            left = self.blast(expr.children[0])
            right = self.blast(expr.children[1])
            return [aig.and_gate(a, b) for a, b in zip(left, right)]
        if isinstance(expr, BVOr):
            left = self.blast(expr.children[0])
            right = self.blast(expr.children[1])
            return [aig.or_gate(a, b) for a, b in zip(left, right)]
        if isinstance(expr, BVXor):
            left = self.blast(expr.children[0])
            right = self.blast(expr.children[1])
            return [aig.xor_gate(a, b) for a, b in zip(left, right)]
        if isinstance(expr, BVAdd):
            left = self.blast(expr.children[0])
            right = self.blast(expr.children[1])
            result, _ = aig.ripple_add(left, right)
            return result
        if isinstance(expr, BVSub):
            left = self.blast(expr.children[0])
            right = [aig.negate(bit) for bit in self.blast(expr.children[1])]
            result, _ = aig.ripple_add(left, right, AIG_TRUE)
            return result
        if isinstance(expr, BVMul):
            return self._blast_multiply(expr)
        if isinstance(expr, (BVShl, BVLshr, BVAshr)):
            return self._blast_shift(expr)
        if isinstance(expr, BVEq):
            left = self.blast(expr.children[0])
            right = self.blast(expr.children[1])
            return [aig.equal(left, right)]
        if isinstance(expr, BVUlt):
            left = self.blast(expr.children[0])
            right = self.blast(expr.children[1])
            return [aig.unsigned_less_than(left, right)]
        if isinstance(expr, BVSlt):
            left = self.blast(expr.children[0])
            right = self.blast(expr.children[1])
            # Signed comparison: flip the sign bits and compare unsigned.
            left_flipped = list(left)
            right_flipped = list(right)
            left_flipped[-1] = aig.negate(left_flipped[-1])
            right_flipped[-1] = aig.negate(right_flipped[-1])
            return [aig.unsigned_less_than(left_flipped, right_flipped)]
        if isinstance(expr, BVExtract):
            bits = self.blast(expr.children[0])
            return bits[expr.low : expr.high + 1]
        if isinstance(expr, BVConcat):
            # children are MSB-first; the result list is LSB-first.
            result: Bits = []
            for child in reversed(expr.children):
                result.extend(self.blast(child))
            return result
        if isinstance(expr, BVIte):
            select = self.blast(expr.children[0])[0]
            if_true = self.blast(expr.children[1])
            if_false = self.blast(expr.children[2])
            return [
                aig.mux_gate(select, t, f) for t, f in zip(if_true, if_false)
            ]
        if isinstance(expr, BVReduceOr):
            return [aig.or_many(self.blast(expr.children[0]))]
        if isinstance(expr, BVReduceAnd):
            return [aig.and_many(self.blast(expr.children[0]))]
        raise ExprError(f"cannot bit-blast expression node {expr!r}")

    def _blast_multiply(self, expr: BVMul) -> Bits:
        aig = self.aig
        width = expr.width
        left = self.blast(expr.children[0])
        right = self.blast(expr.children[1])
        accumulator = self.constant_bits(width, 0)
        for shift, control in enumerate(right):
            if control == AIG_FALSE:
                continue
            partial = (
                self.constant_bits(shift, 0)[:shift]
                + [aig.and_gate(control, bit) for bit in left[: width - shift]]
            )
            accumulator, _ = aig.ripple_add(accumulator, partial)
        return accumulator

    def _blast_shift(self, expr: BV) -> Bits:
        aig = self.aig
        width = expr.width
        value = self.blast(expr.children[0])
        amount_expr = expr.children[1]
        # Fast path: constant shift amount.
        if isinstance(amount_expr, BVConst):
            return self._shift_by_constant(expr, value, amount_expr.value)
        amount = self.blast(amount_expr)
        # Barrel shifter: apply conditional shifts by powers of two.
        stages = max(1, (width - 1).bit_length())
        result = list(value)
        for stage in range(stages):
            distance = 1 << stage
            if stage < len(amount):
                control = amount[stage]
            else:
                control = AIG_FALSE
            shifted = self._shift_by_constant(expr, result, distance)
            result = [
                aig.mux_gate(control, s, r) for s, r in zip(shifted, result)
            ]
        # Amount bits beyond the index range force the "overshift" result.
        overshift = aig.or_many(amount[stages:]) if len(amount) > stages else AIG_FALSE
        if overshift != AIG_FALSE:
            flushed = self._shift_by_constant(expr, value, width)
            result = [
                aig.mux_gate(overshift, f, r) for f, r in zip(flushed, result)
            ]
        return result

    def _shift_by_constant(self, expr: BV, value: Bits, amount: int) -> Bits:
        width = len(value)
        aig = self.aig
        if isinstance(expr, BVShl):
            fill = [AIG_FALSE] * min(amount, width)
            return (fill + value)[:width]
        if isinstance(expr, BVLshr):
            kept = value[amount:] if amount < width else []
            return kept + [AIG_FALSE] * (width - len(kept))
        if isinstance(expr, BVAshr):
            sign = value[-1]
            kept = value[amount:] if amount < width else []
            return kept + [sign] * (width - len(kept))
        raise ExprError(f"not a shift expression: {expr!r}")
