"""Immutable bit-vector expression nodes.

Expressions are built with ordinary Python operators on :class:`BV` objects::

    a = BVVar("a", 8)
    b = BVVar("b", 8)
    s = (a + b).eq(BVConst(8, 0))

Widths are checked eagerly: mixing operands of different widths raises
:class:`ExprError` instead of silently truncating, which is the class of
mistake that costs days when modelling RTL.

Every node is hashable and structurally comparable so downstream passes
(bit-blasting, unrolling) can memoise on node identity.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union


class ExprError(ValueError):
    """Raised on malformed expression construction (width mismatch etc.)."""


IntLike = Union[int, "BV"]


class BV:
    """Base class for bit-vector expressions.

    Subclasses define ``op`` (a short mnemonic), ``width`` and ``children``.
    Instances are immutable; all mutation produces new nodes.
    """

    __slots__ = ("width", "children", "_hash")

    op: str = "?"

    def __init__(self, width: int, children: Tuple["BV", ...]) -> None:
        if width <= 0:
            raise ExprError(f"bit-vector width must be positive, got {width}")
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "children", children)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("BV nodes are immutable")

    # -- structural identity -------------------------------------------------
    def _key(self) -> Tuple[object, ...]:
        return (self.op, self.width, self.children)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, BV):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self._key())
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- helpers --------------------------------------------------------------
    def _coerce(self, other: IntLike) -> "BV":
        if isinstance(other, BV):
            if other.width != self.width:
                raise ExprError(
                    f"width mismatch: {self.width} vs {other.width} "
                    f"({self!r} vs {other!r})"
                )
            return other
        if isinstance(other, int):
            return BVConst(self.width, other)
        raise ExprError(f"cannot use {other!r} as a bit-vector operand")

    @property
    def mask(self) -> int:
        """All-ones value of this expression's width."""
        return (1 << self.width) - 1

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other: IntLike) -> "BV":
        return BVAdd(self, self._coerce(other))

    def __radd__(self, other: IntLike) -> "BV":
        return self._coerce(other).__add__(self)

    def __sub__(self, other: IntLike) -> "BV":
        return BVSub(self, self._coerce(other))

    def __rsub__(self, other: IntLike) -> "BV":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: IntLike) -> "BV":
        return BVMul(self, self._coerce(other))

    def __neg__(self) -> "BV":
        return BVNeg(self)

    # -- bitwise --------------------------------------------------------------
    def __and__(self, other: IntLike) -> "BV":
        return BVAnd(self, self._coerce(other))

    def __rand__(self, other: IntLike) -> "BV":
        return self.__and__(other)

    def __or__(self, other: IntLike) -> "BV":
        return BVOr(self, self._coerce(other))

    def __ror__(self, other: IntLike) -> "BV":
        return self.__or__(other)

    def __xor__(self, other: IntLike) -> "BV":
        return BVXor(self, self._coerce(other))

    def __rxor__(self, other: IntLike) -> "BV":
        return self.__xor__(other)

    def __invert__(self) -> "BV":
        return BVNot(self)

    # -- shifts ---------------------------------------------------------------
    def __lshift__(self, amount: IntLike) -> "BV":
        return BVShl(self, self._coerce_shift(amount))

    def __rshift__(self, amount: IntLike) -> "BV":
        return BVLshr(self, self._coerce_shift(amount))

    def arith_shift_right(self, amount: IntLike) -> "BV":
        """Arithmetic (sign-preserving) right shift."""
        return BVAshr(self, self._coerce_shift(amount))

    def _coerce_shift(self, amount: IntLike) -> "BV":
        if isinstance(amount, int):
            return BVConst(self.width, amount % (1 << self.width))
        if isinstance(amount, BV):
            return amount
        raise ExprError(f"cannot use {amount!r} as a shift amount")

    # -- comparisons (return 1-bit BV) ----------------------------------------
    def eq(self, other: IntLike) -> "BV":
        """Equality comparison (returns a 1-bit expression)."""
        return BVEq(self, self._coerce(other))

    def ne(self, other: IntLike) -> "BV":
        """Inequality comparison (returns a 1-bit expression)."""
        return BVNot(BVEq(self, self._coerce(other)))

    def ult(self, other: IntLike) -> "BV":
        """Unsigned less-than."""
        return BVUlt(self, self._coerce(other))

    def ule(self, other: IntLike) -> "BV":
        """Unsigned less-than-or-equal."""
        return BVNot(BVUlt(self._coerce(other), self))

    def ugt(self, other: IntLike) -> "BV":
        """Unsigned greater-than."""
        return BVUlt(self._coerce(other), self)

    def uge(self, other: IntLike) -> "BV":
        """Unsigned greater-than-or-equal."""
        return BVNot(BVUlt(self, self._coerce(other)))

    def slt(self, other: IntLike) -> "BV":
        """Signed less-than."""
        return BVSlt(self, self._coerce(other))

    # -- slicing --------------------------------------------------------------
    def __getitem__(self, index: Union[int, slice]) -> "BV":
        if isinstance(index, int):
            if index < 0:
                index += self.width
            if not 0 <= index < self.width:
                raise ExprError(
                    f"bit index {index} out of range for width {self.width}"
                )
            return BVExtract(self, index, index)
        if isinstance(index, slice):
            if index.step not in (None, 1):
                raise ExprError("bit slices must have step 1")
            low = 0 if index.start is None else index.start
            high = self.width - 1 if index.stop is None else index.stop - 1
            if low < 0:
                low += self.width
            if high < 0:
                high += self.width
            if not (0 <= low <= high < self.width):
                raise ExprError(
                    f"slice [{low}:{high}] out of range for width {self.width}"
                )
            return BVExtract(self, high, low)
        raise ExprError(f"invalid bit index {index!r}")

    def bit(self, index: int) -> "BV":
        """Return bit *index* (LSB = 0) as a 1-bit expression."""
        return self[index]

    def bool_not(self) -> "BV":
        """Logical negation of a 1-bit expression."""
        if self.width != 1:
            raise ExprError("bool_not requires a 1-bit expression")
        return BVNot(self)

    def implies(self, other: "BV") -> "BV":
        """Logical implication between 1-bit expressions."""
        if self.width != 1 or other.width != 1:
            raise ExprError("implies requires 1-bit expressions")
        return BVOr(BVNot(self), other)

    # -- misc -----------------------------------------------------------------
    def zext(self, width: int) -> "BV":
        """Zero-extend to *width* bits."""
        return zero_extend(self, width)

    def sext(self, width: int) -> "BV":
        """Sign-extend to *width* bits."""
        return sign_extend(self, width)

    def __repr__(self) -> str:
        kids = ", ".join(repr(child) for child in self.children)
        return f"{self.op}[{self.width}]({kids})"


class BVConst(BV):
    """A constant bit-vector value."""

    __slots__ = ("value",)
    op = "const"

    def __init__(self, width: int, value: int) -> None:
        super().__init__(width, ())
        object.__setattr__(self, "value", value & ((1 << width) - 1))

    def _key(self) -> Tuple[object, ...]:
        return (self.op, self.width, self.value)

    def __repr__(self) -> str:
        return f"BVConst({self.width}, {self.value})"

    @property
    def signed_value(self) -> int:
        """Two's-complement interpretation of the constant."""
        if self.value & (1 << (self.width - 1)):
            return self.value - (1 << self.width)
        return self.value


class BVVar(BV):
    """A free bit-vector variable (a symbolic input or state element)."""

    __slots__ = ("name",)
    op = "var"

    def __init__(self, name: str, width: int) -> None:
        super().__init__(width, ())
        object.__setattr__(self, "name", name)

    def _key(self) -> Tuple[object, ...]:
        return (self.op, self.width, self.name)

    def __repr__(self) -> str:
        return f"BVVar({self.name!r}, {self.width})"


class _Binary(BV):
    """Helper base class for binary operators with equal operand widths."""

    __slots__ = ()

    def __init__(self, left: BV, right: BV) -> None:
        if left.width != right.width:
            raise ExprError(
                f"{type(self).__name__}: width mismatch {left.width} vs {right.width}"
            )
        super().__init__(left.width, (left, right))


class _Compare(BV):
    """Helper base for comparisons: operands share a width, result is 1 bit."""

    __slots__ = ()

    def __init__(self, left: BV, right: BV) -> None:
        if left.width != right.width:
            raise ExprError(
                f"{type(self).__name__}: width mismatch {left.width} vs {right.width}"
            )
        super().__init__(1, (left, right))


class BVNot(BV):
    """Bitwise complement."""

    __slots__ = ()
    op = "not"

    def __init__(self, operand: BV) -> None:
        super().__init__(operand.width, (operand,))


class BVNeg(BV):
    """Two's-complement negation."""

    __slots__ = ()
    op = "neg"

    def __init__(self, operand: BV) -> None:
        super().__init__(operand.width, (operand,))


class BVAnd(_Binary):
    """Bitwise AND."""

    __slots__ = ()
    op = "and"


class BVOr(_Binary):
    """Bitwise OR."""

    __slots__ = ()
    op = "or"


class BVXor(_Binary):
    """Bitwise XOR."""

    __slots__ = ()
    op = "xor"


class BVAdd(_Binary):
    """Modular addition."""

    __slots__ = ()
    op = "add"


class BVSub(_Binary):
    """Modular subtraction."""

    __slots__ = ()
    op = "sub"


class BVMul(_Binary):
    """Modular multiplication."""

    __slots__ = ()
    op = "mul"


class BVShl(BV):
    """Logical shift left (shift amount may have any width)."""

    __slots__ = ()
    op = "shl"

    def __init__(self, value: BV, amount: BV) -> None:
        super().__init__(value.width, (value, amount))


class BVLshr(BV):
    """Logical shift right."""

    __slots__ = ()
    op = "lshr"

    def __init__(self, value: BV, amount: BV) -> None:
        super().__init__(value.width, (value, amount))


class BVAshr(BV):
    """Arithmetic shift right."""

    __slots__ = ()
    op = "ashr"

    def __init__(self, value: BV, amount: BV) -> None:
        super().__init__(value.width, (value, amount))


class BVEq(_Compare):
    """Equality (1-bit result)."""

    __slots__ = ()
    op = "eq"


class BVUlt(_Compare):
    """Unsigned less-than (1-bit result)."""

    __slots__ = ()
    op = "ult"


class BVSlt(_Compare):
    """Signed less-than (1-bit result)."""

    __slots__ = ()
    op = "slt"


class BVExtract(BV):
    """Bit-field extraction ``operand[high:low]`` (inclusive bounds)."""

    __slots__ = ("high", "low")
    op = "extract"

    def __init__(self, operand: BV, high: int, low: int) -> None:
        if not (0 <= low <= high < operand.width):
            raise ExprError(
                f"extract [{high}:{low}] out of range for width {operand.width}"
            )
        super().__init__(high - low + 1, (operand,))
        object.__setattr__(self, "high", high)
        object.__setattr__(self, "low", low)

    def _key(self) -> Tuple[object, ...]:
        return (self.op, self.width, self.children, self.high, self.low)


class BVConcat(BV):
    """Concatenation; the first child is the most-significant part."""

    __slots__ = ()
    op = "concat"

    def __init__(self, parts: Sequence[BV]) -> None:
        if not parts:
            raise ExprError("concat requires at least one part")
        super().__init__(sum(part.width for part in parts), tuple(parts))


class BVIte(BV):
    """If-then-else multiplexer selected by a 1-bit condition."""

    __slots__ = ()
    op = "ite"

    def __init__(self, condition: BV, if_true: BV, if_false: BV) -> None:
        if condition.width != 1:
            raise ExprError("ite condition must be 1 bit wide")
        if if_true.width != if_false.width:
            raise ExprError(
                f"ite branches differ in width: {if_true.width} vs {if_false.width}"
            )
        super().__init__(if_true.width, (condition, if_true, if_false))


class BVReduceOr(BV):
    """OR-reduction of all bits (1-bit result)."""

    __slots__ = ()
    op = "redor"

    def __init__(self, operand: BV) -> None:
        super().__init__(1, (operand,))


class BVReduceAnd(BV):
    """AND-reduction of all bits (1-bit result)."""

    __slots__ = ()
    op = "redand"

    def __init__(self, operand: BV) -> None:
        super().__init__(1, (operand,))


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------
def concat(*parts: BV) -> BV:
    """Concatenate *parts*, most-significant first."""
    if len(parts) == 1:
        return parts[0]
    return BVConcat(parts)


def mux(condition: BV, if_true: IntLike, if_false: IntLike) -> BV:
    """Two-way multiplexer: ``condition ? if_true : if_false``."""
    if isinstance(if_true, int) and isinstance(if_false, int):
        raise ExprError("at least one mux branch must be a BV to infer width")
    if isinstance(if_true, int):
        assert isinstance(if_false, BV)
        if_true = BVConst(if_false.width, if_true)
    if isinstance(if_false, int):
        assert isinstance(if_true, BV)
        if_false = BVConst(if_true.width, if_false)
    return BVIte(condition, if_true, if_false)


# ``cond`` reads better when the branches are themselves conditions.
cond = mux


def zero_extend(value: BV, width: int) -> BV:
    """Zero-extend *value* to *width* bits (no-op when already that wide)."""
    if width < value.width:
        raise ExprError(f"cannot zero-extend width {value.width} to {width}")
    if width == value.width:
        return value
    return BVConcat((BVConst(width - value.width, 0), value))


def sign_extend(value: BV, width: int) -> BV:
    """Sign-extend *value* to *width* bits."""
    if width < value.width:
        raise ExprError(f"cannot sign-extend width {value.width} to {width}")
    if width == value.width:
        return value
    sign = value[value.width - 1]
    extension = mux(sign, BVConst(width - value.width, (1 << (width - value.width)) - 1), BVConst(width - value.width, 0))
    return BVConcat((extension, value))


def reduce_or(value: BV) -> BV:
    """Return 1 iff any bit of *value* is 1."""
    return BVReduceOr(value)


def reduce_and(value: BV) -> BV:
    """Return 1 iff every bit of *value* is 1."""
    return BVReduceAnd(value)


def all_of(conditions: Iterable[BV]) -> BV:
    """AND together 1-bit *conditions* (returns constant 1 for empty input)."""
    result: BV = BVConst(1, 1)
    for condition in conditions:
        if condition.width != 1:
            raise ExprError("all_of requires 1-bit conditions")
        result = BVAnd(result, condition)
    return result


def any_of(conditions: Iterable[BV]) -> BV:
    """OR together 1-bit *conditions* (returns constant 0 for empty input)."""
    result: BV = BVConst(1, 0)
    for condition in conditions:
        if condition.width != 1:
            raise ExprError("any_of requires 1-bit conditions")
        result = BVOr(result, condition)
    return result
