"""Word-level symbolic expression layer.

This package is the "front end" of the bounded model checker: RTL designs
written with :mod:`repro.rtl` elaborate into expressions over bit-vectors, and
the BMC engine in :mod:`repro.bmc` turns unrolled expressions into CNF through
this package.

Modules
-------
* :mod:`repro.expr.bitvec` -- immutable bit-vector expression nodes with
  operator overloading and width checking.
* :mod:`repro.expr.eval` -- concrete (integer) evaluation of expressions.
* :mod:`repro.expr.aig` -- And-Inverter Graph with structural hashing and
  constant folding.
* :mod:`repro.expr.bitblast` -- expression to AIG translation.
* :mod:`repro.expr.cnfgen` -- Tseitin conversion of AIG cones into CNF.
"""

from repro.expr.bitvec import (
    BV,
    BVConst,
    BVVar,
    ExprError,
    concat,
    cond,
    mux,
    reduce_and,
    reduce_or,
    sign_extend,
    zero_extend,
)
from repro.expr.eval import evaluate
from repro.expr.aig import AIG, AIG_FALSE, AIG_TRUE
from repro.expr.bitblast import BitBlaster
from repro.expr.cnfgen import CNFBuilder

__all__ = [
    "BV",
    "BVConst",
    "BVVar",
    "ExprError",
    "concat",
    "cond",
    "mux",
    "reduce_and",
    "reduce_or",
    "sign_extend",
    "zero_extend",
    "evaluate",
    "AIG",
    "AIG_TRUE",
    "AIG_FALSE",
    "BitBlaster",
    "CNFBuilder",
]
