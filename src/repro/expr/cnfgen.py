"""Tseitin conversion of AIG cones into CNF.

Only the cone of influence of the requested literals is translated; constant
and input nodes never allocate auxiliary variables unless referenced.  The
builder keeps the node-to-variable map so several queries (e.g. successive BMC
bounds) can share one CNF.

The builder also cooperates with the CNF preprocessor
(:mod:`repro.sat.preprocess`): auxiliary variables eliminated by bounded
variable elimination are registered via :meth:`CNFBuilder.mark_eliminated`,
and if a *later* cone re-references such a node (structural hashing shares
nodes freely across time frames), the builder transparently re-encodes its
Tseitin definition.  Re-adding the full definition of an eliminated Tseitin
variable is sound: the definition uniquely determines the variable, so the
value the solver picks coincides with the one model reconstruction would
have chosen.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.expr.aig import AIG, AIG_FALSE, AIG_TRUE
from repro.sat.cnf import CNF


class CNFBuilder:
    """Incrementally translate AIG literals into CNF literals.

    The builder is designed to stay alive across successive queries over a
    growing AIG (e.g. the per-bound unrollings of the BMC engine): every call
    encodes only the cone that has not been translated yet, on top of the
    existing node-to-variable map.
    """

    def __init__(self, aig: AIG, cnf: Optional[CNF] = None) -> None:
        self.aig = aig
        self.cnf = cnf if cnf is not None else CNF()
        # Map AIG node index -> CNF variable.
        self._node_var: Dict[int, int] = {}
        # A variable constrained to be true, used to express constants.
        self._true_var: Optional[int] = None
        #: CNF variables bound to primary inputs (frame inputs, symbolic
        #: initial state).  The preprocessor must never eliminate them --
        #: counterexample extraction reads the model through these.
        self._input_vars: Set[int] = set()
        #: Variables whose defining clauses were removed by preprocessing.
        self._eliminated_vars: Set[int] = set()
        #: Previously eliminated variables re-encoded on later reference;
        #: model reconstruction must leave them to the solver.
        self._restored_vars: Set[int] = set()

    # ------------------------------------------------------------------
    def _constant_true_var(self) -> int:
        if self._true_var is None:
            self._true_var = self.cnf.new_var()
            self.cnf.add_unit(self._true_var)
        return self._true_var

    def node_var(self, node: int) -> Optional[int]:
        """The CNF variable already allocated for AIG node *node*, if any.

        Unlike :meth:`node_variable` this never allocates; it is the public
        read-only view clients (e.g. counterexample extraction) should use
        instead of reaching into the internal map.
        """
        return self._node_var.get(node)

    def node_variable(self, node: int) -> int:
        """Return (allocating if needed) the CNF variable for AIG node *node*."""
        if node == 0:
            # Constant-false node: represented by the negation of the true var.
            return self._constant_true_var()
        existing = self._node_var.get(node)
        if existing is not None:
            if existing in self._eliminated_vars:
                self._restore(node)
            return existing
        variable = self.cnf.new_var()
        self._node_var[node] = variable
        if self.aig.is_input(node):
            self._input_vars.add(variable)
        else:
            self._encode_and(node, variable)
        return variable

    def literal(self, aig_literal: int) -> int:
        """Return the CNF literal corresponding to *aig_literal*."""
        if aig_literal == AIG_TRUE:
            return self._constant_true_var()
        if aig_literal == AIG_FALSE:
            return -self._constant_true_var()
        node = self.aig.lit_node(aig_literal)
        variable = self.node_variable(node)
        return -variable if self.aig.lit_inverted(aig_literal) else variable

    def literals(self, aig_literals: Iterable[int]) -> List[int]:
        """Translate several AIG literals at once."""
        return [self.literal(lit) for lit in aig_literals]

    # ------------------------------------------------------------------
    def _encode_and(self, node: int, variable: int) -> None:
        """Add the Tseitin clauses for AND node *node* bound to *variable*."""
        left_lit, right_lit = self.aig.node_children(node)
        # The children are encoded recursively; iterative translation avoids
        # recursion limits on deep cones.
        stack = [node]
        pending: List[int] = []
        while stack:
            current = stack.pop()
            if current == 0 or self.aig.is_input(current):
                continue
            left, right = self.aig.node_children(current)
            for child_lit in (left, right):
                child_node = self.aig.lit_node(child_lit)
                if child_node not in self._node_var and child_node != 0 and not self.aig.is_input(child_node):
                    # Allocate now, encode later (post-order via pending).
                    self._node_var[child_node] = self.cnf.new_var()
                    stack.append(child_node)
            pending.append(current)
        # Encode in reverse discovery order so children exist before parents;
        # the clause set is order-independent, this is just bookkeeping.
        for current in pending:
            if current == node:
                out_var = variable
            else:
                out_var = self._node_var[current]
            left, right = self.aig.node_children(current)
            a = self._child_literal(left)
            b = self._child_literal(right)
            # out <-> a & b
            self.cnf.add_clause([-out_var, a])
            self.cnf.add_clause([-out_var, b])
            self.cnf.add_clause([out_var, -a, -b])

    def _child_literal(self, aig_literal: int) -> int:
        node = self.aig.lit_node(aig_literal)
        if node == 0:
            base = self._constant_true_var()
            variable = -base  # constant false
        else:
            if node not in self._node_var:
                variable = self.cnf.new_var()
                self._node_var[node] = variable
                if self.aig.is_input(node):
                    self._input_vars.add(variable)
                else:
                    # Should not happen: parents are encoded after children.
                    self._encode_and(node, variable)
            variable = self._node_var[node]
            if variable in self._eliminated_vars:
                self._restore(node)
        return -variable if self.aig.lit_inverted(aig_literal) else variable

    # ------------------------------------------------------------------
    # Preprocessing cooperation
    # ------------------------------------------------------------------
    @property
    def input_vars(self) -> Set[int]:
        """CNF variables of primary inputs allocated so far (copy)."""
        return set(self._input_vars)

    @property
    def constant_var(self) -> Optional[int]:
        """The always-true constant variable, if allocated."""
        return self._true_var

    @property
    def restored_vars(self) -> Set[int]:
        """Eliminated variables later re-encoded (solver-assigned; copy)."""
        return set(self._restored_vars)

    @property
    def eliminated_vars(self) -> Set[int]:
        """Variables currently missing their defining clauses (copy).

        Such a variable occurs in no clause until a later cone reference
        restores it; constraining it (e.g. as a cube split variable) is a
        no-op, so clients selecting variables should skip these.
        """
        return set(self._eliminated_vars)

    def mark_eliminated(self, variables: Iterable[int]) -> None:
        """Record variables whose defining clauses preprocessing removed.

        If a later cone references the AIG node of such a variable, the
        builder re-encodes its Tseitin definition (see :meth:`_restore`), so
        incremental encoding stays sound under bounded variable elimination.
        """
        self._eliminated_vars.update(variables)

    def _restore(self, node: int) -> None:
        """Re-encode the definitions of *node* and any eliminated children."""
        to_restore: List[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            variable = self._node_var[current]
            if variable not in self._eliminated_vars:
                continue
            if self.aig.is_input(current):
                # Inputs have no defining clauses; nothing to re-add.
                self._eliminated_vars.discard(variable)
                self._restored_vars.add(variable)
                continue
            self._eliminated_vars.discard(variable)
            self._restored_vars.add(variable)
            to_restore.append(current)
            for child_literal in self.aig.node_children(current):
                child = self.aig.lit_node(child_literal)
                if child != 0 and not self.aig.is_input(child):
                    child_var = self._node_var.get(child)
                    if child_var is not None and child_var in self._eliminated_vars:
                        stack.append(child)
        for current in to_restore:
            variable = self._node_var[current]
            left, right = self.aig.node_children(current)
            a = self._child_literal(left)
            b = self._child_literal(right)
            self.cnf.add_clause([-variable, a])
            self.cnf.add_clause([-variable, b])
            self.cnf.add_clause([variable, -a, -b])

    # ------------------------------------------------------------------
    def assert_literal(self, aig_literal: int) -> None:
        """Add a unit clause asserting *aig_literal* is true."""
        self.cnf.add_unit(self.literal(aig_literal))

    def new_activation_var(self) -> int:
        """Allocate a fresh CNF variable to be used as an activation literal.

        The variable is unconstrained: assert it via solver assumptions to
        enable the clauses guarded by it, or add its negation as a unit to
        retire them permanently.
        """
        return self.cnf.new_var()

    def assert_literal_if(self, aig_literal: int, activation_var: int) -> None:
        """Assert *aig_literal* guarded by *activation_var*.

        Adds the clause ``(-activation_var OR literal)``, so the constraint
        is active only while the activation variable is assumed true.  This
        is how the BMC engine retracts per-bound constraints without
        discarding the solver.
        """
        self.cnf.add_clause([-activation_var, self.literal(aig_literal)])

    def assert_all(self, aig_literals: Iterable[int]) -> None:
        """Assert every literal in *aig_literals*."""
        for literal in aig_literals:
            self.assert_literal(literal)
