"""EDDI-V transformation rules.

EDDI-V (Error Detection using Duplicated Instructions for Validation) splits
the architectural register file and the data memory into two halves and pairs
register ``Ra`` with ``Ra+N/2`` and memory word ``m`` with ``m+M/2``.  The QED
module applies the transformation *on the fly* to whatever instruction stream
the BMC tool explores: an original instruction references only the lower
halves; its duplicate is the same instruction with every register specifier
moved to the upper half and (for absolute-addressed memory operations) the
address moved to the upper memory half.

This module holds the pieces of that transformation that are shared between
the QED module RTL, the harness assumptions and the counterexample decoder:

* the register / memory pairing (:class:`EDDIVMapping`),
* the per-mode sets of instructions allowed inside QED sequences
  (:func:`allowed_instructions`), and
* the pure-Python word-level duplicate transformation
  (:meth:`EDDIVMapping.duplicate_word`) used to decode counterexamples and to
  cross-check the RTL transformation in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Tuple

from repro.isa.arch import ArchParams
from repro.isa.encoding import decode, encode_fields, field_layout
from repro.isa.instructions import (
    Instruction,
    InstructionClass,
    instruction_by_name,
    instructions_for_design,
)


class QEDMode(Enum):
    """Which Symbolic QED configuration is being run."""

    EDDIV = "eddiv"
    EDDIV_CF = "eddiv_cf"
    EDDIV_MEM = "eddiv_mem"


@dataclass(frozen=True)
class EDDIVMapping:
    """Register and memory pairing used by EDDI-V for one architecture."""

    arch: ArchParams

    # ------------------------------------------------------------------
    @property
    def half_regs(self) -> int:
        """Number of registers per half."""
        return self.arch.half_regs

    @property
    def half_dmem(self) -> int:
        """Number of data-memory words per half."""
        return self.arch.half_dmem

    def duplicate_register(self, index: int) -> int:
        """The duplicate register paired with original register *index*."""
        if not 0 <= index < self.half_regs:
            raise ValueError(
                f"register R{index} is not in the original half "
                f"(0..{self.half_regs - 1})"
            )
        return index + self.half_regs

    def original_register(self, index: int) -> int:
        """The original register paired with duplicate register *index*."""
        if not self.half_regs <= index < self.arch.num_regs:
            raise ValueError(
                f"register R{index} is not in the duplicate half "
                f"({self.half_regs}..{self.arch.num_regs - 1})"
            )
        return index - self.half_regs

    def register_pairs(self) -> List[Tuple[int, int]]:
        """All (original, duplicate) register pairs."""
        return [(a, a + self.half_regs) for a in range(self.half_regs)]

    def memory_pairs(self) -> List[Tuple[int, int]]:
        """All (original, duplicate) data-memory word pairs."""
        return [(m, m + self.half_dmem) for m in range(self.half_dmem)]

    def duplicate_address(self, address: int) -> int:
        """The duplicate memory address paired with original *address*."""
        if not 0 <= address < self.half_dmem:
            raise ValueError(
                f"address {address} is not in the original memory half"
            )
        return address + self.half_dmem

    # ------------------------------------------------------------------
    def duplicate_word(self, word: int) -> int:
        """Transform an original instruction word into its duplicate.

        This is the reference (software) version of the transformation that
        the QED module performs in RTL: register specifiers move to the upper
        half and LDA/STA addresses move to the upper memory half.
        """
        enc = decode(self.arch, word)
        rd = enc.rd + self.half_regs if enc.rd < self.half_regs else enc.rd
        rs1 = enc.rs1 + self.half_regs if enc.rs1 < self.half_regs else enc.rs1
        rs2 = enc.rs2 + self.half_regs if enc.rs2 < self.half_regs else enc.rs2
        imm = enc.imm
        if enc.instruction is not None and enc.instruction.name in ("LDA", "STA"):
            if imm < self.half_dmem:
                imm = imm + self.half_dmem
        return encode_fields(
            self.arch, enc.opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm
        )

    def is_original_word(self, word: int) -> bool:
        """Whether an instruction word only references the original halves."""
        enc = decode(self.arch, word)
        instr = enc.instruction
        if instr is None:
            return False
        fields = []
        if instr.writes_rd and instr.fixed_rd is None:
            fields.append(enc.rd)
        if instr.reads_rs1:
            fields.append(enc.rs1)
        if instr.reads_rs2:
            fields.append(enc.rs2)
        if any(f >= self.half_regs for f in fields):
            return False
        if instr.name in ("LDA", "STA") and enc.imm >= self.half_dmem:
            return False
        return True


#: Instruction classes excluded from every QED sequence (they either stop the
#: core, have no architectural effect worth duplicating, or cannot be made
#: QED-consistent on this core).
_ALWAYS_EXCLUDED = {"HALT", "JAL"}

#: Memory instructions with register-indirect addressing cannot be offset by
#: the QED module (the address lives in a register whose value is identical in
#: both halves), so they are excluded from the register-halving modes; the
#: absolute-addressed LDA/STA are kept and their addresses are transformed.
_REGISTER_INDIRECT_MEMORY = {"LD", "ST", "LDO", "STO"}


def allowed_instructions(
    arch: ArchParams, mode: QEDMode, *, with_extension: bool
) -> List[Instruction]:
    """The instructions the BMC tool may inject in QED sequences for *mode*.

    * ``EDDIV`` -- data instructions only (no control flow), excluding
      instructions with a fixed destination register (they cannot be paired
      under register halving) and register-indirect memory operations.
    * ``EDDIV_CF`` -- the ``EDDIV`` set plus control-flow instructions
      (conditional branches, JMP and JR).
    * ``EDDIV_MEM`` -- data instructions including the fixed-destination
      ``LDIL``; memory operations are excluded because the module manages the
      spill/restore traffic itself.
    """
    base = instructions_for_design(with_extension=with_extension)
    selected: List[Instruction] = []
    for instr in base:
        if instr.name in _ALWAYS_EXCLUDED:
            continue
        if mode in (QEDMode.EDDIV, QEDMode.EDDIV_CF):
            if instr.fixed_rd is not None:
                continue
            if instr.name in _REGISTER_INDIRECT_MEMORY:
                continue
            if instr.is_control_flow and mode is QEDMode.EDDIV:
                continue
            selected.append(instr)
        else:  # EDDIV_MEM
            if instr.is_control_flow or instr.is_memory:
                continue
            selected.append(instr)
    return selected


def flag_using_control_flow(with_extension: bool) -> List[Instruction]:
    """Control-flow instructions whose decision depends on the flags."""
    return [
        instr
        for instr in instructions_for_design(with_extension=with_extension)
        if instr.is_control_flow and instr.uses_flags
    ]


def arithmetic_flag_setters(with_extension: bool) -> List[Instruction]:
    """Instructions that deterministically set Z, N and C."""
    from repro.isa.instructions import FlagsUpdate

    return [
        instr
        for instr in instructions_for_design(with_extension=with_extension)
        if instr.flags in (FlagsUpdate.ARITH_ADD, FlagsUpdate.ARITH_SUB)
    ]


def nop_encoding(arch: ArchParams) -> int:
    """The canonical NOP word used by the QED modules for idle cycles."""
    return encode_fields(arch, instruction_by_name("NOP").opcode)


def imm_field_slice(arch: ArchParams) -> Tuple[int, int]:
    """(low, width) of the immediate field in the instruction word."""
    return field_layout(arch)["imm"]
