"""QED-consistent start states and the QED consistency property.

A *QED-consistent* architectural state is one in which every original /
duplicate register pair and memory pair holds equal values and no instruction
is left in flight.  The case study starts every BMC run from the core's
operating mode with the pipeline empty and all registers and memory locations
equal to zero -- which is exactly the reset state of our cores, so the
default (concrete reset) initial state is already QED-consistent.

The property checked by the BMC tool is the one from the paper's appendix::

    qed_ready  ->  AND_{a in 0..n/2-1}  (Ra == Ra')

extended with the corresponding data-memory pairs.  ``qed_ready`` asserts
once the duplicate sub-sequence has fully executed and the pipeline has
drained.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.bmc.property import SafetyProperty
from repro.expr.bitvec import BV, BVConst, BVVar
from repro.isa.arch import ArchParams
from repro.qed.qed_mem import PHASE_DONE, _PHASE_WIDTH, QEDMemHandles
from repro.qed.qed_module import QEDModuleHandles
from repro.uarch.core import dmem_word_name, register_word_name


def qed_consistent_start_state(
    *, symbolic: bool = False, arch: Optional[ArchParams] = None
) -> Dict[str, object]:
    """Initial-state overrides for a QED run.

    The concrete reset state (everything zero) is QED-consistent, so the
    default run needs no overrides.  With ``symbolic=True`` the architectural
    registers and data memory start symbolic-but-pairwise-equal would be
    required; that extension ("Symbolic QED with symbolic starting state",
    [Fadiheh 18, Ganesan 18]) is listed by the paper as future work and is
    not exercised by the case-study harness, so requesting it raises
    ``NotImplementedError`` to make the scope explicit.
    """
    if symbolic:
        raise NotImplementedError(
            "symbolic QED-consistent start states are future work in the "
            "paper and are not part of the case-study reproduction"
        )
    return {}


def _register_pairs_equal(arch: ArchParams) -> BV:
    condition: BV = BVConst(1, 1)
    for original in range(arch.half_regs):
        duplicate = original + arch.half_regs
        condition = condition & BVVar(register_word_name(original), arch.xlen).eq(
            BVVar(register_word_name(duplicate), arch.xlen)
        )
    return condition


def _memory_pairs_equal(arch: ArchParams) -> BV:
    condition: BV = BVConst(1, 1)
    for original in range(arch.half_dmem):
        duplicate = original + arch.half_dmem
        condition = condition & BVVar(dmem_word_name(original), arch.xlen).eq(
            BVVar(dmem_word_name(duplicate), arch.xlen)
        )
    return condition


def qed_consistency_property(
    arch: ArchParams,
    qed: QEDModuleHandles,
    *,
    include_memory: bool = True,
    name: str = "qed_consistency",
) -> SafetyProperty:
    """The EDDI-V consistency property for a register-halving QED run."""
    count_width = max(2, (qed.queue_depth + 1).bit_length())
    queue_empty = BVVar(qed.count_name, count_width).eq(BVConst(count_width, 0))
    pairs_done = BVVar(qed.pairs_done_name, 1)
    pipeline_empty = ~BVVar("ex_valid", 1)
    qed_ready = queue_empty & pairs_done & pipeline_empty

    consistent = _register_pairs_equal(arch)
    if include_memory:
        consistent = consistent & _memory_pairs_equal(arch)

    return SafetyProperty(
        name=name,
        expr=qed_ready.implies(consistent),
        description=(
            "once the duplicate sub-sequence has completed and the pipeline "
            "has drained, every original/duplicate register and memory pair "
            "must hold equal values"
        ),
        start_cycle=2,
    )


def qed_memory_consistency_property(
    arch: ArchParams,
    handles: QEDMemHandles,
    *,
    name: str = "qed_memory_consistency",
) -> SafetyProperty:
    """The consistency property for a duplication-using-memory QED run."""
    phase_done = BVVar(handles.phase_name, _PHASE_WIDTH).eq(
        BVConst(_PHASE_WIDTH, PHASE_DONE)
    )
    pipeline_empty = ~BVVar("ex_valid", 1)
    qed_ready = phase_done & pipeline_empty

    consistent: BV = BVConst(1, 1)
    for original_slot, duplicate_slot in zip(
        handles.original_slots, handles.duplicate_slots
    ):
        consistent = consistent & BVVar(
            dmem_word_name(original_slot), arch.xlen
        ).eq(BVVar(dmem_word_name(duplicate_slot), arch.xlen))

    return SafetyProperty(
        name=name,
        expr=qed_ready.implies(consistent),
        description=(
            "after the original and duplicate sub-sequences have been spilled "
            "to their memory regions, corresponding locations must hold equal "
            "values"
        ),
        start_cycle=2,
    )
