"""The end-to-end Symbolic QED harness.

:class:`SymbolicQED` is the user-facing entry point mirroring how the
verification engineers of the case study ran the technique: pick a design
version, pick a QED configuration (baseline EDDI-V, Enhanced EDDI-V with the
QED-CF module, or Enhanced EDDI-V with duplication using memory), and run the
bounded model checker from the QED-consistent start state.  No design-specific
properties are written at any point -- the QED module and the generic
consistency property are the whole specification.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.bmc.engine import BMCProblem, BMCResult, BMCStatus, BoundedModelChecker
from repro.bmc.property import SafetyProperty
from repro.deadline import Deadline
from repro.dist.scheduler import SplitConfig
from repro.expr.bitvec import BVVar
from repro.isa.arch import ArchParams, TINY_PROFILE
from repro.qed.consistency import (
    qed_consistency_property,
    qed_consistent_start_state,
    qed_memory_consistency_property,
)
from repro.qed.counterexample import QEDCounterexample, interpret_counterexample
from repro.qed.eddiv import EDDIVMapping, QEDMode
from repro.qed.qed_cf import build_qed_cf_module
from repro.qed.qed_mem import build_qed_mem_module
from repro.qed.qed_module import build_qed_module
from repro.rtl.circuit import Circuit
from repro.rtl.design import Design, elaborate
from repro.uarch.config import CoreConfig
from repro.uarch.core import build_core_circuit
from repro.uarch.designs import config_for_version
from repro.uarch.versions import DesignVersion

#: Default BMC bound, chosen to cover every counterexample in the bug library
#: with a small margin (the paper's counterexamples are at most 11 cycles).
DEFAULT_MAX_BOUND = 12


@dataclass
class QEDCheckResult:
    """Outcome of one Symbolic QED run."""

    design_name: str
    mode: QEDMode
    bmc_result: BMCResult
    counterexample: Optional[QEDCounterexample] = None
    setup_seconds: float = 0.0

    @property
    def found_violation(self) -> bool:
        """Whether a QED failure (i.e. a bug) was found within the bound."""
        return self.bmc_result.status is BMCStatus.VIOLATION

    @property
    def runtime_seconds(self) -> float:
        """BMC runtime of the run."""
        return self.bmc_result.runtime_seconds

    @property
    def per_bound_stats(self):
        """Per-bound solver statistics (see :class:`repro.bmc.engine.BoundStats`)."""
        return self.bmc_result.per_bound_stats

    @property
    def solver_conflicts(self) -> int:
        """Total SAT conflicts across every bound of the run."""
        return self.bmc_result.total_conflicts

    @property
    def solver_propagations(self) -> int:
        """Total unit propagations across every bound of the run."""
        return self.bmc_result.total_propagations

    @property
    def solve_seconds(self) -> float:
        """Wall-clock inside the solver (excludes encode/preprocess)."""
        return self.bmc_result.solve_seconds

    @property
    def learned_clauses(self) -> int:
        """Clauses learned by the shared solver across the whole run."""
        return self.bmc_result.total_learned_clauses

    @property
    def learned_clauses_reused(self) -> int:
        """Learned clauses inherited by later bounds from earlier ones."""
        return self.bmc_result.learned_clauses_reused

    @property
    def cubes_solved(self) -> int:
        """Cubes answered by the distributed proof engine (0 sequential)."""
        return self.bmc_result.cubes_solved

    @property
    def cubes_resplit(self) -> int:
        """Dynamic cube re-splits across the run (0 sequential)."""
        return self.bmc_result.cubes_resplit

    @property
    def clauses_shared(self) -> int:
        """Learned clauses exchanged between workers (0 sequential)."""
        return self.bmc_result.clauses_shared

    @property
    def counterexample_cycles(self) -> int:
        """Counterexample length in clock cycles (0 if none)."""
        return self.counterexample.length_cycles if self.counterexample else 0

    @property
    def counterexample_instructions(self) -> int:
        """Counterexample length in instructions (0 if none)."""
        return (
            self.counterexample.length_instructions if self.counterexample else 0
        )

    def counterexample_report(self) -> str:
        """Human-readable report (empty string when no violation)."""
        return self.counterexample.report() if self.counterexample else ""


class SymbolicQED:
    """Compose a design with the QED modules and check QED consistency."""

    def __init__(
        self,
        design: Union[CoreConfig, DesignVersion, str],
        *,
        mode: QEDMode = QEDMode.EDDIV,
        arch: ArchParams = TINY_PROFILE,
        queue_depth: int = 2,
        tracked_registers: Sequence[int] = (0,),
        include_memory_in_check: bool = True,
        focus_opcodes: Optional[Sequence[str]] = None,
    ) -> None:
        if isinstance(design, CoreConfig):
            self.config = design
        else:
            self.config = config_for_version(design, arch=arch)
        self.mode = mode
        self.queue_depth = queue_depth
        self.tracked_registers = tuple(tracked_registers)
        self.include_memory_in_check = include_memory_in_check
        self.focus_opcodes = focus_opcodes
        self.mapping = EDDIVMapping(self.config.arch)

        setup_start = time.perf_counter()
        self.design, self.prop = self._compose()
        self.setup_seconds = time.perf_counter() - setup_start

    # ------------------------------------------------------------------
    def _compose(self) -> Tuple[Design, SafetyProperty]:
        config = self.config
        arch = config.arch
        circuit = Circuit(f"{config.name}+qed[{self.mode.value}]")
        build_core_circuit(config, circuit)

        instr_in = BVVar("instr_in", arch.instr_width)
        instr_valid = BVVar("instr_valid", 1)

        if self.mode in (QEDMode.EDDIV, QEDMode.EDDIV_CF):
            qed = build_qed_module(
                circuit,
                config,
                mode=self.mode,
                queue_depth=self.queue_depth,
                focus_opcodes=self.focus_opcodes,
            )
            instruction_out = qed.instruction_out
            valid_out = qed.valid_out
            if self.mode is QEDMode.EDDIV_CF:
                cf = build_qed_cf_module(circuit, config, qed)
                instruction_out = cf.instruction_out
                valid_out = cf.valid_out
            prop = qed_consistency_property(
                arch, qed, include_memory=self.include_memory_in_check
            )
        elif self.mode is QEDMode.EDDIV_MEM:
            mem = build_qed_mem_module(
                circuit, config, tracked_registers=self.tracked_registers
            )
            instruction_out = mem.instruction_out
            valid_out = mem.valid_out
            prop = qed_memory_consistency_property(arch, mem)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unsupported QED mode {self.mode}")

        # Tie the QED module to the core's fetch interface.  The core's
        # instruction port stays a primary input of the model; the equality
        # constraints below are how the BMC tool "wires" the module in, which
        # keeps the counterexample traces directly replayable.
        circuit.assume("qed_wiring_instruction", instr_in.eq(instruction_out))
        circuit.assume("qed_wiring_valid", instr_valid.eq(valid_out))

        # Expose the injected stream for counterexample interpretation.
        circuit.output("qed_instruction_to_core", instruction_out)
        circuit.output("qed_valid_to_core", valid_out)

        design = elaborate(circuit)
        return design, prop

    # ------------------------------------------------------------------
    def check(
        self,
        *,
        max_bound: int = DEFAULT_MAX_BOUND,
        single_query: bool = True,
        preprocess: bool = True,
        max_conflicts_per_query: Optional[int] = None,
        split: Optional[SplitConfig] = None,
        on_bound: Optional[Callable] = None,
        deadline: Optional[Deadline] = None,
    ) -> QEDCheckResult:
        """Run BMC from the QED-consistent start state up to *max_bound*.

        With ``single_query=True`` (the default) the engine asks one SAT
        question -- "is there a violation at any cycle up to the bound?" --
        which matches how a commercial engine would be invoked and keeps the
        pure-Python backend fast.  ``single_query=False`` reproduces the
        textbook incremental-bound loop.

        ``preprocess`` toggles the CNF formula-reduction pipeline (on by
        default; ablations turn it off), and ``max_conflicts_per_query``
        forwards a per-bound solver budget -- the engine answers UNKNOWN for
        a bound whose budget expires, which conflict-budget depth ablations
        use to compare how deep different pipelines prove.

        ``split`` routes every bound's query through the distributed proof
        engine (:mod:`repro.dist`): cube-and-conquer over the QED property
        window and the instruction-port bits (the focus-set opcode choice),
        raced over ``split.workers`` processes.  Unless the config already
        names preferred split inputs, the harness points it at the core's
        instruction port so cubes partition by injected opcode.

        ``on_bound`` streams each bound's
        :class:`~repro.bmc.engine.BoundStats` to the caller as it is final
        (the serving layer's progress hook).

        ``deadline`` forwards a wall-clock budget to the engine (and from
        there into the solver and cube workers); an expired deadline
        degrades the check to UNKNOWN at the current bound, never to a
        wrong verdict (``bmc_result.deadline_expired`` records it).
        """
        if split is not None and not split.prefer_input_prefixes:
            split = replace(split, prefer_input_prefixes=("instr_in",))
        problem = BMCProblem(
            design=self.design,
            prop=self.prop,
            assumptions=(),
            initial_state=qed_consistent_start_state(),
            max_bound=max_bound,
            violation_mode="any" if single_query else "first",
            bound_schedule=[max_bound] if single_query else None,
            preprocess=preprocess,
            max_conflicts_per_query=max_conflicts_per_query,
            split=split,
        )
        result = BoundedModelChecker(problem).run(
            on_bound=on_bound, deadline=deadline
        )

        counterexample: Optional[QEDCounterexample] = None
        if result.status is BMCStatus.VIOLATION and result.counterexample:
            counterexample = interpret_counterexample(
                self.config.arch,
                result.counterexample,
                mode=self.mode.value,
                register_pairs=self.mapping.register_pairs(),
                memory_pairs=self.mapping.memory_pairs(),
            )
        return QEDCheckResult(
            design_name=self.config.name,
            mode=self.mode,
            bmc_result=result,
            counterexample=counterexample,
            setup_seconds=self.setup_seconds,
        )


def run_symbolic_qed(
    design: Union[CoreConfig, DesignVersion, str],
    *,
    mode: QEDMode = QEDMode.EDDIV,
    arch: ArchParams = TINY_PROFILE,
    max_bound: int = DEFAULT_MAX_BOUND,
    tracked_registers: Sequence[int] = (0,),
) -> QEDCheckResult:
    """One-call convenience wrapper around :class:`SymbolicQED`."""
    harness = SymbolicQED(
        design, mode=mode, arch=arch, tracked_registers=tracked_registers
    )
    return harness.check(max_bound=max_bound)
