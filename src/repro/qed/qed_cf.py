"""Enhanced EDDI-V for control-flow errors: the QED-CF module.

The QED-CF module (Fig. 5 of the paper) is instantiated between the QED
module and the core's fetch stage.  It captures the outcome (direction and
target) of each *original* control-flow instruction in a small queue and
compares it with the outcome of the corresponding *duplicate* control-flow
instruction.  On a match the QED sequence continues untouched; on a mismatch
the BMC tool is allowed to inject an arbitrary valid instruction
(``any_instr``) in place of the next duplicate, which corrupts the duplicate
half and surfaces the error as an ordinary EDDI-V register-pair failure.

To avoid false failures the harness imposes the two ordering conditions of
the paper (specialised for this 2-stage in-order core) plus one refinement:

(a) a flag-using control-flow instruction must directly follow an
    arithmetic flag-setting instruction of the *same* half (original follows
    original, duplicate follows duplicate), so the flags it samples are fully
    determined by that predecessor;
(b) the instruction injected directly after any control-flow instruction must
    belong to the same half, so that a pipeline flush removes corresponding
    instructions from both halves; and
(d) a flag-using control-flow instruction may not be injected two cycles
    after another control-flow instruction, which guarantees its flag-setting
    predecessor cannot itself have been flushed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.expr.bitvec import BV, BVConst, BVVar, mux
from repro.isa.arch import ArchParams
from repro.isa.instructions import FlagsUpdate, instructions_for_design
from repro.qed.qed_module import QEDModuleHandles, _is_any_opcode
from repro.rtl.circuit import Circuit
from repro.uarch.config import CoreConfig

#: Depth of the control-flow outcome queue (matches the EDDI-V queue depth).
DEFAULT_CF_QUEUE_DEPTH = 2


@dataclass
class QEDCFHandles:
    """Expressions and state names exposed by the QED-CF module."""

    any_instr_input: BVVar
    instruction_out: BV
    valid_out: BV
    mismatch_now: BV
    state_names: List[str]


def build_qed_cf_module(
    circuit: Circuit,
    config: CoreConfig,
    base: QEDModuleHandles,
    *,
    queue_depth: int = DEFAULT_CF_QUEUE_DEPTH,
    prefix: str = "qedcf",
) -> QEDCFHandles:
    """Insert the QED-CF module between the QED module and the core.

    ``circuit`` must already contain the core (so its ``cf_valid`` /
    ``cf_taken`` / ``cf_target`` outputs exist) and the base QED module.
    """
    arch = config.arch
    outputs = circuit.outputs
    core_cf_valid = outputs["cf_valid"]
    core_cf_taken = outputs["cf_taken"]
    core_cf_target = outputs["cf_target"]

    isa = instructions_for_design(with_extension=config.with_extension)
    cf_names = [i.name for i in isa if i.is_control_flow and i.name != "JAL"]
    flag_cf_names = [i.name for i in isa if i.is_control_flow and i.uses_flags]
    arith_names = [
        i.name
        for i in isa
        if i.flags in (FlagsUpdate.ARITH_ADD, FlagsUpdate.ARITH_SUB)
    ]

    # BMC-controlled replacement instruction used after a mismatch.
    any_instr = circuit.input(f"{prefix}.any_instr", arch.instr_width)

    # ------------------------------------------------------------------
    # Track which half the instruction currently in EX belongs to.
    # ------------------------------------------------------------------
    in_ex_original = circuit.register(f"{prefix}.in_ex_original", 1, reset=0)
    in_ex_original.next = base.original_input

    # History used by the ordering-condition assumptions.
    last_inject_valid = circuit.register(f"{prefix}.last_inject_valid", 1, reset=0)
    last_original = circuit.register(f"{prefix}.last_original", 1, reset=0)
    last_was_cf = circuit.register(f"{prefix}.last_was_cf", 1, reset=0)
    last2_was_cf = circuit.register(f"{prefix}.last2_was_cf", 1, reset=0)
    last_arith_flags = circuit.register(f"{prefix}.last_arith_flags", 1, reset=0)

    out_is_cf = _is_any_opcode(base.out_opcode, cf_names)
    out_is_flag_cf = _is_any_opcode(base.out_opcode, flag_cf_names)
    out_is_arith = _is_any_opcode(base.out_opcode, arith_names)

    last_inject_valid.next = base.inject_valid_input
    last_original.next = base.original_input
    last_was_cf.next = base.inject_valid_input & out_is_cf
    last2_was_cf.next = last_was_cf.q
    last_arith_flags.next = base.inject_valid_input & out_is_arith

    # ------------------------------------------------------------------
    # Outcome queue for original control-flow instructions.
    # ------------------------------------------------------------------
    taken_regs = [
        circuit.register(f"{prefix}.taken{i}", 1, reset=0)
        for i in range(queue_depth)
    ]
    target_regs = [
        circuit.register(f"{prefix}.target{i}", arch.pc_width, reset=0)
        for i in range(queue_depth)
    ]
    count_width = max(2, (queue_depth + 1).bit_length())
    cf_count = circuit.register(f"{prefix}.count", count_width, reset=0)

    orig_cf_exec = core_cf_valid & in_ex_original.q
    dup_cf_exec = core_cf_valid & ~in_ex_original.q

    cf_count.next = mux(
        orig_cf_exec,
        cf_count.q + BVConst(count_width, 1),
        mux(dup_cf_exec, cf_count.q - BVConst(count_width, 1), cf_count.q),
    )
    for index in range(queue_depth):
        shifted_taken = (
            taken_regs[index + 1].q if index + 1 < queue_depth else BVConst(1, 0)
        )
        shifted_target = (
            target_regs[index + 1].q
            if index + 1 < queue_depth
            else BVConst(arch.pc_width, 0)
        )
        pushed_here = orig_cf_exec & cf_count.q.eq(BVConst(count_width, index))
        taken_regs[index].next = mux(
            dup_cf_exec,
            shifted_taken,
            mux(pushed_here, core_cf_taken, taken_regs[index].q),
        )
        target_regs[index].next = mux(
            dup_cf_exec,
            shifted_target,
            mux(pushed_here, core_cf_target, target_regs[index].q),
        )

    # ------------------------------------------------------------------
    # Mismatch detection and instruction substitution.
    # ------------------------------------------------------------------
    head_taken = taken_regs[0].q
    head_target = target_regs[0].q
    queue_empty = cf_count.q.eq(BVConst(count_width, 0))
    outcome_differs = head_taken.ne(core_cf_taken) | (
        head_taken & core_cf_taken & head_target.ne(core_cf_target)
    )
    mismatch_now = dup_cf_exec & (queue_empty | outcome_differs)

    instruction_out = mux(mismatch_now, any_instr, base.instruction_out)
    valid_out = base.valid_out

    # Assumption: the replacement instruction is a valid, non-control-flow
    # data instruction (anything stronger is unnecessary -- the BMC tool will
    # pick whatever corrupts the duplicate half fastest).
    from repro.isa.encoding import field_layout

    low, width = field_layout(arch)["opcode"]
    any_opcode = any_instr[low : low + width]
    non_cf_names = [
        i.name
        for i in isa
        if not i.is_control_flow and i.name not in ("HALT",)
    ]
    circuit.assume(
        f"{prefix}.any_instr_valid", _is_any_opcode(any_opcode, non_cf_names)
    )

    # ------------------------------------------------------------------
    # Ordering conditions (a), (b) and (d).
    # ------------------------------------------------------------------
    inject = base.inject_valid_input
    original = base.original_input
    circuit.assume(
        f"{prefix}.condition_b_same_half_after_cf",
        last_was_cf.q.implies(inject & original.eq(last_original.q)),
    )
    circuit.assume(
        f"{prefix}.condition_a_flag_cf_context",
        (inject & out_is_flag_cf).implies(
            last_inject_valid.q
            & last_arith_flags.q
            & original.eq(last_original.q)
            & ~last2_was_cf.q
        ),
    )

    state_names = (
        [reg.name for reg in taken_regs]
        + [reg.name for reg in target_regs]
        + [
            cf_count.name,
            in_ex_original.name,
            last_inject_valid.name,
            last_original.name,
            last_was_cf.name,
            last2_was_cf.name,
            last_arith_flags.name,
        ]
    )
    return QEDCFHandles(
        any_instr_input=any_instr,
        instruction_out=instruction_out,
        valid_out=valid_out,
        mismatch_now=mismatch_now,
        state_names=state_names,
    )
