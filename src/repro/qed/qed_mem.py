"""Enhanced EDDI-V: duplication using memory.

Register halving cannot include instructions whose destination register is
architecturally fixed (the paper's example: a load-immediate that can only
write ``R0``; our ISA's ``LDIL``).  The duplication-using-memory QED module
removes the halving requirement: the original and the duplicate sub-sequence
execute on the *same* registers, and the module inserts the store/load
traffic that spills the original results to one memory region, restores the
starting values, replays the sequence and spills the duplicate results to a
second region.  The QED check then compares the two memory regions.

The module is a small FSM driving the core's fetch interface::

    COLLECT  -- the BMC tool injects the body instructions (recorded),
    SAVE1    -- STA of every tracked register into the original region,
    RESTORE  -- LDA of every tracked register from the duplicate region
                (which still holds the initial values),
    REPLAY   -- the recorded body instructions are injected again,
    SAVE2    -- STA of every tracked register into the duplicate region,
    DONE     -- the sequence is complete; ``qed_ready`` may assert.

As in the paper, the module tracks which registers participate so that only
the necessary loads and stores are inserted; this implementation uses a fixed
*tracked register set* (a configuration parameter) and constrains the body
instructions to those registers, which is the static equivalent of the
source/destination bit tracking described in Section 5.B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.expr.bitvec import BV, BVConst, BVVar, mux
from repro.isa.arch import ArchParams
from repro.isa.encoding import encode, field_layout
from repro.isa.instructions import instruction_by_name
from repro.qed.eddiv import QEDMode, allowed_instructions, nop_encoding
from repro.qed.qed_module import _extract, _is_any_opcode
from repro.rtl.circuit import Circuit
from repro.uarch.config import CoreConfig

#: FSM phase encoding.
PHASE_COLLECT = 0
PHASE_SAVE1 = 1
PHASE_RESTORE = 2
PHASE_REPLAY = 3
PHASE_SAVE2 = 4
PHASE_DONE = 5
_PHASE_WIDTH = 3

#: Maximum number of body instructions that can be recorded and replayed.
DEFAULT_BODY_DEPTH = 2


@dataclass
class QEDMemHandles:
    """Expressions and state names exposed by the memory-duplication module."""

    arch: ArchParams
    tracked_registers: Tuple[int, ...]
    body_depth: int
    instr_input: BVVar
    advance_input: BVVar
    finish_input: BVVar
    instruction_out: BV
    valid_out: BV
    phase_name: str
    body_names: List[str]
    body_count_name: str
    original_slots: List[int]
    duplicate_slots: List[int]


def build_qed_mem_module(
    circuit: Circuit,
    config: CoreConfig,
    *,
    tracked_registers: Sequence[int] = (0, 1),
    body_depth: int = DEFAULT_BODY_DEPTH,
    prefix: str = "qedmem",
) -> QEDMemHandles:
    """Build the duplication-using-memory QED module into *circuit*."""
    arch = config.arch
    tracked = tuple(tracked_registers)
    if not tracked:
        raise ValueError("tracked_registers must not be empty")
    if len(tracked) > arch.half_dmem:
        raise ValueError(
            "each memory half must have room for every tracked register"
        )
    if any(not 0 <= r < arch.num_regs for r in tracked):
        raise ValueError("tracked register out of range")
    if body_depth < 1:
        raise ValueError("body_depth must be at least 1")

    allowed = allowed_instructions(
        arch, QEDMode.EDDIV_MEM, with_extension=config.with_extension
    )
    allowed_names = [instr.name for instr in allowed]

    original_slots = list(range(len(tracked)))
    duplicate_slots = [arch.half_dmem + slot for slot in original_slots]

    # ------------------------------------------------------------------
    # BMC-controlled inputs.
    # ------------------------------------------------------------------
    instr_input = circuit.input(f"{prefix}.instr", arch.instr_width)
    advance_input = circuit.input(f"{prefix}.advance", 1)
    finish_input = circuit.input(f"{prefix}.finish", 1)

    # ------------------------------------------------------------------
    # State.
    # ------------------------------------------------------------------
    phase = circuit.register(f"{prefix}.phase", _PHASE_WIDTH, reset=PHASE_COLLECT)
    body_regs = [
        circuit.register(f"{prefix}.body{i}", arch.instr_width, reset=0)
        for i in range(body_depth)
    ]
    count_width = max(2, (body_depth + 1).bit_length())
    body_count = circuit.register(f"{prefix}.body_count", count_width, reset=0)
    index_width = max(2, (max(len(tracked), body_depth)).bit_length())
    step_index = circuit.register(f"{prefix}.step", index_width, reset=0)

    def phase_is(value: int) -> BV:
        return phase.q.eq(BVConst(_PHASE_WIDTH, value))

    in_collect = phase_is(PHASE_COLLECT)
    in_save1 = phase_is(PHASE_SAVE1)
    in_restore = phase_is(PHASE_RESTORE)
    in_replay = phase_is(PHASE_REPLAY)
    in_save2 = phase_is(PHASE_SAVE2)

    # ------------------------------------------------------------------
    # Pre-encoded spill / restore instructions.
    # ------------------------------------------------------------------
    save_orig_words = [
        encode(arch, "STA", rs2=reg, imm=slot)
        for reg, slot in zip(tracked, original_slots)
    ]
    restore_words = [
        encode(arch, "LDA", rd=reg, imm=slot)
        for reg, slot in zip(tracked, duplicate_slots)
    ]
    save_dup_words = [
        encode(arch, "STA", rs2=reg, imm=slot)
        for reg, slot in zip(tracked, duplicate_slots)
    ]

    def select_by_index(words: List[int]) -> BV:
        selected: BV = BVConst(arch.instr_width, words[0])
        for position, word in enumerate(words[1:], start=1):
            selected = mux(
                step_index.q.eq(BVConst(index_width, position)),
                BVConst(arch.instr_width, word),
                selected,
            )
        return selected

    def select_body() -> BV:
        selected: BV = body_regs[0].q
        for position, register in enumerate(body_regs[1:], start=1):
            selected = mux(
                step_index.q.eq(BVConst(index_width, position)),
                register.q,
                selected,
            )
        return selected

    # ------------------------------------------------------------------
    # Output selection.
    # ------------------------------------------------------------------
    collect_inject = in_collect & advance_input & body_count.q.ult(
        BVConst(count_width, body_depth)
    )
    nop_word = BVConst(arch.instr_width, nop_encoding(arch))
    instruction_out = nop_word
    instruction_out = mux(collect_inject, instr_input, instruction_out)
    instruction_out = mux(in_save1, select_by_index(save_orig_words), instruction_out)
    instruction_out = mux(in_restore, select_by_index(restore_words), instruction_out)
    instruction_out = mux(in_replay, select_body(), instruction_out)
    instruction_out = mux(in_save2, select_by_index(save_dup_words), instruction_out)
    valid_out = (
        collect_inject | in_save1 | in_restore | in_replay | in_save2
    )

    # ------------------------------------------------------------------
    # Body recording.
    # ------------------------------------------------------------------
    for position, register in enumerate(body_regs):
        record_here = collect_inject & body_count.q.eq(
            BVConst(count_width, position)
        )
        register.next = mux(record_here, instr_input, register.q)
    body_count.next = mux(
        collect_inject, body_count.q + BVConst(count_width, 1), body_count.q
    )

    # ------------------------------------------------------------------
    # FSM transitions.
    # ------------------------------------------------------------------
    last_tracked = BVConst(index_width, len(tracked) - 1)
    at_last_tracked = step_index.q.eq(last_tracked)
    at_last_body = step_index.q.eq(
        _truncate_minus_one(body_count.q, index_width)
    )

    leave_collect = in_collect & finish_input & body_count.q.ne(
        BVConst(count_width, 0)
    )
    leave_save1 = in_save1 & at_last_tracked
    leave_restore = in_restore & at_last_tracked
    leave_replay = in_replay & at_last_body
    leave_save2 = in_save2 & at_last_tracked

    next_phase = phase.q
    next_phase = mux(leave_collect, BVConst(_PHASE_WIDTH, PHASE_SAVE1), next_phase)
    next_phase = mux(leave_save1, BVConst(_PHASE_WIDTH, PHASE_RESTORE), next_phase)
    next_phase = mux(leave_restore, BVConst(_PHASE_WIDTH, PHASE_REPLAY), next_phase)
    next_phase = mux(leave_replay, BVConst(_PHASE_WIDTH, PHASE_SAVE2), next_phase)
    next_phase = mux(leave_save2, BVConst(_PHASE_WIDTH, PHASE_DONE), next_phase)
    phase.next = next_phase

    advancing = in_save1 | in_restore | in_replay | in_save2
    phase_change = (
        leave_collect | leave_save1 | leave_restore | leave_replay | leave_save2
    )
    step_index.next = mux(
        phase_change,
        BVConst(index_width, 0),
        mux(advancing, step_index.q + BVConst(index_width, 1), step_index.q),
    )

    # ------------------------------------------------------------------
    # Environmental constraints on the body instructions.
    # ------------------------------------------------------------------
    in_opcode = _extract(instr_input, arch, "opcode")
    in_rd = _extract(instr_input, arch, "rd")
    in_rs1 = _extract(instr_input, arch, "rs1")
    in_rs2 = _extract(instr_input, arch, "rs2")

    circuit.assume(
        f"{prefix}.valid_opcode", _is_any_opcode(in_opcode, allowed_names)
    )

    def field_in_tracked(fieldexpr: BV) -> BV:
        cond: BV = BVConst(1, 0)
        for reg in tracked:
            cond = cond | fieldexpr.eq(BVConst(4, reg))
        return cond

    circuit.assume(
        f"{prefix}.tracked_registers_only",
        field_in_tracked(in_rd) & field_in_tracked(in_rs1) & field_in_tracked(in_rs2),
    )

    return QEDMemHandles(
        arch=arch,
        tracked_registers=tracked,
        body_depth=body_depth,
        instr_input=instr_input,
        advance_input=advance_input,
        finish_input=finish_input,
        instruction_out=instruction_out,
        valid_out=valid_out,
        phase_name=phase.name,
        body_names=[reg.name for reg in body_regs],
        body_count_name=body_count.name,
        original_slots=original_slots,
        duplicate_slots=duplicate_slots,
    )


def _truncate_minus_one(count: BV, width: int) -> BV:
    """``count - 1`` resized to *width* bits (helper for the replay cursor)."""
    value = count - BVConst(count.width, 1)
    if value.width == width:
        return value
    if value.width > width:
        return value[0:width]
    from repro.expr.bitvec import zero_extend

    return zero_extend(value, width)
