"""The QED module (register-halving EDDI-V with arbitrary interleaving).

The QED module sits between the BMC tool's free instruction inputs and the
core's fetch interface.  It is only present in the model handed to the BMC
tool -- never in the fabricated design -- exactly as in the paper.

Behaviour (following the enhanced module of [Ganesan 18] used in the case
study):

* The BMC tool drives three free inputs each cycle: an instruction word
  (``qed.instr``), an ``original`` flag, and an ``inject_valid`` flag.
* When an *original* instruction is injected it is forwarded to the core
  unchanged (the harness constrains it to reference only lower-half
  registers) and recorded in a small FIFO queue.
* When a *duplicate* is requested, the head of the queue is popped,
  transformed on the fly (register specifiers moved to the upper half,
  LDA/STA addresses moved to the upper memory half) and forwarded instead.
* Original and duplicate sub-sequences may interleave arbitrarily, subject
  only to the queue capacity -- this is the key difference from the original
  Lin 15 / Singh 18 module, which required all originals to finish first.

The module's state (queue contents, occupancy, ``pairs_done``) is ordinary
design state, so the property generator can refer to it when building the
``qed_ready`` condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.expr.bitvec import BV, BVConst, BVVar, concat, mux
from repro.isa.arch import ArchParams
from repro.isa.encoding import field_layout
from repro.isa.instructions import Instruction, instruction_by_name
from repro.qed.eddiv import QEDMode, allowed_instructions, nop_encoding
from repro.rtl.circuit import Circuit
from repro.uarch.config import CoreConfig

#: Depth of the pending-duplication queue.  Two outstanding originals are
#: enough to expose every interaction bug in the library while keeping the
#: unrolled state small; the depth is a parameter for experimentation.
DEFAULT_QUEUE_DEPTH = 2


@dataclass
class QEDModuleHandles:
    """Expressions and state names exposed by the QED module."""

    arch: ArchParams
    mode: QEDMode
    queue_depth: int
    # BMC-controlled inputs.
    instr_input: BVVar
    original_input: BVVar
    inject_valid_input: BVVar
    # Module state-element names.
    queue_names: List[str]
    count_name: str
    pairs_done_name: str
    # Wiring expressions (to be tied to the core's fetch interface).
    instruction_out: BV
    valid_out: BV
    # Decoded views of the instruction actually presented to the core.
    out_opcode: BV
    # Allowed instruction catalogue for this mode.
    allowed: List[Instruction]


def _extract(word: BV, arch: ArchParams, field: str) -> BV:
    low, width = field_layout(arch)[field]
    return word[low : low + width]


def _is_any_opcode(opcode: BV, names: List[str]) -> BV:
    result: BV = BVConst(1, 0)
    for name in names:
        result = result | opcode.eq(BVConst(6, instruction_by_name(name).opcode))
    return result


def build_qed_module(
    circuit: Circuit,
    config: CoreConfig,
    *,
    mode: QEDMode = QEDMode.EDDIV,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    focus_opcodes: "Sequence[str] | None" = None,
    prefix: str = "qed",
) -> QEDModuleHandles:
    """Build the QED module into *circuit* and return its handles.

    The returned :attr:`~QEDModuleHandles.instruction_out` /
    :attr:`~QEDModuleHandles.valid_out` expressions are what the harness ties
    to the core's ``instr_in`` / ``instr_valid`` inputs.

    ``focus_opcodes`` optionally restricts the instructions the BMC tool may
    inject to a named subset of the mode's allowed set.  The full set is the
    faithful configuration; focused runs are how the evaluation campaign keeps
    the pure-Python SAT backend within the per-bug runtimes the paper reports
    for a commercial engine (the restriction is an environment constraint on
    the stimulus, not a property change, so it cannot introduce false
    failures).
    """
    if queue_depth < 1:
        raise ValueError("queue_depth must be at least 1")
    arch = config.arch
    allowed = allowed_instructions(
        arch, mode, with_extension=config.with_extension
    )
    if focus_opcodes is not None:
        focus = {name.upper() for name in focus_opcodes}
        unknown = focus - {instr.name for instr in allowed}
        if unknown:
            raise ValueError(
                f"focus opcodes not allowed in mode {mode.value}: {sorted(unknown)}"
            )
        allowed = [instr for instr in allowed if instr.name in focus]
    allowed_names = [instr.name for instr in allowed]

    # ------------------------------------------------------------------
    # BMC-controlled inputs.
    # ------------------------------------------------------------------
    instr_input = circuit.input(f"{prefix}.instr", arch.instr_width)
    original_input = circuit.input(f"{prefix}.original", 1)
    inject_valid_input = circuit.input(f"{prefix}.inject_valid", 1)

    # ------------------------------------------------------------------
    # Queue of originals awaiting duplication.
    # ------------------------------------------------------------------
    queue_regs = [
        circuit.register(f"{prefix}.queue{i}", arch.instr_width, reset=0)
        for i in range(queue_depth)
    ]
    count_width = max(2, (queue_depth + 1).bit_length())
    count = circuit.register(f"{prefix}.count", count_width, reset=0)
    pairs_done = circuit.register(f"{prefix}.pairs_done", 1, reset=0)

    push = inject_valid_input & original_input
    pop = inject_valid_input & ~original_input

    count.next = mux(
        push,
        count.q + BVConst(count_width, 1),
        mux(pop, count.q - BVConst(count_width, 1), count.q),
    )
    pairs_done.next = pairs_done.q | pop

    # Shift-register FIFO: entry 0 is the head.
    for index, register in enumerate(queue_regs):
        shifted_in = (
            queue_regs[index + 1].q
            if index + 1 < queue_depth
            else BVConst(arch.instr_width, 0)
        )
        pushed_here = push & count.q.eq(BVConst(count_width, index))
        # Push and pop cannot coincide (push requires original=1, pop requires
        # original=0), so a plain shift on pop and in-place write on push is
        # sufficient.
        register.next = mux(
            pop, shifted_in, mux(pushed_here, instr_input, register.q)
        )

    # ------------------------------------------------------------------
    # Duplicate transformation of the queue head.
    # ------------------------------------------------------------------
    head = queue_regs[0].q
    head_opcode = _extract(head, arch, "opcode")
    head_rd = _extract(head, arch, "rd")
    head_rs1 = _extract(head, arch, "rs1")
    head_rs2 = _extract(head, arch, "rs2")
    head_imm = _extract(head, arch, "imm")

    half_const4 = BVConst(4, arch.half_regs)
    dup_rd = head_rd | half_const4
    dup_rs1 = head_rs1 | half_const4
    dup_rs2 = head_rs2 | half_const4
    is_abs_mem = _is_any_opcode(head_opcode, ["LDA", "STA"])
    dup_imm = mux(
        is_abs_mem,
        head_imm + BVConst(arch.imm_width, arch.half_dmem),
        head_imm,
    )
    duplicate_word = concat(head_opcode, dup_rd, dup_rs1, dup_rs2, dup_imm)

    # ------------------------------------------------------------------
    # Output to the core's fetch interface.
    # ------------------------------------------------------------------
    nop_word = BVConst(arch.instr_width, nop_encoding(arch))
    instruction_out = mux(
        inject_valid_input,
        mux(original_input, instr_input, duplicate_word),
        nop_word,
    )
    valid_out = inject_valid_input
    out_opcode = _extract(instruction_out, arch, "opcode")

    # ------------------------------------------------------------------
    # Environmental constraints (the paper's point: these are *generic*, they
    # encode "any valid QED sequence", not design-specific behaviour).
    # ------------------------------------------------------------------
    in_opcode = _extract(instr_input, arch, "opcode")
    in_rd = _extract(instr_input, arch, "rd")
    in_rs1 = _extract(instr_input, arch, "rs1")
    in_rs2 = _extract(instr_input, arch, "rs2")
    in_imm = _extract(instr_input, arch, "imm")

    circuit.assume(
        f"{prefix}.valid_opcode", _is_any_opcode(in_opcode, allowed_names)
    )
    half = BVConst(4, arch.half_regs)
    circuit.assume(
        f"{prefix}.original_registers",
        in_rd.ult(half) & in_rs1.ult(half) & in_rs2.ult(half),
    )
    circuit.assume(
        f"{prefix}.original_memory_half",
        _is_any_opcode(in_opcode, ["LDA", "STA"]).implies(
            in_imm.ult(BVConst(arch.imm_width, arch.half_dmem))
        ),
    )
    circuit.assume(
        f"{prefix}.pop_requires_pending",
        pop.implies(count.q.ne(BVConst(count_width, 0))),
    )
    circuit.assume(
        f"{prefix}.push_requires_space",
        push.implies(count.q.ult(BVConst(count_width, queue_depth))),
    )

    return QEDModuleHandles(
        arch=arch,
        mode=mode,
        queue_depth=queue_depth,
        instr_input=instr_input,
        original_input=original_input,
        inject_valid_input=inject_valid_input,
        queue_names=[reg.name for reg in queue_regs],
        count_name=count.name,
        pairs_done_name=pairs_done.name,
        instruction_out=instruction_out,
        valid_out=valid_out,
        out_opcode=out_opcode,
        allowed=allowed,
    )
