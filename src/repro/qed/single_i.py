"""Single-Instruction (Single-I) properties.

For every instruction of the ISA, a property describes its architecturally
intended behaviour with *symbolic* operand values, and is checked with the
pipeline otherwise empty (the paper's Question 5.C).  The properties are
written from the ISA catalogue -- the original architectural intent -- and
are therefore independent of the design specification document (the golden
model); this independence is exactly what lets Single-I expose the
``cmpi_carry_spec`` specification bug that the simulation-based flows cannot
see.

The same generator is reused (with deliberately weakened settings) by the
OCS-FV baseline in :mod:`repro.indverif.ocsfv`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.bmc.engine import BMCProblem, BMCStatus, BoundedModelChecker
from repro.bmc.property import Assumption, SafetyProperty
from repro.bmc.unroller import SYMBOLIC
from repro.expr.bitvec import BV, BVConst, BVVar, concat, mux, zero_extend
from repro.isa.arch import ArchParams, TINY_PROFILE
from repro.isa.encoding import field_layout
from repro.isa.instructions import (
    FlagsUpdate,
    Instruction,
    InstructionClass,
    instructions_for_design,
)
from repro.rtl.design import Design
from repro.uarch.config import CoreConfig
from repro.uarch.core import build_core
from repro.uarch.designs import config_for_version
from repro.uarch.versions import DesignVersion


def _resize(expr: BV, width: int) -> BV:
    if expr.width == width:
        return expr
    if expr.width < width:
        return zero_extend(expr, width)
    return expr[0:width]


def _core_signal(name: str, width: int) -> BV:
    return BVVar(name, width)


@dataclass
class _SpecResult:
    """Expected architectural effect of one instruction."""

    writes: bool = False
    value: Optional[BV] = None
    wb_addr_is_fixed_zero: bool = False
    carry: Optional[BV] = None
    sets_flags: bool = False
    sets_carry: bool = False
    is_store: bool = False
    mem_addr: Optional[BV] = None
    is_load: bool = False
    is_cf: bool = False
    taken: Optional[BV] = None
    target: Optional[BV] = None
    halts: bool = False


def _specification(instr: Instruction, arch: ArchParams) -> _SpecResult:
    """Architecturally intended behaviour of *instr* over the EX-stage view."""
    xlen = arch.xlen
    mask = arch.xlen_mask
    a = _core_signal("ex_rs1_val", xlen)
    b = _core_signal("ex_rs2_val", xlen)
    imm = _core_signal("ex_imm", arch.imm_width)
    imm_data = _resize(imm, xlen)
    flag_z = _core_signal("flag_z", 1)
    flag_c = _core_signal("flag_c", 1)
    flag_n = _core_signal("flag_n", 1)

    spec = _SpecResult()
    spec.sets_flags = instr.sets_flags
    spec.sets_carry = instr.flags in (FlagsUpdate.ARITH_ADD, FlagsUpdate.ARITH_SUB)

    def add_like(x: BV, y: BV) -> None:
        extended = zero_extend(x, xlen + 1) + zero_extend(y, xlen + 1)
        spec.value = extended[0:xlen]
        spec.carry = extended[xlen]

    def sub_like(x: BV, y: BV) -> None:
        spec.value = x - y
        spec.carry = ~x.ult(y)

    name = instr.name
    operand_b = imm_data if instr.iclass is InstructionClass.ALU_RI else b

    if name in ("NOP",):
        return spec
    if name == "HALT":
        spec.halts = True
        return spec

    if instr.writes_rd:
        spec.writes = True
        spec.wb_addr_is_fixed_zero = instr.fixed_rd == 0 and instr.name == "LDIL"

    if name in ("ADD", "ADDI"):
        add_like(a, operand_b)
    elif name in ("SUB", "SUBI"):
        sub_like(a, operand_b)
    elif name in ("AND", "ANDI"):
        spec.value = a & operand_b
    elif name in ("OR", "ORI"):
        spec.value = a | operand_b
    elif name in ("XOR", "XORI"):
        spec.value = a ^ operand_b
    elif name == "NAND":
        spec.value = ~(a & b)
    elif name == "NOR":
        spec.value = ~(a | b)
    elif name == "XNOR":
        spec.value = ~(a ^ b)
    elif name == "MUL":
        spec.value = a * b
    elif name == "MIN":
        spec.value = mux(a.ult(b), a, b)
    elif name == "MAX":
        spec.value = mux(a.ult(b), b, a)
    elif name in ("SLL", "SLLI"):
        spec.value = a << operand_b
    elif name in ("SRL", "SRLI"):
        spec.value = a >> operand_b
    elif name in ("SRA", "SRAI"):
        spec.value = a.arith_shift_right(operand_b)
    elif name == "NOT":
        spec.value = ~a
    elif name == "NEG":
        spec.value = -a
        spec.carry = a.eq(BVConst(xlen, 0))
    elif name == "MOV":
        spec.value = a
    elif name == "INC":
        add_like(a, BVConst(xlen, 1))
    elif name == "DEC":
        spec.value = a - BVConst(xlen, 1)
        spec.carry = a.ne(BVConst(xlen, 0))
    elif name == "ROL":
        spec.value = concat(a[0 : xlen - 1], a[xlen - 1])
    elif name == "ROR":
        spec.value = concat(a[0], a[1:xlen])
    elif name == "SWAP":
        half = xlen // 2
        spec.value = concat(a[0:half], a[half:xlen])
    elif name == "PARITY":
        bit: BV = a[0]
        for index in range(1, xlen):
            bit = bit ^ a[index]
        spec.value = zero_extend(bit, xlen)
    elif name == "ABS":
        spec.value = mux(a[xlen - 1], -a, a)
    elif name == "SATADD":
        extended = zero_extend(a, xlen + 1) + zero_extend(b, xlen + 1)
        spec.value = mux(extended[xlen], BVConst(xlen, mask), extended[0:xlen])
        spec.carry = extended[xlen]
    elif name == "LDI":
        spec.value = imm_data
    elif name == "LDIH":
        spec.value = _resize(imm_data << BVConst(xlen, xlen // 2), xlen)
    elif name == "LDIL":
        spec.value = imm_data
    elif name in ("LD", "LDO", "LDA"):
        spec.is_load = True
        spec.mem_addr = _memory_address_spec(name, a, imm_data, arch)
    elif name in ("ST", "STO", "STA"):
        spec.is_store = True
        spec.mem_addr = _memory_address_spec(name, a, imm_data, arch)
    elif name == "CMP":
        sub_like(a, b)
        spec.writes = False
    elif name == "CMPI":
        sub_like(a, imm_data)
        spec.writes = False
    elif name == "TST":
        spec.value = a
        spec.writes = False
    elif instr.iclass is InstructionClass.BRANCH_FLAG:
        spec.is_cf = True
        spec.taken = {
            "BZ": flag_z,
            "BNZ": ~flag_z,
            "BC": flag_c,
            "BNC": ~flag_c,
            "BN": flag_n,
            "BNN": ~flag_n,
        }[name]
        spec.target = _resize(imm, arch.pc_width)
    elif name in ("BEQ", "BNE"):
        spec.is_cf = True
        spec.taken = a.eq(b) if name == "BEQ" else a.ne(b)
        spec.target = _resize(imm, arch.pc_width)
    elif name == "JMP":
        spec.is_cf = True
        spec.taken = BVConst(1, 1)
        spec.target = _resize(imm, arch.pc_width)
    elif name == "JR":
        spec.is_cf = True
        spec.taken = BVConst(1, 1)
        spec.target = _resize(a, arch.pc_width)
    elif name == "JAL":
        spec.is_cf = True
        spec.taken = BVConst(1, 1)
        spec.target = _resize(imm, arch.pc_width)
        spec.value = _resize(
            _core_signal("ex_pc_out", arch.pc_width) + BVConst(arch.pc_width, 1),
            xlen,
        )
    else:  # pragma: no cover - catalogue and spec must stay in sync
        raise NotImplementedError(f"no Single-I specification for {name}")
    return spec


def _memory_address_spec(name: str, a: BV, imm_data: BV, arch: ArchParams) -> BV:
    if name in ("LD", "ST"):
        base = a
    elif name in ("LDO", "STO"):
        base = a + imm_data
    else:  # LDA / STA
        base = imm_data
    return _resize(base, arch.dmem_addr_width)


def single_i_property(
    instr: Instruction,
    arch: ArchParams,
    *,
    check_carry: bool = True,
    check_flags: bool = True,
    name_prefix: str = "single_i",
) -> SafetyProperty:
    """Build the Single-I property for *instr*.

    The property is expressed over the core's EX-stage outputs at the cycle
    in which the instruction executes; the accompanying assumption (see
    :meth:`SingleIChecker.assumptions_for`) pins the injected instruction.
    ``check_carry`` / ``check_flags`` exist so the OCS-FV baseline can model
    its weaker, human-written property set.
    """
    xlen = arch.xlen
    spec = _specification(instr, arch)
    commit = _core_signal("commit", 1)
    opcode = _core_signal("ex_opcode", 6)
    executing = commit & opcode.eq(BVConst(6, instr.opcode))

    wb_enable = _core_signal("wb_enable", 1)
    wb_addr = _core_signal("wb_addr", arch.reg_index_width)
    wb_value = _core_signal("wb_value", xlen)
    ex_rd = _core_signal("ex_rd", 4)
    mem_we = _core_signal("mem_we", 1)
    mem_addr = _core_signal("mem_addr", arch.dmem_addr_width)
    mem_wdata = _core_signal("mem_wdata", xlen)
    cf_valid = _core_signal("cf_valid", 1)
    cf_taken = _core_signal("cf_taken", 1)
    cf_target = _core_signal("cf_target", arch.pc_width)
    next_z = _core_signal("next_flag_z", 1)
    next_c = _core_signal("next_flag_c", 1)
    next_n = _core_signal("next_flag_n", 1)
    flag_z = _core_signal("flag_z", 1)
    flag_c = _core_signal("flag_c", 1)
    flag_n = _core_signal("flag_n", 1)
    halt_now = _core_signal("halt_now", 1)

    checks: BV = BVConst(1, 1)

    if spec.writes:
        checks = checks & wb_enable
        expected_addr = (
            BVConst(arch.reg_index_width, 0)
            if spec.wb_addr_is_fixed_zero
            else _resize(ex_rd, arch.reg_index_width)
        )
        checks = checks & wb_addr.eq(expected_addr)
        if spec.value is not None:
            checks = checks & wb_value.eq(spec.value)
    elif not spec.is_load:
        checks = checks & ~wb_enable

    if spec.is_load:
        checks = checks & wb_enable & ~mem_we
        if spec.mem_addr is not None:
            checks = checks & mem_addr.eq(spec.mem_addr)
    if spec.is_store:
        checks = checks & mem_we & ~wb_enable
        if spec.mem_addr is not None:
            checks = checks & mem_addr.eq(spec.mem_addr)
        checks = checks & mem_wdata.eq(_core_signal("ex_rs2_val", xlen))
    if not spec.is_store and not spec.is_load and instr.name != "HALT":
        checks = checks & ~mem_we

    if spec.is_cf:
        checks = checks & cf_valid
        if spec.taken is not None:
            checks = checks & cf_taken.eq(spec.taken)
        if spec.target is not None and spec.taken is not None:
            checks = checks & spec.taken.implies(cf_target.eq(spec.target))
    elif instr.name not in ("HALT",):
        checks = checks & ~cf_valid

    if spec.halts:
        checks = checks & halt_now

    if check_flags and spec.value is not None:
        if spec.sets_flags:
            checks = checks & next_z.eq(spec.value.eq(BVConst(xlen, 0)))
            checks = checks & next_n.eq(spec.value[xlen - 1])
            if check_carry:
                if spec.sets_carry and spec.carry is not None:
                    checks = checks & next_c.eq(spec.carry)
                elif not spec.sets_carry:
                    checks = checks & next_c.eq(flag_c)
        else:
            checks = checks & next_z.eq(flag_z)
            checks = checks & next_n.eq(flag_n)
            if check_carry:
                checks = checks & next_c.eq(flag_c)

    return SafetyProperty(
        name=f"{name_prefix}_{instr.name.lower()}",
        expr=executing.implies(checks),
        description=f"architectural intent of {instr.name}: {instr.description}",
        start_cycle=1,
    )


@dataclass
class SingleIResult:
    """Outcome of checking one Single-I property."""

    instruction: str
    violated: bool
    runtime_seconds: float
    counterexample_cycles: int = 0
    counterexample_instructions: int = 0


class SingleIChecker:
    """Generate and check Single-I properties on a design version."""

    def __init__(
        self,
        design: Union[CoreConfig, DesignVersion, str],
        *,
        arch: ArchParams = TINY_PROFILE,
        symbolic_operands: bool = True,
        check_carry: bool = True,
        check_flags: bool = True,
        name_prefix: str = "single_i",
    ) -> None:
        if isinstance(design, CoreConfig):
            self.config = design
        else:
            self.config = config_for_version(design, arch=arch)
        self.symbolic_operands = symbolic_operands
        self.check_carry = check_carry
        self.check_flags = check_flags
        self.name_prefix = name_prefix
        self.design: Design = build_core(self.config)
        self.instructions = instructions_for_design(
            with_extension=self.config.with_extension
        )

    # ------------------------------------------------------------------
    def initial_state(self) -> Dict[str, object]:
        """Initial-state overrides: symbolic operands, empty pipeline."""
        overrides: Dict[str, object] = {}
        if not self.symbolic_operands:
            return overrides
        arch = self.config.arch
        for index in range(arch.num_regs):
            overrides[f"regs[{index}]"] = SYMBOLIC
        for flag in ("flag_z", "flag_c", "flag_n"):
            overrides[flag] = SYMBOLIC
        return overrides

    def assumptions_for(self, instr: Instruction) -> List[Assumption]:
        """Pin the cycle-0 injected instruction to *instr* with valid fields."""
        arch = self.config.arch
        layout = field_layout(arch)
        instr_in = BVVar("instr_in", arch.instr_width)
        instr_valid = BVVar("instr_valid", 1)

        def fetch(fieldname: str) -> BV:
            low, width = layout[fieldname]
            return instr_in[low : low + width]

        opcode_pinned = fetch("opcode").eq(BVConst(6, instr.opcode))
        regs_valid = (
            fetch("rd").ult(BVConst(4, arch.num_regs))
            & fetch("rs1").ult(BVConst(4, arch.num_regs))
            & fetch("rs2").ult(BVConst(4, arch.num_regs))
        )
        return [
            Assumption(
                name=f"pin_{instr.name.lower()}",
                expr=instr_valid & opcode_pinned & regs_valid,
                description=f"cycle 0 injects a {instr.name} with valid fields",
                only_cycle=0,
            )
        ]

    def property_for(self, instr: Instruction) -> SafetyProperty:
        """The Single-I property of *instr* under this checker's settings."""
        return single_i_property(
            instr,
            self.config.arch,
            check_carry=self.check_carry,
            check_flags=self.check_flags,
            name_prefix=self.name_prefix,
        )

    # ------------------------------------------------------------------
    def check_instruction(
        self, instr: Union[Instruction, str], *, max_bound: int = 2
    ) -> SingleIResult:
        """Check one instruction's Single-I property."""
        if isinstance(instr, str):
            matches = [i for i in self.instructions if i.name == instr.upper()]
            if not matches:
                raise KeyError(f"instruction {instr!r} not in this design's ISA")
            instr = matches[0]
        problem = BMCProblem(
            design=self.design,
            prop=self.property_for(instr),
            assumptions=self.assumptions_for(instr),
            initial_state=self.initial_state(),
            max_bound=max_bound,
        )
        start = time.perf_counter()
        result = BoundedModelChecker(problem).run()
        runtime = time.perf_counter() - start
        violated = result.status is BMCStatus.VIOLATION
        return SingleIResult(
            instruction=instr.name,
            violated=violated,
            runtime_seconds=runtime,
            counterexample_cycles=result.counterexample_length if violated else 0,
            counterexample_instructions=1 if violated else 0,
        )

    def check_all(
        self,
        *,
        max_bound: int = 2,
        instructions: Optional[Sequence[str]] = None,
    ) -> List[SingleIResult]:
        """Check every instruction (or the named subset) and return results."""
        selected = (
            [i for i in self.instructions if i.name in set(instructions)]
            if instructions is not None
            else self.instructions
        )
        return [
            self.check_instruction(instr, max_bound=max_bound)
            for instr in selected
        ]

    def violated_instructions(
        self, results: Optional[List[SingleIResult]] = None
    ) -> List[str]:
        """Names of instructions whose Single-I property fails."""
        if results is None:
            results = self.check_all()
        return [r.instruction for r in results if r.violated]
