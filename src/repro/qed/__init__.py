"""Symbolic Quick Error Detection (the paper's contribution).

The package implements the full Symbolic QED stack used in the case study:

* :mod:`repro.qed.eddiv` -- the EDDI-V transformation rules: register and
  memory pairing, the instruction subsets each QED mode may inject, and the
  word-level duplicate-instruction transformation.
* :mod:`repro.qed.qed_module` -- the QED module of [Ganesan 18]: inserted at
  the fetch interface during BMC only, it turns an arbitrary valid
  instruction stream chosen by the BMC tool into an interleaved
  original/duplicate EDDI-V sequence using an internal queue.
* :mod:`repro.qed.qed_cf` -- the Enhanced EDDI-V control-flow extension: the
  QED-CF module of Fig. 5, which records original branch outcomes and, on a
  mismatch with the duplicate outcome, lets the BMC tool inject an arbitrary
  instruction so the error surfaces as an EDDI-V check failure.
* :mod:`repro.qed.qed_mem` -- the Enhanced EDDI-V duplication-using-memory
  extension: original and duplicate results are spilled to disjoint memory
  regions and compared there, allowing instructions with fixed destination
  registers to participate in QED sequences.
* :mod:`repro.qed.consistency` -- QED-consistent start state and the
  register/memory pair consistency property.
* :mod:`repro.qed.single_i` -- Single-Instruction properties generated from
  the ISA catalogue (the architectural intent), with symbolic operands.
* :mod:`repro.qed.harness` -- the user-facing :class:`SymbolicQED` harness
  that composes a design with the chosen QED modules, runs BMC and
  interprets counterexamples as QED instruction sequences.
"""

from repro.qed.eddiv import EDDIVMapping, QEDMode, allowed_instructions
from repro.qed.consistency import qed_consistency_property, qed_consistent_start_state
from repro.qed.single_i import SingleIChecker, SingleIResult, single_i_property
from repro.qed.harness import QEDCheckResult, SymbolicQED
from repro.qed.counterexample import QEDCounterexample, interpret_counterexample

__all__ = [
    "EDDIVMapping",
    "QEDMode",
    "allowed_instructions",
    "qed_consistency_property",
    "qed_consistent_start_state",
    "SingleIChecker",
    "SingleIResult",
    "single_i_property",
    "QEDCheckResult",
    "SymbolicQED",
    "QEDCounterexample",
    "interpret_counterexample",
]
