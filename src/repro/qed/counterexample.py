"""Interpretation of BMC counterexamples as QED instruction sequences.

The raw counterexample produced by :mod:`repro.bmc` is a cycle-by-cycle
waveform.  For debugging -- the activity the paper measures in Table 3 -- the
interesting view is the *instruction sequence* the QED module injected: which
instructions were original, which were duplicates, where the failing pair
diverged.  :func:`interpret_counterexample` produces that view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bmc.trace import CounterexampleTrace
from repro.isa.arch import ArchParams
from repro.isa.encoding import decode


@dataclass(frozen=True)
class QEDInstructionEvent:
    """One instruction injected into the core during a counterexample."""

    cycle: int
    word: int
    mnemonic: str
    rendering: str
    origin: str  # "original", "duplicate", or a phase name for memory mode

    def __str__(self) -> str:
        return f"cycle {self.cycle:2d}  [{self.origin:9s}]  {self.rendering}"


@dataclass
class QEDCounterexample:
    """A decoded Symbolic QED counterexample."""

    design_name: str
    mode: str
    length_cycles: int
    events: List[QEDInstructionEvent] = field(default_factory=list)
    final_register_pairs: List[tuple] = field(default_factory=list)
    final_memory_pairs: List[tuple] = field(default_factory=list)

    @property
    def length_instructions(self) -> int:
        """Number of instructions injected in the counterexample."""
        return len(self.events)

    def mismatching_register_pairs(self) -> List[tuple]:
        """(index, original value, duplicate value) for unequal pairs."""
        return [
            (index, original, duplicate)
            for index, original, duplicate in self.final_register_pairs
            if original != duplicate
        ]

    def mismatching_memory_pairs(self) -> List[tuple]:
        """(address, original value, duplicate value) for unequal pairs."""
        return [
            (index, original, duplicate)
            for index, original, duplicate in self.final_memory_pairs
            if original != duplicate
        ]

    def report(self) -> str:
        """Human-readable report of the counterexample."""
        lines = [
            f"Symbolic QED counterexample on {self.design_name} "
            f"({self.mode} mode): {self.length_cycles} cycles, "
            f"{self.length_instructions} instructions",
        ]
        lines.extend(f"  {event}" for event in self.events)
        register_mismatches = self.mismatching_register_pairs()
        if register_mismatches:
            lines.append("  mismatching register pairs:")
            for index, original, duplicate in register_mismatches:
                lines.append(
                    f"    R{index} = {original}  vs  "
                    f"R{index}' = {duplicate}"
                )
        memory_mismatches = self.mismatching_memory_pairs()
        if memory_mismatches:
            lines.append("  mismatching memory pairs:")
            for index, original, duplicate in memory_mismatches:
                lines.append(
                    f"    mem[{index}] = {original}  vs  "
                    f"mem'[{index}] = {duplicate}"
                )
        return "\n".join(lines)


def interpret_counterexample(
    arch: ArchParams,
    trace: CounterexampleTrace,
    *,
    mode: str,
    register_pairs: Optional[List[tuple]] = None,
    memory_pairs: Optional[List[tuple]] = None,
) -> QEDCounterexample:
    """Decode a BMC counterexample trace into a QED instruction sequence.

    The harness exposes the instruction stream presented to the core as the
    design outputs ``qed_instruction_to_core`` / ``qed_valid_to_core`` and, in
    register-halving modes, the ``qed.original`` BMC input; the memory
    duplication mode is decoded from the module phase instead.
    """
    result = QEDCounterexample(
        design_name=trace.design_name,
        mode=mode,
        length_cycles=trace.length,
    )
    for cycle in range(trace.length):
        valid = trace.outputs[cycle].get("qed_valid_to_core", 0)
        if not valid:
            continue
        word = trace.outputs[cycle].get("qed_instruction_to_core", 0)
        encoded = decode(arch, word)
        if mode in ("eddiv", "eddiv_cf"):
            origin = (
                "original"
                if trace.inputs[cycle].get("qed.original", 0)
                else "duplicate"
            )
        else:
            phase = trace.states[cycle].get("qedmem.phase", 0)
            origin = {
                0: "original",
                1: "save-orig",
                2: "restore",
                3: "duplicate",
                4: "save-dup",
                5: "done",
            }.get(phase, f"phase{phase}")
        result.events.append(
            QEDInstructionEvent(
                cycle=cycle,
                word=word,
                mnemonic=encoded.mnemonic,
                rendering=encoded.render(),
                origin=origin,
            )
        )

    final_state = trace.states[-1] if trace.states else {}
    if register_pairs:
        for original, duplicate in register_pairs:
            result.final_register_pairs.append(
                (
                    original,
                    final_state.get(f"regs[{original}]", 0),
                    final_state.get(f"regs[{duplicate}]", 0),
                )
            )
    if memory_pairs:
        for original, duplicate in memory_pairs:
            result.final_memory_pairs.append(
                (
                    original,
                    final_state.get(f"dmem[{original}]", 0),
                    final_state.get(f"dmem[{duplicate}]", 0),
                )
            )
    return result
