"""Wall-clock deadlines threaded through the solve fabric.

A :class:`Deadline` is an *absolute* point on the monotonic clock by
which a piece of work must reach a terminal state.  It is deliberately
tiny: the whole fault-tolerance story (see :mod:`repro.serve` and
ISSUE 7) rests on every layer — HTTP front end, job queue, campaign,
BMC engine, CDCL solver, cube workers — agreeing on one representation
that is cheap to check and survives ``fork()``.

Design notes
------------

* **Monotonic, absolute.**  ``time.monotonic()`` on Linux is the
  system-wide ``CLOCK_MONOTONIC``, so an absolute expiry instant
  computed in the parent remains meaningful in a forked worker.  This
  is what lets ``dist/`` cube workers inherit *remaining* budget
  without any clock hand-off protocol.
* **Not part of cache keys.**  A deadline is a property of one
  *submission*, not of the problem: two jobs for the same spec with
  different budgets must share a cache entry.  ``JobSpec`` /
  ``BMCProblem.knobs_dict`` therefore never embed deadlines; callers
  pass them alongside the spec (``deadline_seconds`` on ``POST /jobs``)
  and the serving layer keeps them out of the canonical dicts.
* **Degrade, never lie.**  Expiry turns a run into UNKNOWN — which the
  result cache stores as non-definitive and monotonically upgrades
  when a later, luckier (or budget-less) run completes.  Expiry never
  invents a verdict.

The checks themselves are branch-cheap (`None` test + one float
compare) so call sites inside solver restart loops stay outside the
``# hot-loop`` lint regions yet still fire every few hundred conflicts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["Deadline"]


@dataclass(frozen=True)
class Deadline:
    """An absolute monotonic-clock expiry instant."""

    expires_at: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """Deadline ``seconds`` from now (clamped to be non-negative)."""
        if seconds < 0.0:
            seconds = 0.0
        return cls(expires_at=time.monotonic() + seconds)

    @classmethod
    def from_seconds(cls, seconds: Optional[float]) -> Optional["Deadline"]:
        """``None``-propagating convenience used at API boundaries."""
        if seconds is None:
            return None
        return cls.after(float(seconds))

    def remaining(self) -> float:
        """Seconds left; never negative."""
        left = self.expires_at - time.monotonic()
        return left if left > 0.0 else 0.0

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at
