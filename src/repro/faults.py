"""Deterministic seeded fault injection for the solve fabric.

The chaos harness (``tests/chaos/``) needs to *reproducibly* kill a
worker at the nth progress event, tear a cache-log write mid-record,
drop or duplicate a progress message, slow a solver down, or reset a
client connection — and then assert that the stack still reaches a
terminal state with a fault-free-consistent verdict.  This module is
the single switchboard those injection points talk to.

Usage::

    from repro import faults

    inj = faults.FaultInjector(
        [faults.FaultSpec(site="serve.queue.progress", action="kill",
                          at=2, once=True)],
        seed=7,
        token_dir=tmp_path,
    )
    faults.install(inj)
    try:
        ...  # run the workload
    finally:
        faults.clear()

Production call sites call the module-level helpers
(:func:`crash_point`, :func:`message_fate`, :func:`mangle_write`),
which are a single ``is None`` branch when no injector is installed —
cheap enough to leave compiled into the real paths.

Design constraints:

* **Fork-compatible.**  Injection points live inside forked pool
  workers (``serve/queue.py``, ``dist/scheduler.py``), so this module
  is in the fork-safety lint scope (``scripts/lint_repro.py``) and must
  not import ``threading``/``asyncio``.  State is plain module globals
  plus per-process dict counters; a forked child inherits the installed
  injector by memory snapshot.
* **Fire-once across retries.**  A "kill the worker once" fault must
  not re-fire after the queue replaces the broken pool — the fresh fork
  inherits the *parent's* counters, not the dead child's.  ``once=True``
  claims a token file in ``token_dir`` with ``O_CREAT | O_EXCL``, which
  is atomic across processes, so exactly one hit anywhere fires.
* **Deterministic.**  ``at=0`` asks the injector to derive the firing
  hit from ``seed`` (stable per ``(seed, site, spec index)``); the same
  seed always produces the same schedule.

Network-boundary sites (multi-host fleet)
-----------------------------------------

The remote-worker protocol (:mod:`repro.serve.fleet`) adds injection
points at the *wire*, not just inside processes:

* ``fleet.worker.heartbeat`` — :func:`message_fate` on each heartbeat
  send; ``drop`` simulates a partition long enough for lease expiry
  (the worker keeps its pending event batch for the next beat),
  ``duplicate`` sends the beat twice.
* ``fleet.worker.commit`` — :func:`crash_point` first (``delay`` turns
  the worker into a zombie whose lease expires before the commit
  lands, exercising fence rejection; ``kill`` dies with the result
  computed but unsent), then :func:`message_fate` on the send
  (``drop``/``duplicate``).
* ``serve.client.request`` (pre-existing) — ``reset`` covers the
  client-visible partition: connection torn mid-request.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.obs import trace as obs_trace

__all__ = [
    "FaultError",
    "FaultSpec",
    "FaultInjector",
    "install",
    "clear",
    "active",
    "crash_point",
    "message_fate",
    "mangle_write",
]

#: Exit status used by ``kill`` faults; distinctive enough to tell a
#: deliberate chaos kill from a genuine interpreter crash in CI logs.
KILL_EXIT_CODE = 86

ACTIONS = (
    "kill",        # os._exit the current process (no cleanup, like SIGKILL)
    "raise",       # raise FaultError at the call site
    "reset",       # raise ConnectionResetError (client/socket paths)
    "delay",       # sleep delay_seconds (slow solver / slow worker)
    "drop",        # message_fate() -> "drop"
    "duplicate",   # message_fate() -> "duplicate"; mangle_write doubles
    "torn_write",  # mangle_write() keeps only the first torn_bytes bytes
)


class FaultError(RuntimeError):
    """Raised by ``action="raise"`` faults at the injection site."""


@dataclass(frozen=True)
class FaultSpec:
    """One seeded fault: fire ``action`` at ``site`` on chosen hits.

    ``at`` is 1-based: the fault fires on hits ``at .. at+count-1`` of
    that site (``count=0`` means "from ``at`` forever").  ``at=0``
    derives the firing hit from the injector seed.  ``once=True``
    additionally caps firing to a single global occurrence via a token
    file shared across forked processes.
    """

    site: str
    action: str
    at: int = 1
    count: int = 1
    delay_seconds: float = 0.05
    torn_bytes: int = 8
    once: bool = False

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; one of {ACTIONS}"
            )
        if self.at < 0 or self.count < 0:
            raise ValueError("at/count must be non-negative")


class FaultInjector:
    """Holds the fault schedule and per-process hit counters."""

    def __init__(
        self,
        specs: List[FaultSpec],
        *,
        seed: int = 0,
        token_dir: Union[str, "os.PathLike[str]", None] = None,
    ) -> None:
        self.seed = int(seed)
        self.token_dir = os.fspath(token_dir) if token_dir is not None else None
        rng = random.Random(self.seed)
        resolved: List[FaultSpec] = []
        for index, spec in enumerate(specs):
            if spec.at == 0:
                # Seed-derived firing hit: stable for a given
                # (seed, position) pair, small enough to trigger in
                # short test workloads.
                derived = 1 + rng.randrange(4)
                spec = FaultSpec(
                    site=spec.site,
                    action=spec.action,
                    at=derived,
                    count=spec.count,
                    delay_seconds=spec.delay_seconds,
                    torn_bytes=spec.torn_bytes,
                    once=spec.once,
                )
            resolved.append(spec)
        self.specs: List[FaultSpec] = resolved
        self.hits: Dict[str, int] = {}
        #: Per-process log of fired faults, for test assertions:
        #: (site, action, hit_number).
        self.fired: List[Tuple[str, str, int]] = []

    # -- internals ---------------------------------------------------

    def _claim_once_token(self, index: int, spec: FaultSpec) -> bool:
        """Atomically claim the fire-once token; True if we won it."""
        if self.token_dir is None:
            return True
        name = f"fault-{index}-{spec.site.replace('.', '_')}-{spec.action}"
        path = os.path.join(self.token_dir, name)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def _firing(self, site: str) -> List[FaultSpec]:
        """Record a hit at ``site``; return the specs that fire on it."""
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        out: List[FaultSpec] = []
        for index, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if hit < spec.at:
                continue
            if spec.count and hit >= spec.at + spec.count:
                continue
            if spec.once and not self._claim_once_token(index, spec):
                continue
            self.fired.append((site, spec.action, hit))
            # Surface the firing on the active trace (if any) *before* the
            # fault is applied -- a SIGKILL action never returns, so this
            # event is often the flight recorder's last word on why a
            # worker died.
            obs_trace.event(
                "fault.fired", site=site, action=spec.action, hit=hit
            )
            out.append(spec)
        return out

    def _apply_inline(self, firing: List[FaultSpec]) -> List[FaultSpec]:
        """Apply kill/delay/raise/reset immediately; return the rest."""
        deferred: List[FaultSpec] = []
        for spec in firing:
            if spec.action == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.action == "kill":
                # os._exit mimics SIGKILL: no atexit hooks, no finally
                # blocks, no multiprocessing cleanup — the harshest
                # crash the parent must survive.
                os._exit(KILL_EXIT_CODE)
            elif spec.action == "raise":
                raise FaultError(f"injected fault at {spec.site}")
            elif spec.action == "reset":
                raise ConnectionResetError(
                    f"injected connection reset at {spec.site}"
                )
            else:
                deferred.append(spec)
        return deferred

    # -- call-site API -----------------------------------------------

    def crash_point(self, site: str) -> None:
        """Pure control-flow site: may kill, delay, or raise."""
        firing = self._firing(site)
        if firing:
            self._apply_inline(firing)

    def message_fate(self, site: str) -> str:
        """Message site: returns ``deliver``/``drop``/``duplicate``."""
        deferred = self._apply_inline(self._firing(site))
        for spec in deferred:
            if spec.action == "drop":
                return "drop"
            if spec.action == "duplicate":
                return "duplicate"
        return "deliver"

    def mangle_write(self, site: str, data: bytes) -> bytes:
        """Write site: may tear (truncate) or duplicate the payload."""
        deferred = self._apply_inline(self._firing(site))
        out = data
        for spec in deferred:
            if spec.action == "torn_write":
                out = out[: spec.torn_bytes]
            elif spec.action == "duplicate":
                out = out + data
        return out


# -- module-level switchboard ----------------------------------------

_INJECTOR: Optional[FaultInjector] = None


def install(injector: FaultInjector) -> None:
    """Install the process-wide injector (inherited by forks)."""
    global _INJECTOR
    _INJECTOR = injector


def clear() -> None:
    """Remove the installed injector; call sites become near-no-ops."""
    global _INJECTOR
    _INJECTOR = None


def active() -> Optional[FaultInjector]:
    return _INJECTOR


def crash_point(site: str) -> None:
    inj = _INJECTOR
    if inj is not None:
        inj.crash_point(site)


def message_fate(site: str) -> str:
    inj = _INJECTOR
    if inj is None:
        return "deliver"
    return inj.message_fate(site)


def mangle_write(site: str, data: bytes) -> bytes:
    inj = _INJECTOR
    if inj is None:
        return data
    return inj.mangle_write(site, data)
