"""The custom microcontroller instruction-set architecture.

The industrial cores in the paper implement a proprietary ISA with more than
50 instructions; this package defines an equivalent custom ISA ("MCA", the
Microcontroller Core Architecture): 57 base instructions plus one extension
instruction (``SATADD``) that only Designs B and C implement -- mirroring the
"one additional instruction in B and C (vs. A)" noted in the paper.

Contents
--------
* :mod:`repro.isa.arch` -- architecture profiles (data width, register count,
  memory size).
* :mod:`repro.isa.instructions` -- the instruction catalogue with operational
  semantics metadata.
* :mod:`repro.isa.encoding` -- binary instruction encoding and decoding.
* :mod:`repro.isa.assembler` -- a small two-pass assembler for writing
  directed tests and example programs.
* :mod:`repro.isa.golden` -- the ISA-level golden reference model used by the
  constrained-random testbench.
"""

from repro.isa.arch import ArchParams, FULL_PROFILE, SMALL_PROFILE, TINY_PROFILE
from repro.isa.instructions import (
    Instruction,
    InstructionClass,
    INSTRUCTIONS,
    instruction_by_name,
    instruction_by_opcode,
    instructions_for_design,
)
from repro.isa.encoding import EncodedInstruction, decode, encode, encode_fields
from repro.isa.assembler import AssemblerError, Program, assemble
from repro.isa.golden import ArchState, GoldenModel

__all__ = [
    "ArchParams",
    "TINY_PROFILE",
    "SMALL_PROFILE",
    "FULL_PROFILE",
    "Instruction",
    "InstructionClass",
    "INSTRUCTIONS",
    "instruction_by_name",
    "instruction_by_opcode",
    "instructions_for_design",
    "EncodedInstruction",
    "decode",
    "encode",
    "encode_fields",
    "AssemblerError",
    "Program",
    "assemble",
    "ArchState",
    "GoldenModel",
]
