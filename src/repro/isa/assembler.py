"""A small two-pass assembler.

The assembler exists so directed tests (:mod:`repro.indverif.dst`) and the
example programs can be written as readable source instead of hand-packed
words.  Syntax::

    ; comment
    start:
        LDI  R1, #3
        LDI  R2, #4
        ADD  R3, R1, R2
        CMPI R3, #7
        BZ   @done
        HALT
    done:
        STA  #0, R3
        HALT

Operands are written in the order destination, sources, immediate; register
operands are ``R<n>``, immediates ``#<value>``, and branch/jump targets may
reference labels with ``@label``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.arch import ArchParams
from repro.isa.encoding import encode
from repro.isa.instructions import Instruction, instruction_by_name


class AssemblerError(ValueError):
    """Raised on malformed assembly source."""


@dataclass
class Program:
    """An assembled program."""

    arch: ArchParams
    words: List[int] = field(default_factory=list)
    source_lines: List[str] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.words)

    def word_at(self, address: int) -> int:
        """Instruction word at *address* (NOP beyond the end)."""
        if 0 <= address < len(self.words):
            return self.words[address]
        return 0

    def listing(self) -> str:
        """Return an address / word / source listing."""
        lines = []
        for address, (word, source) in enumerate(
            zip(self.words, self.source_lines)
        ):
            lines.append(f"{address:3d}: {word:0{6}x}  {source}")
        return "\n".join(lines)


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z_0-9]*):$")
_TOKEN_SPLIT_RE = re.compile(r"[,\s]+")


def _strip_comment(line: str) -> str:
    for marker in (";", "//", "#!"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_operand(token: str) -> Tuple[str, object]:
    token = token.strip()
    if not token:
        raise AssemblerError("empty operand")
    if token[0] in "Rr" and token[1:].isdigit():
        return "reg", int(token[1:])
    if token.startswith("#"):
        try:
            return "imm", int(token[1:], 0)
        except ValueError as exc:
            raise AssemblerError(f"bad immediate {token!r}") from exc
    if token.startswith("@"):
        return "label", token[1:]
    try:
        return "imm", int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"cannot parse operand {token!r}") from exc


def _operand_slots(instruction: Instruction) -> List[str]:
    """The operand order expected in source for *instruction*."""
    slots: List[str] = []
    if instruction.writes_rd and instruction.fixed_rd is None:
        slots.append("rd")
    if instruction.name in ("ST", "STO", "STA"):
        # Stores are written "ST [addr-operands], value" -> address first.
        if instruction.reads_rs1:
            slots.append("rs1")
        if instruction.uses_imm:
            slots.append("imm")
        slots.append("rs2")
        return slots
    if instruction.reads_rs1:
        slots.append("rs1")
    if instruction.reads_rs2:
        slots.append("rs2")
    if instruction.uses_imm:
        slots.append("imm")
    return slots


def assemble(source: str, arch: ArchParams) -> Program:
    """Assemble *source* into a :class:`Program` for *arch*."""
    # Pass 1: collect labels and instruction lines.
    pending: List[Tuple[str, str]] = []  # (mnemonic line, original source)
    labels: Dict[str, int] = {}
    for raw_line in source.splitlines():
        line = _strip_comment(raw_line)
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group(1)
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}")
            labels[label] = len(pending)
            continue
        pending.append((line, raw_line.strip()))

    if len(pending) > arch.imem_words:
        raise AssemblerError(
            f"program has {len(pending)} instructions but the instruction "
            f"memory holds only {arch.imem_words}"
        )

    # Pass 2: encode.
    program = Program(arch=arch, labels=dict(labels))
    for address, (line, original) in enumerate(pending):
        tokens = [t for t in _TOKEN_SPLIT_RE.split(line) if t]
        mnemonic, operand_tokens = tokens[0], tokens[1:]
        try:
            instruction = instruction_by_name(mnemonic)
        except KeyError as exc:
            raise AssemblerError(f"line {address}: {exc}") from exc
        slots = _operand_slots(instruction)
        if len(operand_tokens) != len(slots):
            raise AssemblerError(
                f"line {address}: {mnemonic} expects {len(slots)} operands "
                f"({', '.join(slots)}), got {len(operand_tokens)}"
            )
        fields = {"rd": 0, "rs1": 0, "rs2": 0, "imm": 0}
        for slot, token in zip(slots, operand_tokens):
            kind, value = _parse_operand(token)
            if slot == "imm":
                if kind == "label":
                    if value not in labels:
                        raise AssemblerError(
                            f"line {address}: unknown label {value!r}"
                        )
                    fields["imm"] = labels[value]
                elif kind == "imm":
                    fields["imm"] = int(value)
                else:
                    raise AssemblerError(
                        f"line {address}: expected immediate, got register"
                    )
            else:
                if kind != "reg":
                    raise AssemblerError(
                        f"line {address}: operand for {slot} must be a register"
                    )
                fields[slot] = int(value)
        try:
            word = encode(
                arch,
                instruction,
                rd=fields["rd"],
                rs1=fields["rs1"],
                rs2=fields["rs2"],
                imm=fields["imm"],
            )
        except Exception as exc:
            raise AssemblerError(f"line {address}: {exc}") from exc
        program.words.append(word)
        program.source_lines.append(original)
    return program
