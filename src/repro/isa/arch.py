"""Architecture profiles.

The industrial designs are ~1,800 flip-flops and ~70,000 gates; a pure-Python
BMC cannot unroll a design of that size in seconds, so the reproduction scales
the datapath while keeping the structural properties Symbolic QED relies on
(2-stage in-order pipeline, >50-instruction ISA, register file with an even
number of registers so EDDI-V can split it into halves, a small data memory
that can also be split, and a flags register consumed only by branches).

Three profiles are provided:

* ``TINY_PROFILE`` -- 4-bit datapath, 8 registers.  Used by the unit tests and
  most of the benchmark harness so BMC queries solve in seconds (the regime
  the paper reports for the commercial engine on the real cores).
* ``SMALL_PROFILE`` -- 8-bit datapath, 16 registers.  The default for
  examples; closer to the published designs.
* ``FULL_PROFILE`` -- 16-bit datapath, 16 registers, larger memory.  Used to
  measure how the approach scales (optional long-running benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArchParams:
    """Parameters of one architecture profile.

    Attributes
    ----------
    name:
        Profile identifier used in reports.
    xlen:
        Data-path width in bits (register and memory word size).
    num_regs:
        Number of architectural registers.  Must be even so that EDDI-V can
        pair register ``a`` with register ``a + num_regs/2``.
    dmem_words:
        Number of data-memory words.  Must be even so that EDDI-V can split
        the memory space into an original and a duplicate half.
    imem_words:
        Number of instruction-memory (ROM) words available to programs.
    imm_width:
        Width of the immediate field in the instruction encoding.
    """

    name: str
    xlen: int
    num_regs: int
    dmem_words: int
    imem_words: int
    imm_width: int = 6

    def __post_init__(self) -> None:
        if self.xlen < 2:
            raise ValueError("xlen must be at least 2 bits")
        if self.num_regs < 4 or self.num_regs % 2:
            raise ValueError("num_regs must be an even number >= 4")
        if self.num_regs > 16:
            raise ValueError("the encoding supports at most 16 registers")
        if self.dmem_words < 2 or self.dmem_words % 2:
            raise ValueError("dmem_words must be an even number >= 2")
        if self.imm_width < 4 or self.imm_width > 8:
            raise ValueError("imm_width must be between 4 and 8 bits")

    # ------------------------------------------------------------------
    @property
    def reg_field_width(self) -> int:
        """Width of a register-specifier field in the encoding (fixed at 4)."""
        return 4

    @property
    def reg_index_width(self) -> int:
        """Number of bits needed to index the register file."""
        return max(1, (self.num_regs - 1).bit_length())

    @property
    def dmem_addr_width(self) -> int:
        """Number of bits needed to address the data memory."""
        return max(1, (self.dmem_words - 1).bit_length())

    @property
    def pc_width(self) -> int:
        """Width of the program counter."""
        return max(1, (self.imem_words - 1).bit_length())

    @property
    def instr_width(self) -> int:
        """Width of one encoded instruction word."""
        # opcode(6) + rd(4) + rs1(4) + rs2(4) + imm(imm_width)
        return 6 + 4 + 4 + 4 + self.imm_width

    @property
    def half_regs(self) -> int:
        """Number of registers in each EDDI-V half."""
        return self.num_regs // 2

    @property
    def half_dmem(self) -> int:
        """Number of data-memory words in each EDDI-V half."""
        return self.dmem_words // 2

    @property
    def xlen_mask(self) -> int:
        """Bit mask of the data-path width."""
        return (1 << self.xlen) - 1

    def register_name(self, index: int) -> str:
        """Conventional name of register *index* (``R0`` ... ``R15``)."""
        if not 0 <= index < self.num_regs:
            raise ValueError(f"register index {index} out of range")
        return f"R{index}"

    # -- canonical serialization ---------------------------------------
    def to_json_dict(self) -> dict:
        """Canonical, versioned JSON form (every field explicit).

        Two equal profiles always serialize to the same dict, which is what
        lets content-addressed cache keys (:mod:`repro.serve.keys`) treat
        semantically identical requests as identical.
        """
        return {
            "format": 1,
            "name": self.name,
            "xlen": self.xlen,
            "num_regs": self.num_regs,
            "dmem_words": self.dmem_words,
            "imem_words": self.imem_words,
            "imm_width": self.imm_width,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "ArchParams":
        """Inverse of :meth:`to_json_dict` (validates the format tag)."""
        if data.get("format", 1) != 1:
            raise ValueError(f"unsupported ArchParams format {data.get('format')!r}")
        return cls(
            name=str(data["name"]),
            xlen=int(data["xlen"]),
            num_regs=int(data["num_regs"]),
            dmem_words=int(data["dmem_words"]),
            imem_words=int(data["imem_words"]),
            imm_width=int(data.get("imm_width", 6)),
        )


TINY_PROFILE = ArchParams(
    name="tiny", xlen=4, num_regs=8, dmem_words=4, imem_words=32, imm_width=5
)

SMALL_PROFILE = ArchParams(
    name="small", xlen=8, num_regs=16, dmem_words=16, imem_words=64, imm_width=6
)

FULL_PROFILE = ArchParams(
    name="full", xlen=16, num_regs=16, dmem_words=32, imem_words=64, imm_width=6
)

PROFILES = {
    "tiny": TINY_PROFILE,
    "small": SMALL_PROFILE,
    "full": FULL_PROFILE,
}


def profile_by_name(name: str) -> ArchParams:
    """Return a profile by name (``tiny``, ``small`` or ``full``)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
