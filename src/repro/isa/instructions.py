"""The instruction catalogue.

Every instruction carries the metadata needed by the decoder, the RTL core,
the golden model, the QED module (which must know how to duplicate it and
whether it may appear in a QED sequence) and the Single-I property generator.

The catalogue contains 57 base instructions (Design A) plus the ``SATADD``
extension implemented only by Designs B and C, mirroring the paper's "one
additional instruction in B and C (vs. A)".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple


class InstructionClass(Enum):
    """Coarse instruction classes used for decoding and test generation."""

    SYSTEM = "system"
    ALU_RR = "alu_rr"
    ALU_RI = "alu_ri"
    UNARY = "unary"
    IMM_LOAD = "imm_load"
    MEMORY = "memory"
    COMPARE = "compare"
    BRANCH_FLAG = "branch_flag"
    BRANCH_REG = "branch_reg"
    JUMP = "jump"
    EXTENSION = "extension"


class FlagsUpdate(Enum):
    """How an instruction updates the Z/C/N flags register."""

    NONE = "none"
    LOGIC = "logic"          # Z and N from the result, C unchanged
    ARITH_ADD = "arith_add"  # Z, N from result; C = carry out
    ARITH_SUB = "arith_sub"  # Z, N from result; C = no-borrow


@dataclass(frozen=True)
class Instruction:
    """Static description of one ISA instruction."""

    name: str
    opcode: int
    iclass: InstructionClass
    description: str
    writes_rd: bool = False
    fixed_rd: Optional[int] = None
    reads_rs1: bool = False
    reads_rs2: bool = False
    uses_imm: bool = False
    flags: FlagsUpdate = FlagsUpdate.NONE
    uses_flags: bool = False
    is_control_flow: bool = False
    is_load: bool = False
    is_store: bool = False
    extension: bool = False

    @property
    def is_memory(self) -> bool:
        """Whether the instruction accesses data memory."""
        return self.is_load or self.is_store

    @property
    def is_branch(self) -> bool:
        """Whether the instruction is a conditional branch."""
        return self.iclass in (
            InstructionClass.BRANCH_FLAG,
            InstructionClass.BRANCH_REG,
        )

    @property
    def sets_flags(self) -> bool:
        """Whether the instruction updates any flag."""
        return self.flags is not FlagsUpdate.NONE

    def __str__(self) -> str:
        return self.name


def _mk(
    name: str,
    opcode: int,
    iclass: InstructionClass,
    description: str,
    **kwargs,
) -> Instruction:
    return Instruction(name, opcode, iclass, description, **kwargs)


_ALU_RR_NAMES: List[Tuple[str, str]] = [
    ("ADD", "rd = rs1 + rs2"),
    ("SUB", "rd = rs1 - rs2"),
    ("AND", "rd = rs1 & rs2"),
    ("OR", "rd = rs1 | rs2"),
    ("XOR", "rd = rs1 ^ rs2"),
    ("NAND", "rd = ~(rs1 & rs2)"),
    ("NOR", "rd = ~(rs1 | rs2)"),
    ("XNOR", "rd = ~(rs1 ^ rs2)"),
    ("MUL", "rd = (rs1 * rs2) mod 2^XLEN"),
    ("MIN", "rd = unsigned minimum of rs1, rs2"),
    ("MAX", "rd = unsigned maximum of rs1, rs2"),
    ("SLL", "rd = rs1 << rs2 (logical)"),
    ("SRL", "rd = rs1 >> rs2 (logical)"),
    ("SRA", "rd = rs1 >> rs2 (arithmetic)"),
]

_ALU_RI_NAMES: List[Tuple[str, str]] = [
    ("ADDI", "rd = rs1 + zext(imm)"),
    ("SUBI", "rd = rs1 - zext(imm)"),
    ("ANDI", "rd = rs1 & zext(imm)"),
    ("ORI", "rd = rs1 | zext(imm)"),
    ("XORI", "rd = rs1 ^ zext(imm)"),
    ("SLLI", "rd = rs1 << imm"),
    ("SRLI", "rd = rs1 >> imm (logical)"),
    ("SRAI", "rd = rs1 >> imm (arithmetic)"),
]

_UNARY_NAMES: List[Tuple[str, str]] = [
    ("NOT", "rd = ~rs1"),
    ("NEG", "rd = -rs1 (two's complement)"),
    ("MOV", "rd = rs1"),
    ("INC", "rd = rs1 + 1"),
    ("DEC", "rd = rs1 - 1"),
    ("ROL", "rd = rs1 rotated left by one bit"),
    ("ROR", "rd = rs1 rotated right by one bit"),
    ("SWAP", "rd = rs1 with upper/lower halves exchanged"),
    ("PARITY", "rd = XOR-reduction of rs1 (0 or 1)"),
    ("ABS", "rd = absolute value of rs1 (signed)"),
]


def _build_catalogue() -> List[Instruction]:
    catalogue: List[Instruction] = []
    opcode = 0

    def nxt() -> int:
        nonlocal opcode
        value = opcode
        opcode += 1
        return value

    # System.
    catalogue.append(_mk("NOP", nxt(), InstructionClass.SYSTEM, "no operation"))
    catalogue.append(
        _mk("HALT", nxt(), InstructionClass.SYSTEM, "stop instruction issue")
    )

    # Register-register ALU.
    for name, description in _ALU_RR_NAMES:
        flags = (
            FlagsUpdate.ARITH_ADD
            if name == "ADD"
            else FlagsUpdate.ARITH_SUB
            if name == "SUB"
            else FlagsUpdate.LOGIC
        )
        catalogue.append(
            _mk(
                name,
                nxt(),
                InstructionClass.ALU_RR,
                description,
                writes_rd=True,
                reads_rs1=True,
                reads_rs2=True,
                flags=flags,
            )
        )

    # Register-immediate ALU.
    for name, description in _ALU_RI_NAMES:
        flags = (
            FlagsUpdate.ARITH_ADD
            if name == "ADDI"
            else FlagsUpdate.ARITH_SUB
            if name == "SUBI"
            else FlagsUpdate.LOGIC
        )
        catalogue.append(
            _mk(
                name,
                nxt(),
                InstructionClass.ALU_RI,
                description,
                writes_rd=True,
                reads_rs1=True,
                uses_imm=True,
                flags=flags,
            )
        )

    # Unary register operations.
    for name, description in _UNARY_NAMES:
        flags = (
            FlagsUpdate.ARITH_ADD
            if name == "INC"
            else FlagsUpdate.ARITH_SUB
            if name in ("DEC", "NEG")
            else FlagsUpdate.LOGIC
        )
        catalogue.append(
            _mk(
                name,
                nxt(),
                InstructionClass.UNARY,
                description,
                writes_rd=True,
                reads_rs1=True,
                flags=flags,
            )
        )

    # Immediate loads.
    catalogue.append(
        _mk(
            "LDI",
            nxt(),
            InstructionClass.IMM_LOAD,
            "rd = zext(imm)",
            writes_rd=True,
            uses_imm=True,
        )
    )
    catalogue.append(
        _mk(
            "LDIH",
            nxt(),
            InstructionClass.IMM_LOAD,
            "rd = imm shifted into the upper half of the word",
            writes_rd=True,
            uses_imm=True,
        )
    )
    catalogue.append(
        _mk(
            "LDIL",
            nxt(),
            InstructionClass.IMM_LOAD,
            "R0 = zext(imm); the destination register is fixed to R0",
            writes_rd=True,
            fixed_rd=0,
            uses_imm=True,
        )
    )

    # Memory.
    catalogue.append(
        _mk(
            "LD",
            nxt(),
            InstructionClass.MEMORY,
            "rd = dmem[rs1]",
            writes_rd=True,
            reads_rs1=True,
            is_load=True,
        )
    )
    catalogue.append(
        _mk(
            "ST",
            nxt(),
            InstructionClass.MEMORY,
            "dmem[rs1] = rs2",
            reads_rs1=True,
            reads_rs2=True,
            is_store=True,
        )
    )
    catalogue.append(
        _mk(
            "LDO",
            nxt(),
            InstructionClass.MEMORY,
            "rd = dmem[rs1 + imm]",
            writes_rd=True,
            reads_rs1=True,
            uses_imm=True,
            is_load=True,
        )
    )
    catalogue.append(
        _mk(
            "STO",
            nxt(),
            InstructionClass.MEMORY,
            "dmem[rs1 + imm] = rs2",
            reads_rs1=True,
            reads_rs2=True,
            uses_imm=True,
            is_store=True,
        )
    )
    catalogue.append(
        _mk(
            "LDA",
            nxt(),
            InstructionClass.MEMORY,
            "rd = dmem[imm] (absolute address)",
            writes_rd=True,
            uses_imm=True,
            is_load=True,
        )
    )
    catalogue.append(
        _mk(
            "STA",
            nxt(),
            InstructionClass.MEMORY,
            "dmem[imm] = rs2 (absolute address)",
            reads_rs2=True,
            uses_imm=True,
            is_store=True,
        )
    )

    # Compare / test (flags only).
    catalogue.append(
        _mk(
            "CMP",
            nxt(),
            InstructionClass.COMPARE,
            "set flags from rs1 - rs2",
            reads_rs1=True,
            reads_rs2=True,
            flags=FlagsUpdate.ARITH_SUB,
        )
    )
    catalogue.append(
        _mk(
            "CMPI",
            nxt(),
            InstructionClass.COMPARE,
            "set flags from rs1 - zext(imm); the architectural intent is that "
            "Z, N and C are all updated (like CMP)",
            reads_rs1=True,
            uses_imm=True,
            flags=FlagsUpdate.ARITH_SUB,
        )
    )
    catalogue.append(
        _mk(
            "TST",
            nxt(),
            InstructionClass.COMPARE,
            "set Z/N flags from rs1",
            reads_rs1=True,
            flags=FlagsUpdate.LOGIC,
        )
    )

    # Flag-based branches (absolute target in imm).
    for name, description in [
        ("BZ", "branch to imm if Z flag set (previous result was zero)"),
        ("BNZ", "branch to imm if Z flag clear"),
        ("BC", "branch to imm if C flag set"),
        ("BNC", "branch to imm if C flag clear"),
        ("BN", "branch to imm if N flag set (previous result negative)"),
        ("BNN", "branch to imm if N flag clear"),
    ]:
        catalogue.append(
            _mk(
                name,
                nxt(),
                InstructionClass.BRANCH_FLAG,
                description,
                uses_imm=True,
                uses_flags=True,
                is_control_flow=True,
            )
        )

    # Register-compare branches.
    for name, description in [
        ("BEQ", "branch to imm if rs1 == rs2"),
        ("BNE", "branch to imm if rs1 != rs2"),
    ]:
        catalogue.append(
            _mk(
                name,
                nxt(),
                InstructionClass.BRANCH_REG,
                description,
                reads_rs1=True,
                reads_rs2=True,
                uses_imm=True,
                is_control_flow=True,
            )
        )

    # Jumps.
    catalogue.append(
        _mk(
            "JMP",
            nxt(),
            InstructionClass.JUMP,
            "unconditional jump to imm",
            uses_imm=True,
            is_control_flow=True,
        )
    )
    catalogue.append(
        _mk(
            "JR",
            nxt(),
            InstructionClass.JUMP,
            "unconditional jump to the address in rs1",
            reads_rs1=True,
            is_control_flow=True,
        )
    )
    catalogue.append(
        _mk(
            "JAL",
            nxt(),
            InstructionClass.JUMP,
            "rd = pc + 1; jump to imm",
            writes_rd=True,
            uses_imm=True,
            is_control_flow=True,
        )
    )

    # Extension instruction (Designs B and C only).
    catalogue.append(
        _mk(
            "SATADD",
            nxt(),
            InstructionClass.EXTENSION,
            "rd = unsigned saturating rs1 + rs2 (clamps at the maximum value)",
            writes_rd=True,
            reads_rs1=True,
            reads_rs2=True,
            flags=FlagsUpdate.ARITH_ADD,
            extension=True,
        )
    )
    return catalogue


INSTRUCTIONS: List[Instruction] = _build_catalogue()

_BY_NAME: Dict[str, Instruction] = {instr.name: instr for instr in INSTRUCTIONS}
_BY_OPCODE: Dict[int, Instruction] = {
    instr.opcode: instr for instr in INSTRUCTIONS
}

OPCODE_WIDTH = 6
NUM_BASE_INSTRUCTIONS = sum(1 for instr in INSTRUCTIONS if not instr.extension)
NUM_INSTRUCTIONS = len(INSTRUCTIONS)


def instruction_by_name(name: str) -> Instruction:
    """Look up an instruction by mnemonic (case-insensitive)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(f"unknown instruction mnemonic {name!r}") from None


def instruction_by_opcode(opcode: int) -> Optional[Instruction]:
    """Look up an instruction by opcode, ``None`` for unused encodings."""
    return _BY_OPCODE.get(opcode)


def instructions_for_design(with_extension: bool) -> List[Instruction]:
    """Return the instruction set of a design family.

    Design A implements the base set; Designs B and C additionally implement
    the ``SATADD`` extension.
    """
    if with_extension:
        return list(INSTRUCTIONS)
    return [instr for instr in INSTRUCTIONS if not instr.extension]
