"""Binary instruction encoding and decoding.

The encoding is a single fixed-width word::

    | opcode (6) | rd (4) | rs1 (4) | rs2 (4) | imm (imm_width) |

Fields an instruction does not use are don't-care and encoded as zero by the
assembler; the decoder always extracts all fields and lets the consumer pick
the ones that matter (exactly how the RTL decode stage works).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.isa.arch import ArchParams
from repro.isa.instructions import (
    Instruction,
    OPCODE_WIDTH,
    instruction_by_name,
    instruction_by_opcode,
)


class EncodingError(ValueError):
    """Raised when a field does not fit its encoding slot."""


@dataclass(frozen=True)
class EncodedInstruction:
    """A decoded view of one instruction word."""

    word: int
    instruction: Optional[Instruction]
    opcode: int
    rd: int
    rs1: int
    rs2: int
    imm: int

    @property
    def is_valid(self) -> bool:
        """Whether the opcode maps to a defined instruction."""
        return self.instruction is not None

    @property
    def mnemonic(self) -> str:
        """Instruction mnemonic, or ``ILLEGAL`` for undefined opcodes."""
        return self.instruction.name if self.instruction else "ILLEGAL"

    def render(self) -> str:
        """Human-readable disassembly of the instruction."""
        if self.instruction is None:
            return f"ILLEGAL(0x{self.word:x})"
        instr = self.instruction
        parts = []
        if instr.writes_rd and instr.fixed_rd is None:
            parts.append(f"R{self.rd}")
        if instr.fixed_rd is not None:
            parts.append(f"R{instr.fixed_rd}")
        if instr.reads_rs1:
            parts.append(f"R{self.rs1}")
        if instr.reads_rs2:
            parts.append(f"R{self.rs2}")
        if instr.uses_imm:
            parts.append(f"#{self.imm}")
        return instr.name + (" " + ", ".join(parts) if parts else "")


def field_layout(arch: ArchParams) -> dict:
    """Return the bit positions of each field for *arch*.

    The returned dict maps field name to ``(low_bit, width)``.
    """
    imm_width = arch.imm_width
    return {
        "imm": (0, imm_width),
        "rs2": (imm_width, 4),
        "rs1": (imm_width + 4, 4),
        "rd": (imm_width + 8, 4),
        "opcode": (imm_width + 12, OPCODE_WIDTH),
    }


def encode_fields(
    arch: ArchParams,
    opcode: int,
    rd: int = 0,
    rs1: int = 0,
    rs2: int = 0,
    imm: int = 0,
) -> int:
    """Pack raw field values into an instruction word."""
    layout = field_layout(arch)
    values = {"opcode": opcode, "rd": rd, "rs1": rs1, "rs2": rs2, "imm": imm}
    word = 0
    for field, (low, width) in layout.items():
        value = values[field]
        if not 0 <= value < (1 << width):
            raise EncodingError(
                f"field {field}={value} does not fit in {width} bits"
            )
        word |= value << low
    return word


def encode(
    arch: ArchParams,
    instruction: Union[str, Instruction],
    *,
    rd: int = 0,
    rs1: int = 0,
    rs2: int = 0,
    imm: int = 0,
) -> int:
    """Encode an instruction given by mnemonic or catalogue entry.

    Register indices are validated against the architecture profile and
    immediates against the immediate field width.
    """
    if isinstance(instruction, str):
        instruction = instruction_by_name(instruction)
    for label, index, used in [
        ("rd", rd, instruction.writes_rd and instruction.fixed_rd is None),
        ("rs1", rs1, instruction.reads_rs1),
        ("rs2", rs2, instruction.reads_rs2),
    ]:
        if used and not 0 <= index < arch.num_regs:
            raise EncodingError(
                f"{label}={index} out of range for {arch.num_regs} registers"
            )
    if instruction.uses_imm and not 0 <= imm < (1 << arch.imm_width):
        raise EncodingError(
            f"imm={imm} does not fit in {arch.imm_width} bits"
        )
    if instruction.fixed_rd is not None:
        rd = instruction.fixed_rd
    return encode_fields(
        arch, instruction.opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm
    )


def decode(arch: ArchParams, word: int) -> EncodedInstruction:
    """Decode an instruction word into its fields."""
    layout = field_layout(arch)
    fields = {
        name: (word >> low) & ((1 << width) - 1)
        for name, (low, width) in layout.items()
    }
    instruction = instruction_by_opcode(fields["opcode"])
    return EncodedInstruction(
        word=word & ((1 << arch.instr_width) - 1),
        instruction=instruction,
        opcode=fields["opcode"],
        rd=fields["rd"],
        rs1=fields["rs1"],
        rs2=fields["rs2"],
        imm=fields["imm"],
    )


def nop_word(arch: ArchParams) -> int:
    """Return the canonical NOP encoding (all fields zero)."""
    return encode(arch, "NOP")
