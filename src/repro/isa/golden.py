"""ISA-level golden reference model.

This is the executable version of the design specification document.  The
constrained-random testbench (:mod:`repro.indverif.crs`) compares the RTL
cores against this model instruction by instruction, exactly like the UVM
scoreboard of the paper's industrial flow.

.. note::

   The model can be configured (``cmpi_carry_broken=True``) to reproduce the
   *specification bug* of Design A's final versions: the amended specification
   states that ``CMPI`` leaves the carry flag untouched, whereas the original
   architectural intent (and the Single-I property written independently from
   the ISA catalogue in :mod:`repro.qed.single_i`) updates Z, N **and** C like
   ``CMP``.  Because the RTL and this specification model agree with each
   other, simulation-based flows cannot observe the discrepancy -- this is the
   "+7%" specification bug of Fig. 8 that only Symbolic QED reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.arch import ArchParams
from repro.isa.encoding import EncodedInstruction, decode
from repro.isa.instructions import FlagsUpdate, Instruction, InstructionClass


@dataclass
class ArchState:
    """Architectural state of the golden model."""

    arch: ArchParams
    regs: List[int] = field(default_factory=list)
    dmem: List[int] = field(default_factory=list)
    pc: int = 0
    flag_z: int = 0
    flag_c: int = 0
    flag_n: int = 0
    halted: bool = False

    def __post_init__(self) -> None:
        if not self.regs:
            self.regs = [0] * self.arch.num_regs
        if not self.dmem:
            self.dmem = [0] * self.arch.dmem_words

    def copy(self) -> "ArchState":
        """Return an independent copy of the state."""
        return ArchState(
            arch=self.arch,
            regs=list(self.regs),
            dmem=list(self.dmem),
            pc=self.pc,
            flag_z=self.flag_z,
            flag_c=self.flag_c,
            flag_n=self.flag_n,
            halted=self.halted,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArchState):
            return NotImplemented
        return (
            self.regs == other.regs
            and self.dmem == other.dmem
            and self.pc == other.pc
            and (self.flag_z, self.flag_c, self.flag_n)
            == (other.flag_z, other.flag_c, other.flag_n)
            and self.halted == other.halted
        )


class GoldenModel:
    """Instruction-accurate execution of the ISA specification."""

    def __init__(
        self,
        arch: ArchParams,
        *,
        with_extension: bool = True,
        cmpi_carry_broken: bool = False,
    ) -> None:
        self.arch = arch
        self.with_extension = with_extension
        # When True, CMPI leaves the carry flag untouched.  This mirrors the
        # amended (incorrect) specification of Design A's final versions: the
        # RTL and the specification agree with each other, so simulation
        # against this model cannot expose the discrepancy with the original
        # architectural intent (the paper's "+7%" bug).
        self.cmpi_carry_broken = cmpi_carry_broken

    # ------------------------------------------------------------------
    def initial_state(self) -> ArchState:
        """The reset architectural state (everything zero)."""
        return ArchState(arch=self.arch)

    def execute_word(self, state: ArchState, word: int) -> ArchState:
        """Execute one encoded instruction word and return the new state."""
        return self.execute(state, decode(self.arch, word))

    # ------------------------------------------------------------------
    def execute(self, state: ArchState, enc: EncodedInstruction) -> ArchState:
        """Execute one decoded instruction and return the new state."""
        arch = self.arch
        new = state.copy()
        if state.halted:
            return new

        instr = enc.instruction
        if instr is None or (instr.extension and not self.with_extension):
            # Undefined opcodes behave as NOP (the RTL decodes them the same
            # way; a production core would trap, but these cores do not
            # implement exceptions).
            new.pc = (state.pc + 1) % arch.imem_words
            return new

        mask = arch.xlen_mask
        rs1_val = state.regs[enc.rs1 % arch.num_regs]
        rs2_val = state.regs[enc.rs2 % arch.num_regs]
        imm = enc.imm
        next_pc = (state.pc + 1) % arch.imem_words

        result: Optional[int] = None
        carry: Optional[int] = None
        write_reg: Optional[int] = None

        name = instr.name
        if name == "NOP":
            pass
        elif name == "HALT":
            new.halted = True
        elif instr.iclass in (InstructionClass.ALU_RR, InstructionClass.EXTENSION):
            result, carry = self._alu_rr(name, rs1_val, rs2_val)
            write_reg = enc.rd
        elif instr.iclass is InstructionClass.ALU_RI:
            result, carry = self._alu_ri(name, rs1_val, imm)
            write_reg = enc.rd
        elif instr.iclass is InstructionClass.UNARY:
            result, carry = self._unary(name, rs1_val)
            write_reg = enc.rd
        elif instr.iclass is InstructionClass.IMM_LOAD:
            if name == "LDI":
                result = imm & mask
            elif name == "LDIH":
                result = (imm << (arch.xlen // 2)) & mask
            else:  # LDIL
                result = imm & mask
            write_reg = instr.fixed_rd if instr.fixed_rd is not None else enc.rd
        elif instr.iclass is InstructionClass.MEMORY:
            address = self._memory_address(name, rs1_val, imm)
            if instr.is_load:
                result = state.dmem[address]
                write_reg = enc.rd
            else:
                new.dmem[address] = rs2_val
        elif instr.iclass is InstructionClass.COMPARE:
            if name == "CMP":
                result, carry = self._sub(rs1_val, rs2_val)
            elif name == "CMPI":
                result, carry = self._sub(rs1_val, imm & mask)
                if self.cmpi_carry_broken:
                    # Specification bug (see class docstring): the amended
                    # specification says CMPI does not affect the carry flag.
                    carry = None
            else:  # TST
                result = rs1_val
        elif instr.iclass is InstructionClass.BRANCH_FLAG:
            if self._flag_branch_taken(name, state):
                next_pc = imm % arch.imem_words
        elif instr.iclass is InstructionClass.BRANCH_REG:
            taken = (rs1_val == rs2_val) if name == "BEQ" else (rs1_val != rs2_val)
            if taken:
                next_pc = imm % arch.imem_words
        elif instr.iclass is InstructionClass.JUMP:
            if name == "JMP":
                next_pc = imm % arch.imem_words
            elif name == "JR":
                next_pc = rs1_val % arch.imem_words
            else:  # JAL
                result = (state.pc + 1) & mask
                write_reg = enc.rd
                next_pc = imm % arch.imem_words
        else:  # pragma: no cover - catalogue and model must stay in sync
            raise NotImplementedError(f"golden model missing {name}")

        if write_reg is not None and result is not None:
            new.regs[write_reg % arch.num_regs] = result & mask
        self._update_flags(new, instr, result, carry)
        new.pc = next_pc
        return new

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _add(self, a: int, b: int) -> tuple[int, int]:
        total = a + b
        return total & self.arch.xlen_mask, 1 if total > self.arch.xlen_mask else 0

    def _sub(self, a: int, b: int) -> tuple[int, int]:
        total = a - b
        # C is the "no borrow" flag, matching the RTL's adder carry-out.
        return total & self.arch.xlen_mask, 1 if a >= b else 0

    def _alu_rr(self, name: str, a: int, b: int) -> tuple[int, Optional[int]]:
        mask = self.arch.xlen_mask
        xlen = self.arch.xlen
        if name == "ADD":
            return self._add(a, b)
        if name == "SUB":
            return self._sub(a, b)
        if name == "AND":
            return a & b, None
        if name == "OR":
            return a | b, None
        if name == "XOR":
            return a ^ b, None
        if name == "NAND":
            return (~(a & b)) & mask, None
        if name == "NOR":
            return (~(a | b)) & mask, None
        if name == "XNOR":
            return (~(a ^ b)) & mask, None
        if name == "MUL":
            return (a * b) & mask, None
        if name == "MIN":
            return min(a, b), None
        if name == "MAX":
            return max(a, b), None
        if name == "SLL":
            return (a << b) & mask if b < xlen else 0, None
        if name == "SRL":
            return (a >> b) if b < xlen else 0, None
        if name == "SRA":
            signed = a - (1 << xlen) if a & (1 << (xlen - 1)) else a
            shift = b if b < xlen else xlen - 1
            return (signed >> shift) & mask, None
        if name == "SATADD":
            total = a + b
            clamped = min(total, mask)
            return clamped, 1 if total > mask else 0
        raise NotImplementedError(name)

    def _alu_ri(self, name: str, a: int, imm: int) -> tuple[int, Optional[int]]:
        mask = self.arch.xlen_mask
        xlen = self.arch.xlen
        value = imm & mask
        if name == "ADDI":
            return self._add(a, value)
        if name == "SUBI":
            return self._sub(a, value)
        if name == "ANDI":
            return a & value, None
        if name == "ORI":
            return a | value, None
        if name == "XORI":
            return a ^ value, None
        if name == "SLLI":
            return (a << value) & mask if value < xlen else 0, None
        if name == "SRLI":
            return (a >> value) if value < xlen else 0, None
        if name == "SRAI":
            signed = a - (1 << xlen) if a & (1 << (xlen - 1)) else a
            shift = value if value < xlen else xlen - 1
            return (signed >> shift) & mask, None
        raise NotImplementedError(name)

    def _unary(self, name: str, a: int) -> tuple[int, Optional[int]]:
        mask = self.arch.xlen_mask
        xlen = self.arch.xlen
        if name == "NOT":
            return (~a) & mask, None
        if name == "NEG":
            return (-a) & mask, 1 if a == 0 else 0
        if name == "MOV":
            return a, None
        if name == "INC":
            return self._add(a, 1)
        if name == "DEC":
            return self._sub(a, 1)
        if name == "ROL":
            return ((a << 1) | (a >> (xlen - 1))) & mask, None
        if name == "ROR":
            return ((a >> 1) | ((a & 1) << (xlen - 1))) & mask, None
        if name == "SWAP":
            half = xlen // 2
            low = a & ((1 << half) - 1)
            high = a >> half
            return ((low << (xlen - half)) | high) & mask, None
        if name == "PARITY":
            return bin(a).count("1") & 1, None
        if name == "ABS":
            signed = a - (1 << xlen) if a & (1 << (xlen - 1)) else a
            return abs(signed) & mask, None
        raise NotImplementedError(name)

    def _memory_address(self, name: str, rs1_val: int, imm: int) -> int:
        words = self.arch.dmem_words
        if name in ("LD", "ST"):
            return rs1_val % words
        if name in ("LDO", "STO"):
            return (rs1_val + imm) % words
        return imm % words  # LDA / STA

    def _flag_branch_taken(self, name: str, state: ArchState) -> bool:
        if name == "BZ":
            return state.flag_z == 1
        if name == "BNZ":
            return state.flag_z == 0
        if name == "BC":
            return state.flag_c == 1
        if name == "BNC":
            return state.flag_c == 0
        if name == "BN":
            return state.flag_n == 1
        return state.flag_n == 0  # BNN

    def _update_flags(
        self,
        state: ArchState,
        instr: Instruction,
        result: Optional[int],
        carry: Optional[int],
    ) -> None:
        if instr.flags is FlagsUpdate.NONE or result is None:
            return
        mask = self.arch.xlen_mask
        state.flag_z = 1 if (result & mask) == 0 else 0
        state.flag_n = (result >> (self.arch.xlen - 1)) & 1
        if instr.flags in (FlagsUpdate.ARITH_ADD, FlagsUpdate.ARITH_SUB):
            state.flag_c = carry if carry is not None else state.flag_c

    # ------------------------------------------------------------------
    def run_program(
        self, words: List[int], *, max_steps: int = 1000
    ) -> ArchState:
        """Execute a program from the reset state until HALT or *max_steps*."""
        state = self.initial_state()
        steps = 0
        while not state.halted and steps < max_steps:
            word = words[state.pc] if state.pc < len(words) else 0
            state = self.execute_word(state, word)
            steps += 1
        return state
