"""Elaboration of a :class:`~repro.rtl.circuit.Circuit` into a frozen design.

The elaborated :class:`Design` is the interface consumed by both the
simulator and the bounded model checker: a set of typed inputs, a state
vector with reset values, one next-state expression per state element, and
named outputs/assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.expr.bitvec import BV, BVVar
from repro.rtl.circuit import Circuit, RTLBuildError


@dataclass(frozen=True)
class StateElement:
    """One register of the elaborated design."""

    name: str
    width: int
    reset: int


@dataclass
class Design:
    """An elaborated synchronous design.

    Attributes
    ----------
    name:
        Human-readable design name (e.g. ``"design_a.v3"``).
    inputs:
        Mapping from primary-input name to bit width.
    state:
        The state elements in a deterministic order.
    next_state:
        Mapping from state-element name to its next-state expression.
    outputs:
        Named combinational output expressions.
    assumptions:
        Named 1-bit environmental constraints on inputs/state.
    """

    name: str
    inputs: Dict[str, int]
    state: List[StateElement]
    next_state: Dict[str, BV]
    outputs: Dict[str, BV]
    assumptions: Dict[str, BV] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def state_names(self) -> List[str]:
        """Names of all state elements."""
        return [element.name for element in self.state]

    @property
    def num_flip_flops(self) -> int:
        """Total number of flip-flops (sum of state-element widths)."""
        return sum(element.width for element in self.state)

    def state_element(self, name: str) -> StateElement:
        """Look up a state element by name."""
        for element in self.state:
            if element.name == name:
                return element
        raise KeyError(f"no state element named {name!r}")

    def reset_values(self) -> Dict[str, int]:
        """Return the reset value of every state element."""
        return {element.name: element.reset for element in self.state}

    def free_variables(self) -> Set[str]:
        """Names of all variables referenced by any expression."""
        names: Set[str] = set()
        for expr in list(self.next_state.values()) + list(self.outputs.values()) + list(
            self.assumptions.values()
        ):
            names |= _collect_variables(expr)
        return names

    def validate(self) -> None:
        """Check internal consistency; raise :class:`RTLBuildError` on error."""
        known = set(self.inputs) | {element.name for element in self.state}
        free = self.free_variables()
        undriven = free - known
        if undriven:
            raise RTLBuildError(
                "expressions reference undeclared signals: "
                + ", ".join(sorted(undriven))
            )
        for element in self.state:
            expr = self.next_state.get(element.name)
            if expr is None:
                raise RTLBuildError(
                    f"state element {element.name!r} has no next-state expression"
                )
            if expr.width != element.width:
                raise RTLBuildError(
                    f"state element {element.name!r} has width {element.width} "
                    f"but its next-state expression has width {expr.width}"
                )

    def structural_hash(self) -> str:
        """Content hash (SHA-256 hex) of the elaborated netlist.

        Two designs hash equal iff they have the same inputs, state
        elements (name, width, reset) and structurally identical
        next-state/output/assumption expressions.  The design *name* is
        deliberately excluded: the hash identifies content, which is what
        lets the serving layer invalidate cached verdicts when the RTL
        behind a version name actually changes (and share them when it
        does not).

        Shared sub-expressions are serialized once (DAG, not tree), so the
        hash is linear in the netlist size and safe on deep expressions.
        """
        import hashlib

        digest = hashlib.sha256()
        node_ids: Dict[int, int] = {}

        def serialize(root: BV) -> int:
            """Post-order DAG walk assigning dense ids; feeds the digest."""
            stack: List[tuple] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if id(node) in node_ids:
                    continue
                if not expanded:
                    stack.append((node, True))
                    stack.extend((child, False) for child in node.children)
                    continue
                parts: List[str] = []
                for item in node._key():
                    if isinstance(item, tuple):
                        parts.append(
                            ",".join(str(node_ids[id(child)]) for child in item)
                        )
                    else:
                        parts.append(str(item))
                node_ids[id(node)] = len(node_ids)
                digest.update(
                    (f"n{len(node_ids) - 1}=" + "|".join(parts) + "\n").encode()
                )
            return node_ids[id(root)]

        for input_name in sorted(self.inputs):
            digest.update(f"input {input_name}:{self.inputs[input_name]}\n".encode())
        for element in self.state:
            digest.update(
                f"state {element.name}:{element.width}={element.reset}\n".encode()
            )
        for section, exprs in (
            ("next", self.next_state),
            ("output", self.outputs),
            ("assume", self.assumptions),
        ):
            for expr_name in sorted(exprs):
                root_id = serialize(exprs[expr_name])
                digest.update(f"{section} {expr_name}=n{root_id}\n".encode())
        return digest.hexdigest()

    def __repr__(self) -> str:
        return (
            f"Design({self.name!r}, inputs={len(self.inputs)}, "
            f"flip_flops={self.num_flip_flops}, outputs={len(self.outputs)})"
        )


def _collect_variables(expr: BV) -> Set[str]:
    names: Set[str] = set()
    stack = [expr]
    seen: Set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, BVVar):
            names.add(node.name)
        stack.extend(node.children)
    return names


def elaborate(circuit: Circuit, name: str = "") -> Design:
    """Freeze *circuit* into a :class:`Design`.

    Memories are finalised (their scheduled writes become register
    next-states), registers without an explicit next-state expression hold
    their value, and the result is validated.
    """
    for memory in circuit.memories.values():
        memory.finalize()

    state: List[StateElement] = []
    next_state: Dict[str, BV] = {}
    for register_name, register in circuit.registers.items():
        state.append(
            StateElement(register_name, register.width, register.reset)
        )
        next_state[register_name] = (
            register.next if register.next is not None else register.q
        )

    design = Design(
        name=name or circuit.name,
        inputs={input_name: var.width for input_name, var in circuit.inputs.items()},
        state=state,
        next_state=next_state,
        outputs=dict(circuit.outputs),
        assumptions=dict(circuit.assumptions),
    )
    design.validate()
    return design
