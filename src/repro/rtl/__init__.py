"""RTL modelling, elaboration and simulation.

Designs are described as synchronous circuits: primary inputs, registers with
reset values and next-state expressions, register-array memories, and named
combinational outputs.  The same description serves two consumers:

* the cycle-accurate two-valued simulator (:mod:`repro.rtl.simulator`), used
  by the industrial-flow baselines (directed tests, constrained-random
  simulation), and
* the bounded model checker (:mod:`repro.bmc`), which unrolls the next-state
  expressions symbolically.

This mirrors the paper's setup where one RTL description feeds both the
commercial simulator and the Onespin BMC engine.
"""

from repro.rtl.circuit import Circuit, Module, MemoryArray, Register, RTLBuildError
from repro.rtl.design import Design, elaborate
from repro.rtl.simulator import Simulator
from repro.rtl.waveform import Waveform

__all__ = [
    "Circuit",
    "Module",
    "MemoryArray",
    "Register",
    "RTLBuildError",
    "Design",
    "elaborate",
    "Simulator",
    "Waveform",
]
