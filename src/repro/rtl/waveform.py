"""Waveform capture for debugging simulator runs.

A :class:`Waveform` records per-cycle snapshots of signal values and can
render a compact textual table or export VCD (value change dump) for external
viewers.  This is the "short counterexample, quick debug" half of the paper's
productivity argument: both BMC counterexamples and simulation failures are
rendered through the same tooling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional


class Waveform:
    """Per-cycle value capture of a named set of signals."""

    def __init__(self, design_name: str) -> None:
        self.design_name = design_name
        self._cycles: List[int] = []
        self._values: List[Dict[str, int]] = []

    def clear(self) -> None:
        """Drop all recorded cycles."""
        self._cycles.clear()
        self._values.clear()

    def record(
        self,
        cycle: int,
        state_and_inputs: Mapping[str, int],
        outputs: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Record one cycle of signal values."""
        merged = dict(state_and_inputs)
        if outputs:
            merged.update({f"out:{name}": value for name, value in outputs.items()})
        self._cycles.append(cycle)
        self._values.append(merged)

    def __len__(self) -> int:
        return len(self._cycles)

    @property
    def signal_names(self) -> List[str]:
        """All signal names seen in any recorded cycle, sorted."""
        names = set()
        for snapshot in self._values:
            names.update(snapshot)
        return sorted(names)

    def values_of(self, signal: str) -> List[Optional[int]]:
        """The value of *signal* at every recorded cycle (None when absent)."""
        return [snapshot.get(signal) for snapshot in self._values]

    def as_table(self, signals: Optional[Iterable[str]] = None) -> str:
        """Render selected signals as a fixed-width text table."""
        selected = list(signals) if signals is not None else self.signal_names
        header = ["cycle"] + selected
        rows = [header]
        for cycle, snapshot in zip(self._cycles, self._values):
            rows.append(
                [str(cycle)]
                + [str(snapshot.get(name, "-")) for name in selected]
            )
        widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
        lines = []
        for row in rows:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)

    def to_vcd(self, signals: Optional[Iterable[str]] = None) -> str:
        """Render selected signals as a minimal VCD document."""
        selected = list(signals) if signals is not None else self.signal_names
        identifiers = {name: chr(33 + index) for index, name in enumerate(selected)}
        lines = [
            "$date reproduction run $end",
            f"$scope module {self.design_name} $end",
        ]
        for name in selected:
            lines.append(f"$var wire 32 {identifiers[name]} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        previous: Dict[str, Optional[int]] = {name: None for name in selected}
        for cycle, snapshot in zip(self._cycles, self._values):
            lines.append(f"#{cycle}")
            for name in selected:
                value = snapshot.get(name)
                if value is not None and value != previous[name]:
                    lines.append(f"b{value:b} {identifiers[name]}")
                    previous[name] = value
        return "\n".join(lines) + "\n"
