"""Cycle-accurate two-valued simulation of elaborated designs.

The simulator is the substrate for the industrial verification flow
baselines: directed simulation tests drive explicit stimulus, and the
constrained-random environment samples stimulus and checks results against
the ISA golden model.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.expr.eval import evaluate
from repro.rtl.design import Design
from repro.rtl.waveform import Waveform


class AssumptionViolation(RuntimeError):
    """Raised when driven stimulus violates a design assumption."""


class Simulator:
    """Step-by-step simulator for a :class:`~repro.rtl.design.Design`."""

    def __init__(
        self,
        design: Design,
        *,
        record_waveform: bool = False,
        check_assumptions: bool = True,
    ) -> None:
        self.design = design
        self._state: Dict[str, int] = design.reset_values()
        self._cycle = 0
        self._check_assumptions = check_assumptions
        self.waveform: Optional[Waveform] = (
            Waveform(design.name) if record_waveform else None
        )

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        """Number of clock edges applied since reset."""
        return self._cycle

    @property
    def state(self) -> Dict[str, int]:
        """Copy of the current architectural state."""
        return dict(self._state)

    def reset(self) -> None:
        """Return the design to its reset state."""
        self._state = self.design.reset_values()
        self._cycle = 0
        if self.waveform is not None:
            self.waveform.clear()

    def peek(self, name: str) -> int:
        """Read a state element by name."""
        return self._state[name]

    def poke(self, name: str, value: int) -> None:
        """Force a state element to *value* (testbench backdoor)."""
        element = self.design.state_element(name)
        self._state[name] = value & ((1 << element.width) - 1)

    # ------------------------------------------------------------------
    def _environment(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        env = dict(self._state)
        for name, width in self.design.inputs.items():
            if name not in inputs:
                raise KeyError(
                    f"no value driven for input {name!r} at cycle {self._cycle}"
                )
            env[name] = inputs[name] & ((1 << width) - 1)
        return env

    def outputs(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate all outputs combinationally for the given inputs."""
        env = self._environment(inputs)
        cache: Dict[int, int] = {}
        return {
            name: evaluate(expr, env, cache)
            for name, expr in self.design.outputs.items()
        }

    def output(self, name: str, inputs: Mapping[str, int]) -> int:
        """Evaluate a single named output."""
        env = self._environment(inputs)
        return evaluate(self.design.outputs[name], env)

    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Apply one clock edge with the given inputs.

        Returns the output values observed *before* the edge (i.e. the
        combinational response to the driven inputs in the current state).
        """
        env = self._environment(inputs)
        cache: Dict[int, int] = {}

        if self._check_assumptions:
            for name, expr in self.design.assumptions.items():
                if evaluate(expr, env, cache) != 1:
                    raise AssumptionViolation(
                        f"assumption {name!r} violated at cycle {self._cycle}"
                    )

        outputs = {
            name: evaluate(expr, env, cache)
            for name, expr in self.design.outputs.items()
        }

        next_state = {
            name: evaluate(expr, env, cache)
            for name, expr in self.design.next_state.items()
        }

        if self.waveform is not None:
            self.waveform.record(self._cycle, env, outputs)

        self._state = next_state
        self._cycle += 1
        return outputs

    def run(
        self,
        stimulus: Iterable[Mapping[str, int]],
        *,
        on_cycle: Optional[Callable[[int, Dict[str, int]], None]] = None,
    ) -> List[Dict[str, int]]:
        """Apply a sequence of input maps; return the outputs of every cycle."""
        trace: List[Dict[str, int]] = []
        for inputs in stimulus:
            outputs = self.step(inputs)
            trace.append(outputs)
            if on_cycle is not None:
                on_cycle(self._cycle, outputs)
        return trace
