"""Circuit construction API.

A :class:`Circuit` collects primary inputs, registers, memories and named
outputs.  :class:`Module` adds hierarchical naming on top so re-usable blocks
(the QED module, the QED-CF module, pipeline stages, safety monitors) can be
instantiated several times without name clashes.

The description style is deliberately close to a synthesisable register
transfer level: every register has exactly one next-state expression and a
reset value, and all combinational logic is pure expressions over current
state and inputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.expr.bitvec import BV, BVConst, BVVar, ExprError, mux


class RTLBuildError(ValueError):
    """Raised when a circuit is malformed (duplicate names, missing drivers)."""


class Register:
    """A flip-flop (or vector of flip-flops) with a reset value.

    The current-state value is read through :attr:`q` (a
    :class:`~repro.expr.bitvec.BVVar`); the next-state expression is assigned
    through :attr:`next` exactly once, or left unassigned to hold its value.
    """

    def __init__(self, name: str, width: int, reset: int = 0) -> None:
        if width <= 0:
            raise RTLBuildError(f"register {name!r} must have positive width")
        self.name = name
        self.width = width
        self.reset = reset & ((1 << width) - 1)
        self.q = BVVar(name, width)
        self._next: Optional[BV] = None

    @property
    def next(self) -> Optional[BV]:
        """The next-state expression (``None`` means "hold current value")."""
        return self._next

    @next.setter
    def next(self, expr: BV) -> None:
        if not isinstance(expr, BV):
            expr = BVConst(self.width, int(expr))
        if expr.width != self.width:
            raise RTLBuildError(
                f"register {self.name!r} is {self.width} bits but next-state "
                f"expression is {expr.width} bits"
            )
        self._next = expr

    def hold_unless(self, condition: BV, value: BV) -> None:
        """Set the next state to *value* when *condition* holds, else hold."""
        self.next = mux(condition, value, self.q)

    def __repr__(self) -> str:
        return f"Register({self.name!r}, width={self.width}, reset={self.reset})"


class MemoryArray:
    """A small memory modelled as an array of registers.

    The microcontroller cores in this study have small architectural register
    files and small data memories, and the paper explicitly uses a dedicated
    memory model [Ecker 04] to avoid state-space blow-up during BMC; an array
    of registers with mux-tree reads is the equivalent here.
    """

    def __init__(
        self, circuit: "Circuit", name: str, depth: int, width: int, reset: int = 0
    ) -> None:
        if depth <= 0:
            raise RTLBuildError(f"memory {name!r} must have positive depth")
        self.name = name
        self.depth = depth
        self.width = width
        self.words: List[Register] = [
            circuit.register(f"{name}[{index}]", width, reset=reset)
            for index in range(depth)
        ]
        self._pending_next: List[BV] = [word.q for word in self.words]

    @property
    def addr_width(self) -> int:
        """Number of address bits needed to index the memory."""
        return max(1, (self.depth - 1).bit_length())

    def read(self, address: BV) -> BV:
        """Combinational read of the word at *address* (mux tree)."""
        result: BV = self.words[0].q
        for index in range(1, self.depth):
            is_index = address.eq(BVConst(address.width, index))
            result = mux(is_index, self.words[index].q, result)
        return result

    def write(self, address: BV, data: BV, enable: BV) -> None:
        """Schedule a synchronous write of *data* at *address* when *enable*.

        Several writes may be scheduled in one cycle; later calls take
        priority over earlier ones for the same address, which matches the
        "last assignment wins" semantics of procedural RTL.
        """
        if data.width != self.width:
            raise RTLBuildError(
                f"memory {self.name!r} is {self.width} bits wide but the "
                f"written data is {data.width} bits"
            )
        for index, word in enumerate(self.words):
            is_index = address.eq(BVConst(address.width, index))
            take = enable & is_index
            self._pending_next[index] = mux(
                take, data, self._pending_next[index]
            )

    def finalize(self) -> None:
        """Commit the scheduled writes into the word registers."""
        for word, next_expr in zip(self.words, self._pending_next):
            word.next = next_expr

    def state_names(self) -> List[str]:
        """Names of the underlying word registers."""
        return [word.name for word in self.words]


class Circuit:
    """A flat synchronous circuit under construction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._inputs: Dict[str, BVVar] = {}
        self._registers: Dict[str, Register] = {}
        self._memories: Dict[str, MemoryArray] = {}
        self._outputs: Dict[str, BV] = {}
        self._assumptions: Dict[str, BV] = {}

    # ------------------------------------------------------------------
    def input(self, name: str, width: int) -> BVVar:
        """Declare a primary input and return its variable."""
        self._check_unused(name)
        variable = BVVar(name, width)
        self._inputs[name] = variable
        return variable

    def register(self, name: str, width: int, reset: int = 0) -> Register:
        """Declare a register and return it."""
        self._check_unused(name)
        register = Register(name, width, reset)
        self._registers[name] = register
        return register

    def memory(self, name: str, depth: int, width: int, reset: int = 0) -> MemoryArray:
        """Declare a register-array memory and return it."""
        if name in self._memories:
            raise RTLBuildError(f"duplicate memory name {name!r}")
        memory = MemoryArray(self, name, depth, width, reset)
        self._memories[name] = memory
        return memory

    def output(self, name: str, expr: BV) -> None:
        """Expose *expr* as a named combinational output."""
        if name in self._outputs:
            raise RTLBuildError(f"duplicate output name {name!r}")
        if not isinstance(expr, BV):
            raise RTLBuildError(f"output {name!r} must be a BV expression")
        self._outputs[name] = expr

    def assume(self, name: str, expr: BV) -> None:
        """Record an environmental constraint (a 1-bit expression).

        Assumptions constrain the primary inputs considered by the bounded
        model checker; the simulator checks them and reports violations (which
        would indicate a malformed testbench).
        """
        if expr.width != 1:
            raise RTLBuildError(f"assumption {name!r} must be 1 bit wide")
        if name in self._assumptions:
            raise RTLBuildError(f"duplicate assumption name {name!r}")
        self._assumptions[name] = expr

    def _check_unused(self, name: str) -> None:
        if name in self._inputs or name in self._registers:
            raise RTLBuildError(f"duplicate signal name {name!r}")

    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Dict[str, BVVar]:
        """Declared primary inputs."""
        return dict(self._inputs)

    @property
    def registers(self) -> Dict[str, Register]:
        """Declared registers (including memory words)."""
        return dict(self._registers)

    @property
    def memories(self) -> Dict[str, MemoryArray]:
        """Declared memories."""
        return dict(self._memories)

    @property
    def outputs(self) -> Dict[str, BV]:
        """Declared combinational outputs."""
        return dict(self._outputs)

    @property
    def assumptions(self) -> Dict[str, BV]:
        """Declared environmental constraints."""
        return dict(self._assumptions)

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, inputs={len(self._inputs)}, "
            f"registers={len(self._registers)}, outputs={len(self._outputs)})"
        )


class Module:
    """A hierarchical building block contributing signals to a circuit.

    A module owns a dotted instance path and prefixes every signal it creates
    with that path, so two instances of the same block never collide.
    """

    def __init__(self, circuit: Circuit, path: str) -> None:
        self.circuit = circuit
        self.path = path

    def _qualify(self, name: str) -> str:
        return f"{self.path}.{name}" if self.path else name

    def input(self, name: str, width: int) -> BVVar:
        """Declare a primary input scoped to this module instance."""
        return self.circuit.input(self._qualify(name), width)

    def register(self, name: str, width: int, reset: int = 0) -> Register:
        """Declare a register scoped to this module instance."""
        return self.circuit.register(self._qualify(name), width, reset)

    def memory(self, name: str, depth: int, width: int, reset: int = 0) -> MemoryArray:
        """Declare a memory scoped to this module instance."""
        return self.circuit.memory(self._qualify(name), depth, width, reset)

    def output(self, name: str, expr: BV) -> None:
        """Expose a named output scoped to this module instance."""
        self.circuit.output(self._qualify(name), expr)

    def assume(self, name: str, expr: BV) -> None:
        """Record an assumption scoped to this module instance."""
        self.circuit.assume(self._qualify(name), expr)

    def submodule_path(self, name: str) -> str:
        """Return the instance path for a child module called *name*."""
        return self._qualify(name)
