"""Distributed proof engine: cube-and-conquer + portfolio for one BMC query.

The hardest Symbolic QED instances are single deep detection queries (the
QED-CF check at bound 8 in the case study); a per-bug campaign fan-out
cannot touch them because the wall-clock is one SAT call.  This package
splits that *single* query into independently solvable sub-problems -- the
pre-silicon analogue of the cube-and-conquer decompositions that "Boosting
the Bounds of Symbolic QED" and "Breaking the Bounds of Symbolic QED" use to
break the BMC depth wall -- and fans them over processes::

    BoundedModelChecker (bound k, split strategy)
        |
        |  clauses + activation assumption        repro.dist.cubes
        |  ------------------------------>  +------------------------+
        |                                   | cube generator         |
        |                                   |  window-position ladder|
        |                                   |  x look-ahead binary   |
        |                                   |  (AIG cone scoring)    |
        |                                   +-----------+------------+
        |                                               | cubes (a partition:
        |                                               |  disjoint, covering)
        v                                               v
    +-------------------------------- repro.dist.scheduler ---------------+
    |  task queue (work stealing)   <--- re-split on budget overrun       |
    |     |            |        |                                         |
    |  worker 0     worker 1   worker N    each: own CDCL solver, built   |
    |  (baseline)  (pos-phase) (rapid-..)  once, diverse personality      |
    |     |            |        |          (repro.dist.portfolio configs) |
    |     +---- shared clause queue ----+  short (LBD<=3) learned clauses |
    +------------------+---------------------------------------------------+
                       | per-cube verdicts + stats
                       v
          merge:  any cube SAT   -> query SAT (model replayed as usual)
                  all cubes UNSAT-> query UNSAT (cubes cover the space)
                  budget expired -> UNKNOWN

Soundness rests on two invariants, both enforced by construction and tested
property-style in ``tests/dist``:

* the cube set emitted by :mod:`repro.dist.cubes` partitions the search
  space of its split variables (disjunction is a tautology, cubes pairwise
  disjoint), so "all cubes UNSAT" refutes the original query;
* shared learned clauses are implied by the common clause database alone,
  never by cube assumptions, so importing them into any worker is sound.

``workers=1`` runs the cube loop inline (no processes) and is bit-for-bit
deterministic; ``strategy="portfolio"`` races the unsplit query across
diverse solver configurations and cancels the losers
(:mod:`repro.dist.portfolio`).
"""

from repro.dist.cubes import (
    Cube,
    binary_cubes,
    ladder_cubes,
    product_cubes,
    select_split_variables,
    split_cube,
    validate_partition,
)
from repro.dist.portfolio import (
    DIVERSE_CONFIGS,
    PortfolioConfig,
    PortfolioOutcome,
    solve_portfolio,
)
from repro.dist.scheduler import (
    CubeStats,
    DistResult,
    DistStats,
    SplitConfig,
    SplitQuery,
    WorkScheduler,
)

__all__ = [
    "Cube",
    "binary_cubes",
    "ladder_cubes",
    "product_cubes",
    "select_split_variables",
    "split_cube",
    "validate_partition",
    "DIVERSE_CONFIGS",
    "PortfolioConfig",
    "PortfolioOutcome",
    "solve_portfolio",
    "CubeStats",
    "DistResult",
    "DistStats",
    "SplitConfig",
    "SplitQuery",
    "WorkScheduler",
]
