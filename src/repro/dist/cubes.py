"""Cube generation: partitioning one BMC query into independent sub-queries.

A *cube* is a conjunction of CNF literals handed to a worker as solver
assumptions on top of the query's own assumptions.  A cube set produced here
is always a **partition** of the search space over its split variables:

* the disjunction of the cubes is a tautology (every assignment of the split
  variables satisfies some cube), so "all cubes UNSAT" implies the original
  query is UNSAT -- this is the soundness argument of the distributed proof;
* the cubes are pairwise disjoint (no assignment satisfies two cubes), so no
  work is duplicated between workers.

Both properties hold by construction because every generator in this module
emits the *leaves of a decision tree* over the split variables:

* :func:`binary_cubes` -- the complete depth-``d`` tree over ``d`` variables
  (``2^d`` balanced cubes), used for look-ahead splitting;
* :func:`ladder_cubes` -- the maximally unbalanced tree ``l0; -l0 l1;
  -l0 -l1 l2; ...`` plus the all-negative leaf, used for splitting by QED
  property-window position ("the first violated frame is i");
* :func:`split_cube` -- one more level under an existing leaf, used by the
  scheduler when a cube exceeds its conflict budget and must be re-split;
* :func:`product_cubes` -- the tree obtained by hanging one tree under every
  leaf of another (both axes at once).

Split-variable selection uses **look-ahead scoring over AIG cone sizes**
(:func:`select_split_variables`): a good splitting variable dominates a large
part of the property cone, so assigning it simplifies much of the formula in
both branches.  Primary inputs matching a preferred name prefix (the QED
instruction port, i.e. the focus-set opcode choice) win ties, which realises
the paper-adjacent "cube over the focus-set opcodes" strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    List,
    Sequence,
    Set,
    Tuple,
)

from repro.expr.aig import AIG
from repro.expr.cnfgen import CNFBuilder
from repro.sat.cnf import Literal, var_of


@dataclass(frozen=True)
class Cube:
    """One leaf of the splitting tree: assumption literals plus lineage."""

    literals: Tuple[Literal, ...]
    #: How many re-splits produced this cube (0 for an initial cube).
    depth: int = 0

    def extended(self, literal: Literal) -> "Cube":
        """The child cube with *literal* appended (one re-split level)."""
        return Cube(self.literals + (literal,), self.depth + 1)

    def __str__(self) -> str:  # compact display for logs/stats
        return "[" + " ".join(str(lit) for lit in self.literals) + "]"


# ----------------------------------------------------------------------
# Generators (all emit decision-tree leaves: disjoint and covering)
# ----------------------------------------------------------------------
def binary_cubes(variables: Sequence[int], depth: int) -> List[Cube]:
    """The ``2^depth`` sign combinations over the first *depth* variables.

    With ``depth == 0`` (or no variables) the single empty cube is returned,
    which leaves the query unsplit.
    """
    chosen = list(variables[: max(0, depth)])
    if not chosen:
        return [Cube(())]
    cubes: List[Cube] = []
    for signs in product((1, -1), repeat=len(chosen)):
        cubes.append(
            Cube(tuple(sign * var for sign, var in zip(signs, chosen)))
        )
    return cubes


def ladder_cubes(literals: Sequence[Literal]) -> List[Cube]:
    """Decision-list cubes: "the first true literal is the i-th one".

    For literals ``l0..ln-1`` this yields ``l0; -l0 l1; ...;
    -l0..-ln-2 ln-1; -l0..-ln-1``.  The final all-negative cube completes the
    partition; when the query's own clauses force at least one literal true
    (the BMC violation-window clause does), it refutes immediately.
    """
    cubes: List[Cube] = []
    prefix: List[Literal] = []
    for literal in literals:
        cubes.append(Cube(tuple(prefix) + (literal,)))
        prefix.append(-literal)
    cubes.append(Cube(tuple(prefix)))
    return cubes


def product_cubes(outer: Sequence[Cube], inner: Sequence[Cube]) -> List[Cube]:
    """Hang the *inner* tree under every leaf of the *outer* tree."""
    return [
        Cube(a.literals + b.literals, max(a.depth, b.depth))
        for a in outer
        for b in inner
    ]


def split_cube(cube: Cube, variable: int) -> Tuple[Cube, Cube]:
    """Split one cube on *variable* into its two children."""
    if variable <= 0:
        raise ValueError("split variable must be a positive variable index")
    if any(var_of(lit) == variable for lit in cube.literals):
        raise ValueError(f"cube already constrains variable {variable}")
    return cube.extended(variable), cube.extended(-variable)


# ----------------------------------------------------------------------
# Partition validation (soundness check, used by the property tests)
# ----------------------------------------------------------------------
def validate_partition(cubes: Sequence[Cube]) -> None:
    """Check that *cubes* partition the space of their split variables.

    Enumerates every assignment of the variables the cubes mention and
    verifies exactly one cube is satisfied -- i.e. the disjunction of the
    cubes is a tautology (coverage: all-UNSAT implies UNSAT) and the cubes
    are pairwise disjoint (no duplicated work).  Exponential in the number
    of distinct split variables; meant for tests and debugging, not for the
    solve path.
    """
    variables = sorted({var_of(lit) for cube in cubes for lit in cube.literals})
    if len(variables) > 20:
        raise ValueError(
            f"refusing to enumerate 2^{len(variables)} assignments; "
            "validate_partition is a test helper for small cube sets"
        )
    for values in product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        satisfied = [
            cube
            for cube in cubes
            if all(
                assignment[var_of(lit)] == (lit > 0) for lit in cube.literals
            )
        ]
        if len(satisfied) == 0:
            raise AssertionError(
                f"cube set does not cover assignment {assignment}: "
                "the disjunction of the cubes is not a tautology"
            )
        if len(satisfied) > 1:
            raise AssertionError(
                f"cubes overlap on assignment {assignment}: "
                f"{[str(c) for c in satisfied]}"
            )


# ----------------------------------------------------------------------
# Look-ahead split-variable selection
# ----------------------------------------------------------------------
def select_split_variables(
    aig: AIG,
    builder: CNFBuilder,
    cone: AbstractSet[int],
    *,
    limit: int = 8,
    exclude: AbstractSet[int] = frozenset(),
    prefer_input_prefixes: Sequence[str] = (),
    fanout_pool: int = 64,
) -> List[int]:
    """Rank CNF variables of *cone* nodes as splitting candidates.

    The score of a candidate node is a one-step look-ahead over AIG cone
    sizes: how much of the property cone its own fan-in cone covers, folded
    so that a node dominating about *half* the cone scores highest --
    assigning such a node simplifies a large share of the formula in *both*
    branches, whereas the window root itself (cone == everything) only helps
    one branch.  Candidates are drawn from the highest-fanout nodes of the
    cone (*fanout_pool* of them) so the exact cone-size computation stays
    cheap, plus every primary input whose name starts with one of
    *prefer_input_prefixes* (the QED instruction-port bits -- the focus-set
    opcode choice); preferred inputs receive a flat score bonus.

    Only nodes that already have a CNF variable are eligible (splitting on a
    never-encoded node would not constrain the formula).  Returns at most
    *limit* distinct CNF variables, highest score first; ties break on node
    index so the ranking is deterministic.
    """
    if not cone:
        return []
    total = sum(1 for node in cone if not aig.is_input(node))
    if total == 0:
        total = 1
    # Fanout within the cone: how many cone nodes reference each node.
    fanout: Dict[int, int] = {}
    for node in cone:
        if aig.is_input(node):
            continue
        for child_literal in aig.node_children(node):
            child = aig.lit_node(child_literal)
            if child in cone:
                fanout[child] = fanout.get(child, 0) + 1
    candidates: Set[int] = set()
    ranked_fanout = sorted(
        fanout.items(), key=lambda item: (-item[1], item[0])
    )
    for node, _ in ranked_fanout[:fanout_pool]:
        candidates.add(node)
    preferred: Set[int] = set()
    if prefer_input_prefixes:
        for node in cone:
            if not aig.is_input(node):
                continue
            name = aig.input_name(node)
            if name and any(
                name.startswith(prefix) for prefix in prefer_input_prefixes
            ):
                preferred.add(node)
                candidates.add(node)

    scored: List[Tuple[float, int, int, int]] = []
    for node in candidates:
        variable = builder.node_var(node)
        if variable is None or variable in exclude:
            continue
        size = aig.cone_size([2 * node])
        # Balanced-split preference: peak score at half the cone.  Preferred
        # inputs (cone size 0) get a flat bonus that puts them ahead of any
        # balance score, so the opcode bits are split first when requested.
        balance = min(size, total - size) / total
        score = balance + (1.0 if node in preferred else 0.0)
        scored.append((score, fanout.get(node, 0), node, variable))
    scored.sort(key=lambda item: (-item[0], -item[1], item[2]))
    result: List[int] = []
    seen_vars: Set[int] = set()
    for _, _, _, variable in scored:
        if variable not in seen_vars:
            seen_vars.add(variable)
            result.append(variable)
        if len(result) >= limit:
            break
    return result
