"""Portfolio solving: race diverse solver configurations, cancel the losers.

The run time of a CDCL solver on a hard instance is notoriously sensitive to
its heuristics -- branching polarity, restart cadence, activity decay, and
whether the formula was preprocessed first.  A *portfolio* exploits that
variance: the same (sub-)problem is handed to several solver configurations
in parallel processes and the first definitive answer (SAT or UNSAT) wins;
the losing processes are cancelled immediately so they release their core.

Two places use this module:

* :func:`solve_portfolio` races a full query (or a single hard cube) across
  :data:`DIVERSE_CONFIGS` -- the ``strategy="portfolio"`` mode of
  :class:`repro.dist.scheduler.WorkScheduler`;
* the cube-and-conquer scheduler assigns each worker process a different
  entry of :data:`DIVERSE_CONFIGS`, so even the cube fan-out benefits from
  heuristic diversity.

All configurations are complete solvers, so any answer is sound; diversity
only changes *which one answers first*.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field, replace
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple

from repro.deadline import Deadline
from repro.obs import trace as obs_trace
from repro.sat.cnf import CNF, Literal, var_of
from repro.sat.preprocess import PreprocessResult, preprocess
from repro.sat.solver import CDCLSolver, SolverResult, SolverStatus


@dataclass(frozen=True)
class PortfolioConfig:
    """One solver personality raced by the portfolio.

    ``preprocess`` runs the SatELite-style reduction on the formula before
    the solver is built (the *frozen* set must then protect every variable
    the caller reads back -- assumption, input and window-root variables);
    ``blocked`` additionally enables blocked-clause elimination, which is
    sound here because a worker preprocesses the *whole* formula (the one
    place BCE is allowed, see :func:`repro.sat.preprocess.preprocess`).
    Models are repaired/extended over the removed structure before they
    leave the worker, so callers always see the original variable space.
    """

    name: str
    var_decay: float = 0.95
    clause_decay: float = 0.999
    restart_base: int = 100
    default_phase: bool = False
    preprocess: bool = False
    blocked: bool = False

    # -- canonical serialization ---------------------------------------
    def to_json_dict(self) -> dict:
        """Canonical, versioned JSON form (every knob explicit)."""
        return {
            "format": 1,
            "name": self.name,
            "var_decay": self.var_decay,
            "clause_decay": self.clause_decay,
            "restart_base": self.restart_base,
            "default_phase": self.default_phase,
            "preprocess": self.preprocess,
            "blocked": self.blocked,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "PortfolioConfig":
        """Inverse of :meth:`to_json_dict` (validates the format tag)."""
        if data.get("format", 1) != 1:
            raise ValueError(
                f"unsupported PortfolioConfig format {data.get('format')!r}"
            )
        return cls(
            name=str(data["name"]),
            var_decay=float(data.get("var_decay", 0.95)),
            clause_decay=float(data.get("clause_decay", 0.999)),
            restart_base=int(data.get("restart_base", 100)),
            default_phase=bool(data.get("default_phase", False)),
            preprocess=bool(data.get("preprocess", False)),
            blocked=bool(data.get("blocked", False)),
        )

    def build_solver(
        self,
        clauses: Sequence[Sequence[Literal]],
        num_vars: int,
        frozen: AbstractSet[int] = frozenset(),
    ) -> Tuple[CDCLSolver, Optional[PreprocessResult]]:
        """Construct a solver for *clauses* under this configuration.

        Returns the solver and the preprocessing result (``None`` when
        ``preprocess`` is off); pass SAT models through
        :meth:`~repro.sat.preprocess.PreprocessResult.extend_model` to map
        them back to the original variable space.
        """
        reduction: Optional[PreprocessResult] = None
        if self.preprocess:
            reduction = preprocess(
                clauses, frozen=frozen, enable_blocked=self.blocked
            )
            clauses = reduction.clauses
        cnf = CNF(num_vars)
        for clause in clauses:
            cnf.add_clause(list(clause))
        solver = CDCLSolver(
            cnf,
            restart_base=self.restart_base,
            var_decay=self.var_decay,
            clause_decay=self.clause_decay,
            default_phase=self.default_phase,
        )
        return solver, reduction


#: The default portfolio: the baseline plus personalities that differ in
#: polarity, restart cadence, activity decay and preprocessing.  Order
#: matters twice over -- the scheduler assigns ``DIVERSE_CONFIGS[i % n]`` to
#: worker ``i`` (worker 0, and therefore every single-worker deterministic
#: run, always gets the baseline; it must stay preprocess-free so the
#: inline path can reuse its solver incrementally), and a portfolio race
#: launches them first to last.  ``preprocessed`` sits at index 1 so the
#: only personality running variable elimination + blocked-clause
#: elimination is exercised by every fan-out of two or more workers, not
#: just five-plus.
DIVERSE_CONFIGS: Tuple[PortfolioConfig, ...] = (
    PortfolioConfig("baseline"),
    PortfolioConfig("preprocessed", preprocess=True, blocked=True),
    PortfolioConfig("positive-phase", default_phase=True),
    PortfolioConfig("rapid-restart", restart_base=16),
    PortfolioConfig("slow-decay", var_decay=0.99),
    PortfolioConfig("agile", var_decay=0.85, restart_base=32, default_phase=True),
)


@dataclass
class PortfolioOutcome:
    """Result of one portfolio race."""

    status: SolverStatus
    model: Optional[List[bool]] = None
    winner: Optional[str] = None
    #: Work counters summed over every personality that *finished* (the
    #: winner included); losers cancelled mid-flight are not observable.
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned_clauses: int = 0
    runtime_seconds: float = 0.0
    #: Status reported by every configuration that finished (losers that
    #: were cancelled mid-flight do not appear).
    finished: Dict[str, str] = field(default_factory=dict)


def _solve_one(
    config: PortfolioConfig,
    clauses: Sequence[Sequence[Literal]],
    num_vars: int,
    assumptions: Sequence[Literal],
    frozen: AbstractSet[int],
    max_conflicts: Optional[int],
    expires_at: Optional[float] = None,
) -> Tuple[SolverResult, Optional[PreprocessResult]]:
    deadline = None if expires_at is None else Deadline(expires_at=expires_at)
    solver, reduction = config.build_solver(clauses, num_vars, frozen)
    result = solver.solve(
        assumptions=list(assumptions),
        max_conflicts=max_conflicts,
        deadline=deadline,
    )
    return result, reduction


def _race_worker(  # fork-entry
    index: int,
    config: PortfolioConfig,
    clauses: Sequence[Sequence[Literal]],
    num_vars: int,
    assumptions: Sequence[Literal],
    frozen: AbstractSet[int],
    max_conflicts: Optional[int],
    results: "multiprocessing.Queue",
    expires_at: Optional[float] = None,
) -> None:
    """Process entry point: solve and report (top-level so it pickles)."""
    # Inherited through the fork like the deadline: spans recorded here
    # carry the parent's trace id and ship back with the result.
    collector = obs_trace.active()
    obs_mark = None if collector is None else collector.mark()
    racer_span = obs_trace.span("portfolio.racer", config=config.name)
    result, reduction = _solve_one(
        config, clauses, num_vars, assumptions, frozen, max_conflicts,
        expires_at,
    )
    racer_span.close(verdict=result.status.value)
    model = result.model
    if model is not None and reduction is not None:
        model = reduction.extend_model(model)
    results.put(
        (
            index,
            result.status.value,
            model,
            result.stats.conflicts,
            result.stats.decisions,
            result.stats.propagations,
            result.stats.learned_clauses,
            None if obs_mark is None else collector.batch_since(obs_mark),
        )
    )


def solve_portfolio(
    clauses: Sequence[Sequence[Literal]],
    num_vars: int,
    assumptions: Sequence[Literal] = (),
    *,
    configs: Sequence[PortfolioConfig] = DIVERSE_CONFIGS,
    workers: int = 2,
    frozen: AbstractSet[int] = frozenset(),
    max_conflicts: Optional[int] = None,
    poll_seconds: float = 0.02,
    deadline: Optional[Deadline] = None,
) -> PortfolioOutcome:
    """Race the first ``workers`` entries of *configs* on one query.

    The first SAT or UNSAT answer wins and every other process is cancelled.
    UNKNOWN answers (a *max_conflicts* budget expiring) do not win; the race
    ends UNKNOWN only when every configuration exhausted its budget.  With
    ``workers == 1`` the first configuration runs inline -- no processes, no
    scheduling nondeterminism -- which keeps single-worker runs
    deterministic.  ``deadline`` bounds the race by wall clock: every
    racer inherits the same absolute monotonic expiry and answers
    UNKNOWN once it passes.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    raced = list(configs[: max(1, min(workers, len(configs)))])
    expires_at = None if deadline is None else deadline.expires_at
    start = time.perf_counter()
    if len(raced) == 1:
        with obs_trace.span("portfolio.racer", config=raced[0].name):
            result, reduction = _solve_one(
                raced[0], clauses, num_vars, assumptions, frozen,
                max_conflicts, expires_at,
            )
        model = result.model
        if model is not None and reduction is not None:
            model = reduction.extend_model(model)
        return PortfolioOutcome(
            status=result.status,
            model=model,
            winner=raced[0].name if not result.unknown else None,
            conflicts=result.stats.conflicts,
            decisions=result.stats.decisions,
            propagations=result.stats.propagations,
            learned_clauses=result.stats.learned_clauses,
            runtime_seconds=time.perf_counter() - start,
            finished={raced[0].name: result.status.value},
        )

    context = multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else None
    )
    results: "multiprocessing.Queue" = context.Queue()
    processes = [
        context.Process(
            target=_race_worker,
            args=(
                index,
                config,
                clauses,
                num_vars,
                list(assumptions),
                frozen,
                max_conflicts,
                results,
                expires_at,
            ),
            daemon=True,
        )
        for index, config in enumerate(raced)
    ]
    for process in processes:
        process.start()

    outcome = PortfolioOutcome(status=SolverStatus.UNKNOWN)
    finished = 0
    try:
        while finished < len(processes):
            try:
                (
                    index,
                    status_value,
                    model,
                    conflicts,
                    decisions,
                    propagations,
                    learned,
                    span_batch,
                ) = results.get(timeout=poll_seconds)
            except queue_module.Empty:
                # A worker that died without reporting (OOM kill) must not
                # hang the race forever.
                if all(not p.is_alive() for p in processes) and results.empty():
                    break
                continue
            finished += 1
            collector = obs_trace.active()
            if collector is not None and span_batch is not None:
                collector.absorb(span_batch)
            status = SolverStatus(status_value)
            outcome.finished[raced[index].name] = status_value
            # Work counters always mean "total work of every finished
            # personality" -- the winner adds to, not replaces, the budget-
            # expired losers already accumulated.
            outcome.conflicts += conflicts
            outcome.decisions += decisions
            outcome.propagations += propagations
            outcome.learned_clauses += learned
            if status is not SolverStatus.UNKNOWN:
                outcome.status = status
                outcome.model = model
                outcome.winner = raced[index].name
                break
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=2.0)
        # Escalate: a racer that survives SIGTERM past the grace period
        # (wedged in a C extension, masked signal) gets SIGKILL rather
        # than leaking as a zombie holding its core.
        for process in processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        results.close()
    outcome.runtime_seconds = time.perf_counter() - start
    return outcome
