"""Work scheduling for a split BMC query: pool, stealing, re-split, sharing.

The scheduler owns one *query* (a clause list plus base assumptions, e.g.
"the property-violation window of bound ``k`` is active") and a cube set
from :mod:`repro.dist.cubes` that partitions its search space.  It answers
with the merged verdict:

* **any cube SAT** -- the query is SAT; the model is returned untouched so
  the BMC engine replays the counterexample exactly as in sequential mode;
* **all cubes UNSAT** -- the query is UNSAT (the cube set covers the space,
  so the disjunction argument applies);
* otherwise (a conflict budget expired) -- UNKNOWN.

Scheduling model
================

``workers == 1`` runs every cube inline on one long-lived solver, in
deterministic order, with no processes -- learned clauses flow between cubes
through the shared database, and two runs of the same query are bit-for-bit
identical.  ``workers > 1`` forks a process pool:

* every worker builds its solver once from the query's clauses and then
  *steals* cubes from a shared task queue (idle workers drain whatever is
  left, so an unlucky cube assignment cannot idle the pool);
* a cube whose per-cube conflict budget expires is **re-split** on the next
  ranked look-ahead variable into two child cubes that go back on the queue
  (dynamic cube-and-conquer: hard regions of the space get progressively
  finer cubes); at ``max_resplit_depth`` the cube is solved to completion
  instead;
* workers broadcast short learned clauses (LBD <= ``share_max_lbd``) into
  every peer's bounded inbox queue and drain their own inbox before each
  cube.  Shared clauses are implied by the common formula alone -- never by
  cube assumptions -- so importing them is sound for every cube;
* each worker gets a different :data:`~repro.dist.portfolio.DIVERSE_CONFIGS`
  personality, adding portfolio-style diversity to the fan-out.

``strategy="portfolio"`` skips the cube machinery entirely and races the
whole query across diverse configurations via
:func:`repro.dist.portfolio.solve_portfolio`.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import faults
from repro.deadline import Deadline
from repro.dist.cubes import Cube, split_cube
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as obs_telemetry
from repro.obs import trace as obs_trace
from repro.dist.portfolio import (
    DIVERSE_CONFIGS,
    PortfolioConfig,
    solve_portfolio,
)
from repro.sat.cnf import Literal, var_of
from repro.sat.solver import SolverStats, SolverStatus

_STRATEGIES = ("auto", "window", "lookahead", "portfolio")

#: Crash-recovery policy of the parallel path.  Not ``SplitConfig`` knobs:
#: the config's canonical dict feeds content-addressed cache keys, and a
#: recovery policy must never change what a query *means*.
#: A cube whose worker died this many times is re-split (the cube itself
#: is suspected of tickling the crash) instead of re-enqueued verbatim.
_CRASH_RESPLIT_AFTER = 2
#: Replacement workers spawned per pool before the scheduler gives up and
#: fails safe to UNKNOWN (a crash storm must not respawn forever).
_MAX_RESPAWNS_FACTOR = 2


@dataclass
class SplitConfig:
    """How to split and schedule one hard BMC query.

    ``workers`` is the process count (1 = inline and deterministic).
    ``strategy`` picks the cube axes: ``"window"`` splits by QED
    property-window position only, ``"lookahead"`` by scored split variables
    only, ``"auto"`` combines both, ``"portfolio"`` races the unsplit query
    across diverse solver configurations.  ``cube_conflict_budget`` is the
    per-cube solver budget before a cube is re-split (``None`` disables
    re-splitting); ``max_resplit_depth`` bounds the dynamic splitting depth.
    """

    workers: int = 1
    strategy: str = "auto"
    lookahead_depth: int = 2
    max_initial_cubes: int = 32
    cube_conflict_budget: Optional[int] = 4000
    max_resplit_depth: int = 4
    share_clauses: bool = True
    share_max_lbd: int = 3
    share_queue_size: int = 1024
    configs: Tuple[PortfolioConfig, ...] = DIVERSE_CONFIGS
    #: Primary-input name prefixes preferred as split variables -- the QED
    #: harness passes the instruction-port prefix here so cubes partition by
    #: focus-set opcode choice (see
    #: :func:`repro.dist.cubes.select_split_variables`).
    prefer_input_prefixes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}"
            )
        if self.lookahead_depth < 0:
            raise ValueError("lookahead_depth must be non-negative")
        if self.max_initial_cubes < 1:
            raise ValueError("max_initial_cubes must be at least 1")
        if not self.configs:
            raise ValueError("configs must not be empty")

    # -- canonical serialization ---------------------------------------
    def to_json_dict(self) -> dict:
        """Canonical, versioned JSON form.

        Every knob is explicit (defaults included), nested
        :class:`~repro.dist.portfolio.PortfolioConfig` entries serialize
        through their own canonical form, and tuple fields become lists --
        so two equal configs always produce the same dict and the dict
        round-trips through JSON (``pickle`` already worked; cache keys
        need JSON).
        """
        return {
            "format": 1,
            "workers": self.workers,
            "strategy": self.strategy,
            "lookahead_depth": self.lookahead_depth,
            "max_initial_cubes": self.max_initial_cubes,
            "cube_conflict_budget": self.cube_conflict_budget,
            "max_resplit_depth": self.max_resplit_depth,
            "share_clauses": self.share_clauses,
            "share_max_lbd": self.share_max_lbd,
            "share_queue_size": self.share_queue_size,
            "configs": [config.to_json_dict() for config in self.configs],
            "prefer_input_prefixes": list(self.prefer_input_prefixes),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "SplitConfig":
        """Inverse of :meth:`to_json_dict` (validates the format tag)."""
        if data.get("format", 1) != 1:
            raise ValueError(
                f"unsupported SplitConfig format {data.get('format')!r}"
            )
        budget = data.get("cube_conflict_budget", 4000)
        configs = data.get("configs")
        return cls(
            workers=int(data.get("workers", 1)),
            strategy=str(data.get("strategy", "auto")),
            lookahead_depth=int(data.get("lookahead_depth", 2)),
            max_initial_cubes=int(data.get("max_initial_cubes", 32)),
            cube_conflict_budget=None if budget is None else int(budget),
            max_resplit_depth=int(data.get("max_resplit_depth", 4)),
            share_clauses=bool(data.get("share_clauses", True)),
            share_max_lbd=int(data.get("share_max_lbd", 3)),
            share_queue_size=int(data.get("share_queue_size", 1024)),
            configs=(
                DIVERSE_CONFIGS
                if configs is None
                else tuple(
                    PortfolioConfig.from_json_dict(entry) for entry in configs
                )
            ),
            prefer_input_prefixes=tuple(
                str(prefix) for prefix in data.get("prefer_input_prefixes", ())
            ),
        )


@dataclass
class CubeStats:
    """Solver work spent on one cube (or one portfolio race)."""

    literals: Tuple[Literal, ...]
    verdict: str
    depth: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned_clauses: int = 0
    runtime_seconds: float = 0.0
    worker: int = 0
    config: str = "baseline"
    clauses_imported: int = 0
    clauses_exported: int = 0


@dataclass
class DistStats:
    """Aggregate statistics of one scheduled query."""

    workers: int
    strategy: str
    cubes: List[CubeStats] = field(default_factory=list)
    resplits: int = 0
    clauses_shared: int = 0
    wall_seconds: float = 0.0
    #: Winning configuration of a portfolio race (``None`` otherwise).
    winner: Optional[str] = None

    @property
    def cubes_total(self) -> int:
        return len(self.cubes)

    @property
    def cubes_sat(self) -> int:
        return sum(1 for c in self.cubes if c.verdict == "sat")

    @property
    def cubes_unsat(self) -> int:
        return sum(1 for c in self.cubes if c.verdict == "unsat")

    @property
    def cubes_unknown(self) -> int:
        return sum(1 for c in self.cubes if c.verdict == "unknown")

    @property
    def conflicts(self) -> int:
        return sum(c.conflicts for c in self.cubes)

    @property
    def decisions(self) -> int:
        return sum(c.decisions for c in self.cubes)

    @property
    def propagations(self) -> int:
        return sum(c.propagations for c in self.cubes)

    @property
    def learned_clauses(self) -> int:
        return sum(c.learned_clauses for c in self.cubes)


@dataclass
class SplitQuery:
    """One SAT query prepared for distribution.

    ``clauses`` is the complete formula (a worker must be able to rebuild
    the solver from it alone); ``assumptions`` the base assumption literals
    applied to every cube (the BMC activation literal); ``cubes`` the
    partition from :mod:`repro.dist.cubes`; ``resplit_vars`` the ranked
    look-ahead variables still unused, consumed in order by dynamic
    re-splitting; ``frozen`` the variables a preprocessing worker must keep
    (inputs, window roots, assumption and cube variables).
    ``max_conflicts`` is the global budget over all cubes -- exceeded means
    the merged verdict is UNKNOWN, matching the sequential engine's
    per-query budget semantics.

    ``incremental`` declares that ``clauses`` extends the previous query's
    clause list handed to the same scheduler *by appending only* (the BMC
    engine's per-bound contract: earlier clauses are never edited, the
    formula only grows).  The inline single-worker path then reuses its
    solver across queries -- new clauses are fed through the solver's
    incremental ``add_clause`` and learned clauses carry over between
    bounds, exactly like the sequential engine's solver reuse.  Leave it
    ``False`` (the default) for standalone queries.
    """

    clauses: List[List[Literal]]
    num_vars: int
    assumptions: List[Literal] = field(default_factory=list)
    cubes: List[Cube] = field(default_factory=lambda: [Cube(())])
    resplit_vars: List[int] = field(default_factory=list)
    frozen: FrozenSet[int] = frozenset()
    max_conflicts: Optional[int] = None
    incremental: bool = False


@dataclass
class DistResult:
    """Merged outcome of one scheduled query."""

    status: SolverStatus
    model: Optional[List[bool]] = None
    stats: DistStats = field(default_factory=lambda: DistStats(1, "auto"))

    @property
    def is_sat(self) -> bool:
        return self.status is SolverStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SolverStatus.UNSAT

    @property
    def unknown(self) -> bool:
        return self.status is SolverStatus.UNKNOWN

    def solver_stats(self) -> SolverStats:
        """The aggregate work as a :class:`~repro.sat.solver.SolverStats`."""
        stats = self.stats
        return SolverStats(
            decisions=stats.decisions,
            propagations=stats.propagations,
            conflicts=stats.conflicts,
            learned_clauses=stats.learned_clauses,
        )


def _next_resplit_var(cube: Cube, resplit_vars: Sequence[int]) -> Optional[int]:
    """The first ranked look-ahead variable the cube does not constrain."""
    used = {var_of(lit) for lit in cube.literals}
    for variable in resplit_vars:
        if variable not in used:
            return variable
    return None


class WorkScheduler:
    """Fan one :class:`SplitQuery` out over cubes and worker processes.

    A scheduler instance may be kept across queries: when consecutive
    queries declare :attr:`SplitQuery.incremental`, the inline
    single-worker path keeps one CDCL solver alive and feeds it only the
    clauses appended since the previous query, so learned clauses, variable
    activities and saved phases carry across BMC bounds instead of being
    rebuilt from scratch per bound.
    """

    def __init__(self, config: Optional[SplitConfig] = None) -> None:
        self.config = config or SplitConfig()
        #: Inline-path solver kept across incremental queries, and how many
        #: clauses of the (growing) query clause list it has been fed.
        self._inline_solver = None
        self._inline_clauses_fed = 0

    # ------------------------------------------------------------------
    def solve(
        self,
        query: SplitQuery,
        *,
        deadline: Optional[Deadline] = None,
    ) -> DistResult:
        """Answer *query*; ``deadline`` bounds it by wall clock.

        Workers inherit the *remaining* budget per cube: the deadline is
        an absolute monotonic instant, so forked children compare against
        the same clock and stop their solve calls in place.  Expiry
        merges to UNKNOWN, never to a flipped verdict.
        """
        config = self.config
        start = time.perf_counter()
        # The dist.solve span is open while workers fork, so every cube
        # worker inherits it on its collector stack -- shipped worker
        # spans parent under it with the same trace id.
        with obs_trace.span(
            "dist.solve", strategy=config.strategy, workers=config.workers
        ) as dist_span:
            if config.strategy == "portfolio":
                result = self._solve_portfolio(query, deadline)
            elif config.workers == 1:
                result = self._solve_sequential(query, deadline)
            else:
                result = self._solve_parallel(query, deadline)
            result.stats.wall_seconds = time.perf_counter() - start
            dist_span.set(
                status=result.status.value,
                cubes=len(result.stats.cubes),
                resplits=result.stats.resplits,
            )
        registry = obs_metrics.process_metrics()
        registry.inc("qed_cubes_total", len(result.stats.cubes))
        if result.stats.resplits:
            registry.inc("qed_resplits_total", result.stats.resplits)
        return result

    # ------------------------------------------------------------------
    def _solve_portfolio(
        self, query: SplitQuery, deadline: Optional[Deadline] = None
    ) -> DistResult:
        config = self.config
        outcome = solve_portfolio(
            query.clauses,
            query.num_vars,
            query.assumptions,
            configs=config.configs,
            workers=config.workers,
            frozen=query.frozen,
            max_conflicts=query.max_conflicts,
            deadline=deadline,
        )
        stats = DistStats(
            workers=config.workers,
            strategy="portfolio",
            winner=outcome.winner,
        )
        stats.cubes.append(
            CubeStats(
                literals=(),
                verdict=outcome.status.value,
                conflicts=outcome.conflicts,
                decisions=outcome.decisions,
                propagations=outcome.propagations,
                learned_clauses=outcome.learned_clauses,
                runtime_seconds=outcome.runtime_seconds,
                config=outcome.winner or "portfolio",
            )
        )
        return DistResult(
            status=outcome.status, model=outcome.model, stats=stats
        )

    # ------------------------------------------------------------------
    def _solve_sequential(
        self, query: SplitQuery, deadline: Optional[Deadline] = None
    ) -> DistResult:
        """Inline cube loop: one solver, deterministic order, no processes.

        Clause sharing is implicit -- every learned clause (not just the
        short ones) stays in the shared database for the following cubes,
        which is strictly stronger than the parallel sharing protocol.
        Across :attr:`SplitQuery.incremental` queries the solver itself is
        reused (only the appended clause tail is fed), so the sharing also
        spans bounds.
        """
        config = self.config
        personality = config.configs[0]
        solver, reduction = self._inline_solver_for(query, personality)
        stats = DistStats(workers=1, strategy=config.strategy)
        pending = deque((cube, False) for cube in query.cubes)
        spent = 0
        unknown_final = 0
        while pending:
            if deadline is not None and deadline.expired():
                # Out of wall clock with cubes still open: the partition
                # is incomplete, so the only sound merge is UNKNOWN.
                return DistResult(SolverStatus.UNKNOWN, stats=stats)
            cube, unbudgeted = pending.popleft()
            budget = None if unbudgeted else config.cube_conflict_budget
            if query.max_conflicts is not None:
                remaining = max(0, query.max_conflicts - spent)
                budget = remaining if budget is None else min(budget, remaining)
            cube_start = time.perf_counter()
            cube_span = obs_trace.span(
                "dist.cube", depth=cube.depth, literals=len(cube.literals)
            )
            result = solver.solve(
                assumptions=query.assumptions + list(cube.literals),
                max_conflicts=budget,
                deadline=deadline,
            )
            cube_span.close(
                verdict=result.status.value,
                conflicts=result.stats.conflicts,
            )
            spent += result.stats.conflicts
            record = CubeStats(
                literals=cube.literals,
                verdict=result.status.value,
                depth=cube.depth,
                conflicts=result.stats.conflicts,
                decisions=result.stats.decisions,
                propagations=result.stats.propagations,
                learned_clauses=result.stats.learned_clauses,
                runtime_seconds=time.perf_counter() - cube_start,
                config=personality.name,
            )
            stats.cubes.append(record)
            if result.is_sat:
                model = result.model
                if model is not None and reduction is not None:
                    model = reduction.extend_model(model)
                return DistResult(SolverStatus.SAT, model=model, stats=stats)
            if result.is_unsat:
                # A proof stands even when this cube's conflicts exhausted
                # the global budget (the remaining cubes, if any, get a
                # zero-conflict attempt that can still refute trivially).
                continue
            # Budget expired on this cube.
            if query.max_conflicts is not None and spent >= query.max_conflicts:
                return DistResult(SolverStatus.UNKNOWN, stats=stats)
            variable = (
                _next_resplit_var(cube, query.resplit_vars)
                if cube.depth < config.max_resplit_depth
                else None
            )
            if variable is not None:
                left, right = split_cube(cube, variable)
                # Depth-first: children go to the front so the solver's
                # learned clauses and phases stay relevant to them.
                pending.appendleft((right, False))
                pending.appendleft((left, False))
                stats.resplits += 1
                obs_trace.event(
                    "dist.resplit", depth=cube.depth, variable=variable
                )
            elif query.max_conflicts is None:
                # No global budget to respect and no split variable left:
                # re-queue unbudgeted and solve the cube to completion.
                pending.appendleft((cube, True))
            else:
                unknown_final += 1
        if unknown_final:
            return DistResult(SolverStatus.UNKNOWN, stats=stats)
        return DistResult(SolverStatus.UNSAT, stats=stats)

    # ------------------------------------------------------------------
    def _inline_solver_for(self, query: SplitQuery, personality):
        """Build the inline-path solver, or reuse the previous query's.

        Reuse requires the query to declare the append-only clause contract
        (:attr:`SplitQuery.incremental`) and the personality to not run
        whole-formula preprocessing (a preprocessed solver's variable space
        is reduction-specific, so it cannot absorb raw appended clauses).
        The reused solver is grown with ``ensure_num_vars`` and fed the
        clause tail through the incremental ``add_clause`` path; everything
        it learned in earlier queries is implied by the (monotonically
        growing) clause database, so carrying it over is sound.
        """
        solver = self._inline_solver
        if (
            query.incremental
            and solver is not None
            and not personality.preprocess
            and len(query.clauses) >= self._inline_clauses_fed
        ):
            solver.ensure_num_vars(query.num_vars)
            clauses = query.clauses
            for index in range(self._inline_clauses_fed, len(clauses)):
                solver.add_clause(clauses[index])
            self._inline_clauses_fed = len(clauses)
            return solver, None
        solver, reduction = personality.build_solver(
            query.clauses, query.num_vars, query.frozen
        )
        if query.incremental and not personality.preprocess:
            self._inline_solver = solver
            self._inline_clauses_fed = len(query.clauses)
        else:
            # Any rebuild that is not itself cacheable invalidates the
            # cache: a later incremental query's clause list extends *its
            # predecessor*, not whatever an older cached solver was built
            # from, so reusing the stale solver could mix two formulas.
            self._inline_solver = None
            self._inline_clauses_fed = 0
        return solver, reduction

    # ------------------------------------------------------------------
    def _dispatch_budget(self, query: SplitQuery, spent: int) -> Optional[int]:
        """Per-cube conflict budget for a dispatch after *spent* conflicts.

        The per-cube budget never exceeds what is left of the query's global
        budget (matching the sequential path), so a single cube cannot
        silently burn past ``max_conflicts`` even when
        ``cube_conflict_budget`` is ``None``.
        """
        budget = self.config.cube_conflict_budget
        if query.max_conflicts is not None:
            remaining = max(0, query.max_conflicts - spent)
            budget = remaining if budget is None else min(budget, remaining)
        return budget

    def _solve_parallel(
        self, query: SplitQuery, deadline: Optional[Deadline] = None
    ) -> DistResult:
        config = self.config
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        tasks: "multiprocessing.Queue" = context.Queue()
        results: "multiprocessing.Queue" = context.Queue()
        stop = context.Event()
        expires_at = None if deadline is None else deadline.expires_at
        # Multiset of cubes currently owned by the pool (queued or being
        # solved), keyed by (literals, depth).  Crash recovery re-enqueues
        # a dead worker's in-flight cube, and this bookkeeping is what
        # makes the race benign: if the "lost" result was actually in the
        # queue buffer, the duplicate completion later finds its key
        # already closed and is ignored instead of double-closing
        # ``outstanding`` (which would let the loop exit with an open
        # cube and merge an unsound UNSAT).
        open_cubes: Dict[Tuple[Tuple[Literal, ...], int], int] = {}

        def put_task(
            literals: Tuple[Literal, ...],
            depth: int,
            budget: Optional[int],
            *,
            new: bool,
        ) -> None:
            if new:
                key = (literals, depth)
                open_cubes[key] = open_cubes.get(key, 0) + 1
            tasks.put((literals, depth, budget))

        for cube in query.cubes:
            put_task(
                tuple(cube.literals),
                cube.depth,
                self._dispatch_budget(query, 0),
                new=True,
            )
        # Without a cube budget the cube count is fixed, so extra workers
        # would only build solvers to idle; with re-splitting enabled the
        # cube population can outgrow the initial set, so the full requested
        # pool is started even for a single seed cube.
        if config.cube_conflict_budget is None:
            workers = min(config.workers, max(1, len(query.cubes)))
        else:
            workers = config.workers
        # One bounded inbox per worker: an exporter broadcasts a clause into
        # every *peer's* inbox (single shared queue semantics would deliver
        # each clause to exactly one consumer -- possibly the exporter).
        inboxes: Optional[List["multiprocessing.Queue"]] = (
            [context.Queue(config.share_queue_size) for _ in range(workers)]
            if config.share_clauses and workers > 1
            else None
        )

        # Per-worker in-flight announcements travel over dedicated pipes,
        # NOT the results queue: ``Connection.send`` is synchronous (no
        # feeder thread), so a worker that is SIGKILLed right after
        # announcing a cube cannot lose the announcement the way an
        # ``mp.Queue.put`` buffered in the feeder thread can be lost.
        announces: List["multiprocessing.connection.Connection"] = []
        processes: List["multiprocessing.process.BaseProcess"] = []
        inflight: List[Optional[Tuple[Tuple[Literal, ...], int, Optional[int]]]] = []

        def spawn(worker_id: int) -> None:
            recv_conn, send_conn = context.Pipe(False)
            process = context.Process(
                target=_pool_worker,
                args=(
                    worker_id,
                    config.configs[worker_id % len(config.configs)],
                    query,
                    config.share_max_lbd if config.share_clauses else None,
                    tasks,
                    results,
                    inboxes,
                    stop,
                    send_conn,
                    expires_at,
                ),
                daemon=True,
            )
            process.start()
            send_conn.close()
            if worker_id < len(processes):
                announces[worker_id].close()
                announces[worker_id] = recv_conn
                processes[worker_id] = process
                inflight[worker_id] = None
            else:
                announces.append(recv_conn)
                processes.append(process)
                inflight.append(None)

        for worker_id in range(workers):
            spawn(worker_id)

        stats = DistStats(workers=workers, strategy=config.strategy)
        outstanding = len(query.cubes)
        spent = 0
        unknown_final = 0
        respawns = 0
        max_respawns = _MAX_RESPAWNS_FACTOR * workers
        crash_counts: Dict[Tuple[Tuple[Literal, ...], int], int] = {}
        status = SolverStatus.UNSAT
        model: Optional[List[bool]] = None

        def drain_announcements() -> None:
            for worker_id, conn in enumerate(announces):
                while True:
                    try:
                        if not conn.poll():
                            break
                        kind, payload = conn.recv()
                    except (EOFError, OSError):
                        break
                    if kind == "taken":
                        inflight[worker_id] = payload
                    else:  # "done"
                        inflight[worker_id] = None

        def recover_dead_workers() -> bool:
            """Re-enqueue lost cubes and respawn; False = give up."""
            nonlocal respawns, outstanding
            dead = [
                worker_id
                for worker_id, process in enumerate(processes)
                if process.exitcode is not None
            ]
            if not dead:
                return True
            drain_announcements()
            for worker_id in dead:
                lost = inflight[worker_id]
                inflight[worker_id] = None
                if lost is not None:
                    literals, depth, budget = lost
                    key = (literals, depth)
                    if open_cubes.get(key, 0) <= 0:
                        # Its result actually made it out before the
                        # crash; nothing to recover.
                        lost = None
                    else:
                        crash_counts[key] = crash_counts.get(key, 0) + 1
                if lost is not None:
                    literals, depth, budget = lost
                    key = (literals, depth)
                    cube = Cube(literals, depth)
                    variable = (
                        _next_resplit_var(cube, query.resplit_vars)
                        if crash_counts[key] >= _CRASH_RESPLIT_AFTER
                        and depth < config.max_resplit_depth
                        else None
                    )
                    if variable is not None:
                        # The cube itself is suspected of provoking the
                        # crash (two workers died on it): split it so the
                        # children present different search spaces.
                        open_cubes[key] -= 1
                        left, right = split_cube(cube, variable)
                        put_task(
                            tuple(left.literals), left.depth, budget, new=True
                        )
                        put_task(
                            tuple(right.literals), right.depth, budget, new=True
                        )
                        stats.resplits += 1
                        obs_trace.event(
                            "dist.resplit",
                            depth=cube.depth,
                            variable=variable,
                            reason="crash",
                        )
                        outstanding += 1
                    else:
                        # Same open cube instance, back on the queue:
                        # not ``new`` (its open_cubes slot is still held).
                        put_task(literals, depth, budget, new=False)
                if respawns >= max_respawns:
                    return False
                respawns += 1
                obs_trace.event("dist.worker_respawn", worker=worker_id)
                spawn(worker_id)
            return True

        try:
            while outstanding > 0:
                if deadline is not None and deadline.expired():
                    # Wall clock exhausted with cubes still open: stop
                    # dispatching and merge to UNKNOWN (workers notice
                    # the same absolute deadline inside their solve
                    # calls and drain quickly).
                    status = SolverStatus.UNKNOWN
                    break
                drain_announcements()
                try:
                    message = results.get(timeout=0.1)
                except queue_module.Empty:
                    # A worker only exits before `stop` if it crashed (OOM
                    # kill, unhandled exception).  Its in-flight cube, if
                    # any, was announced over the pipe: re-enqueue it (or
                    # re-split it when this cube keeps killing workers)
                    # and spawn a replacement, so verdicts stay
                    # worker-crash-independent.  Only a crash *storm*
                    # (respawn cap hit) fails safe to UNKNOWN.
                    if not recover_dead_workers():
                        status = SolverStatus.UNKNOWN
                        break
                    continue
                (
                    worker_id,
                    literals,
                    depth,
                    verdict,
                    cube_model,
                    work,
                    imported,
                    exported,
                    config_name,
                    runtime,
                    span_batch,
                    telemetry_batch,
                ) = message
                # Worker span batches merge into the parent collector: the
                # ids are pid-prefixed and their parents are spans this
                # collector already holds (inherited across the fork), so
                # the cube subtree lands under the open dist.solve span.
                collector = obs_trace.active()
                if collector is not None and span_batch is not None:
                    collector.absorb(span_batch)
                # Worker heartbeats merge the same way (pid-tagged); the
                # parent sink's flush callback then ships them onward.
                sink = obs_telemetry.active()
                if sink is not None and telemetry_batch:
                    sink.absorb(telemetry_batch)
                literals = tuple(literals)
                key = (literals, depth)
                if verdict != "sat" and open_cubes.get(key, 0) <= 0:
                    # Stale duplicate of a cube that was already closed
                    # (its "lost" pre-crash result survived after all and
                    # the recovery re-run also finished).  A SAT verdict
                    # is still accepted -- a model is a model.
                    continue
                if open_cubes.get(key, 0) > 0:
                    open_cubes[key] -= 1
                record = CubeStats(
                    literals=literals,
                    verdict=verdict,
                    depth=depth,
                    conflicts=work[0],
                    decisions=work[1],
                    propagations=work[2],
                    learned_clauses=work[3],
                    runtime_seconds=runtime,
                    worker=worker_id,
                    config=config_name,
                    clauses_imported=imported,
                    clauses_exported=exported,
                )
                stats.cubes.append(record)
                stats.clauses_shared += exported
                spent += work[0]
                over_budget = (
                    query.max_conflicts is not None
                    and spent >= query.max_conflicts
                )
                if verdict == "sat":
                    status = SolverStatus.SAT
                    model = cube_model
                    break
                if verdict == "unsat":
                    # Book-keeping first: a query whose *last* cube is UNSAT
                    # is proven even when that cube's conflicts exhausted the
                    # global budget (the sequential path agrees).
                    outstanding -= 1
                elif over_budget:
                    unknown_final += 1
                    outstanding -= 1
                else:
                    # UNKNOWN within budget: re-split or finish the cube.
                    cube = Cube(literals, depth)
                    variable = (
                        _next_resplit_var(cube, query.resplit_vars)
                        if depth < config.max_resplit_depth
                        else None
                    )
                    if variable is not None:
                        left, right = split_cube(cube, variable)
                        child_budget = self._dispatch_budget(query, spent)
                        put_task(
                            tuple(left.literals),
                            left.depth,
                            child_budget,
                            new=True,
                        )
                        put_task(
                            tuple(right.literals),
                            right.depth,
                            child_budget,
                            new=True,
                        )
                        stats.resplits += 1
                        obs_trace.event(
                            "dist.resplit",
                            depth=depth,
                            variable=variable,
                            reason="budget",
                        )
                        outstanding += 1
                    elif query.max_conflicts is None:
                        # Solve to completion (no budget).
                        put_task(literals, depth, None, new=True)
                    else:
                        unknown_final += 1
                        outstanding -= 1
                # When the global budget is exhausted the loop keeps
                # draining: queued cubes still run (their dispatch budgets
                # were capped at what the budget allowed at dispatch time)
                # and may refute cheaply, so a fully-refuted cube set still
                # merges to UNSAT instead of abandoning in-flight proofs as
                # UNKNOWN.  Re-splitting stops (the branch above), so the
                # queue drains and the loop terminates.
            else:
                status = (
                    SolverStatus.UNKNOWN if unknown_final else SolverStatus.UNSAT
                )
        finally:
            stop.set()
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=2.0)
            # Escalate: a worker wedged in uninterruptible state (or with
            # SIGTERM masked by a C extension) must not leak past teardown.
            for process in processes:
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
            for conn in announces:
                conn.close()
            for q in [tasks, results] + (inboxes or []):
                q.close()
                q.cancel_join_thread()
        # Stable ordering for reporting: completion order is racy.
        stats.cubes.sort(key=lambda c: (c.depth, c.literals))
        return DistResult(status=status, model=model, stats=stats)


def _pool_worker(  # fork-entry
    worker_id: int,
    personality: PortfolioConfig,
    query: SplitQuery,
    share_max_lbd: Optional[int],
    tasks: "multiprocessing.Queue",
    results: "multiprocessing.Queue",
    inboxes: Optional[List["multiprocessing.Queue"]],
    stop: "multiprocessing.synchronize.Event",
    announce: Optional["multiprocessing.connection.Connection"] = None,
    expires_at: Optional[float] = None,
) -> None:
    """Worker process: build one solver, then steal cubes until stopped.

    Each task carries its own conflict budget (``None`` = solve to
    completion), assigned by the scheduler at dispatch time so it reflects
    what is left of the query's global budget.  Clause sharing is a
    broadcast: a learned clause is pushed into every *peer's* inbox, and the
    worker drains only its own inbox, so it never re-imports its own
    exports and every peer sees every shared clause (unless a full inbox
    drops it).

    ``announce`` is the crash-recovery pipe: the worker synchronously
    announces each cube before solving it ("taken") and after reporting
    it ("done"), so the scheduler knows exactly which cube died with a
    killed worker.  ``expires_at`` is the inherited absolute monotonic
    deadline (the fork shares the parent's clock), applied to every
    solve call.
    """
    deadline = None if expires_at is None else Deadline(expires_at=expires_at)
    # The collector (if any) arrived through the fork memory snapshot with
    # the parent's trace id and its open span stack -- this worker's spans
    # parent under the span that was open at fork time (dist.solve).
    collector = obs_trace.active()
    # Same for the telemetry sink: heartbeats recorded here ship home with
    # each cube result, so the fork-inherited flush callback is detached
    # to keep a heartbeat from travelling both channels.
    telemetry = obs_telemetry.active()
    if telemetry is not None:
        telemetry.detach_flush()
        telemetry.set_context(worker=worker_id)
    solver, reduction = personality.build_solver(
        query.clauses, query.num_vars, query.frozen
    )
    if share_max_lbd is not None and inboxes is not None:
        solver.enable_clause_export(max_lbd=share_max_lbd)
    while not stop.is_set():
        try:
            literals, depth, budget = tasks.get(timeout=0.05)
        except queue_module.Empty:
            continue
        obs_mark = None if collector is None else collector.mark()
        telemetry_mark = None if telemetry is None else telemetry.mark()
        if announce is not None:
            try:
                announce.send(("taken", (literals, depth, budget)))
            except (BrokenPipeError, OSError):
                pass
        # Chaos-harness injection point: a seeded "kill" here dies with
        # the cube announced but unreported -- the exact window the
        # scheduler's recovery path must cover.
        faults.crash_point("dist.scheduler.cube")
        imported = 0
        if inboxes is not None:
            for _ in range(256):
                try:
                    clause = inboxes[worker_id].get_nowait()
                except queue_module.Empty:
                    break
                solver.add_clause(clause)
                imported += 1
        cube_start = time.perf_counter()
        cube_span = obs_trace.span(
            "dist.cube", worker=worker_id, depth=depth, literals=len(literals)
        )
        result = solver.solve(
            assumptions=query.assumptions + list(literals),
            max_conflicts=budget,
            deadline=deadline,
        )
        cube_span.close(
            verdict=result.status.value, conflicts=result.stats.conflicts
        )
        exported = 0
        if inboxes is not None:
            for clause in solver.drain_exported():
                delivered = False
                for peer, inbox in enumerate(inboxes):
                    if peer == worker_id:
                        continue
                    try:
                        inbox.put_nowait(clause)
                        delivered = True
                    except queue_module.Full:
                        continue
                if delivered:
                    exported += 1
        model = result.model
        if model is not None and reduction is not None:
            model = reduction.extend_model(model)
        results.put(
            (
                worker_id,
                tuple(literals),
                depth,
                result.status.value,
                model,
                (
                    result.stats.conflicts,
                    result.stats.decisions,
                    result.stats.propagations,
                    result.stats.learned_clauses,
                ),
                imported,
                exported,
                personality.name,
                time.perf_counter() - cube_start,
                None if obs_mark is None else collector.batch_since(obs_mark),
                None
                if telemetry_mark is None
                else telemetry.batch_since(telemetry_mark),
            )
        )
        if announce is not None:
            try:
                announce.send(("done", None))
            except (BrokenPipeError, OSError):
                pass
