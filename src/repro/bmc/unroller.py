"""Transition-relation unrolling.

The :class:`Unroller` takes an elaborated :class:`~repro.rtl.design.Design`
and produces, frame by frame, the AIG literals of every input, state element
and output.  Frame 0 state is bound either to concrete reset/initial values
(the QED-consistent start state of the paper) or to fresh symbolic inputs
(the "symbolic starting state" extension mentioned in the paper's future
directions).

Because the initial state of Symbolic QED runs is fully concrete, constant
folding inside the AIG collapses much of the early frames; this is the main
reason the pure-Python BMC stays fast enough for the benchmark harness.

Unrolling itself only *builds* AIG literals -- nothing is committed to CNF
here.  Downstream, the engine walks the cone of influence of the property
window (:meth:`repro.expr.aig.AIG.cone_of`) and the Tseitin encoder
translates exactly the reachable part, so frame outputs the property never
observes cost AIG nodes but no solver variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from repro.expr.aig import AIG
from repro.expr.bitblast import BitBlaster, Bits
from repro.expr.bitvec import BV
from repro.rtl.design import Design

InitialState = Union[int, str]
SYMBOLIC = "symbolic"


@dataclass
class UnrolledFrame:
    """AIG literals of one time frame."""

    index: int
    inputs: Dict[str, Bits] = field(default_factory=dict)
    state: Dict[str, Bits] = field(default_factory=dict)
    outputs: Dict[str, Bits] = field(default_factory=dict)
    assumption_bits: Dict[str, int] = field(default_factory=dict)


class Unroller:
    """Unroll a design over successive time frames into a shared AIG."""

    def __init__(
        self,
        design: Design,
        *,
        initial_state: Optional[Mapping[str, InitialState]] = None,
        aig: Optional[AIG] = None,
    ) -> None:
        self.design = design
        self.aig = aig if aig is not None else AIG()
        self.frames: List[UnrolledFrame] = []
        self._initial_overrides: Dict[str, InitialState] = dict(initial_state or {})
        # State literals entering the *next* frame to be built.
        self._incoming_state: Optional[Dict[str, Bits]] = None
        #: AIG input literals of the state elements that start symbolic;
        #: consumers (counterexample extraction) read the solver's chosen
        #: start state back through these.
        self.symbolic_initial: Dict[str, Bits] = {}

    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Number of frames unrolled so far."""
        return len(self.frames)

    def _initial_state_bits(self, blaster: BitBlaster) -> Dict[str, Bits]:
        bits: Dict[str, Bits] = {}
        for element in self.design.state:
            override = self._initial_overrides.get(element.name)
            if override == SYMBOLIC:
                bits[element.name] = [
                    self.aig.add_input(f"{element.name}@init[{i}]")
                    for i in range(element.width)
                ]
                self.symbolic_initial[element.name] = bits[element.name]
            else:
                value = element.reset if override is None else int(override)
                bits[element.name] = blaster.constant_bits(element.width, value)
        return bits

    def unroll_frame(self) -> UnrolledFrame:
        """Add one more time frame and return its literals."""
        frame_index = len(self.frames)
        blaster = BitBlaster(self.aig)

        if self._incoming_state is None:
            state_bits = self._initial_state_bits(blaster)
        else:
            state_bits = self._incoming_state

        # Bind current state.
        for name, bits in state_bits.items():
            blaster.bind(name, bits)

        # Fresh symbolic inputs for this frame.
        input_bits: Dict[str, Bits] = {}
        for name, width in self.design.inputs.items():
            input_bits[name] = [
                self.aig.add_input(f"{name}@{frame_index}[{i}]")
                for i in range(width)
            ]
            blaster.bind(name, input_bits[name])

        # Outputs of this frame.
        output_bits: Dict[str, Bits] = {}
        for name, expr in self.design.outputs.items():
            output_bits[name] = blaster.blast(expr)

        # Design-level assumptions of this frame.
        assumption_bits: Dict[str, int] = {}
        for name, expr in self.design.assumptions.items():
            assumption_bits[name] = blaster.blast_bit(expr)

        frame = UnrolledFrame(
            index=frame_index,
            inputs=input_bits,
            state=state_bits,
            outputs=output_bits,
            assumption_bits=assumption_bits,
        )
        self.frames.append(frame)

        # Compute the state entering the next frame.
        next_bits: Dict[str, Bits] = {}
        for element in self.design.state:
            next_bits[element.name] = blaster.blast(
                self.design.next_state[element.name]
            )
        self._incoming_state = next_bits
        return frame

    def unroll(self, num_frames: int) -> List[UnrolledFrame]:
        """Ensure at least *num_frames* frames exist; return all frames."""
        while len(self.frames) < num_frames:
            self.unroll_frame()
        return self.frames

    # ------------------------------------------------------------------
    def blast_at_frame(self, expr: BV, frame_index: int) -> Bits:
        """Blast an expression over the design namespace at a given frame.

        The expression may reference input names, state names and output
        names of the design; output names resolve to the literal lists already
        computed for that frame.
        """
        if frame_index >= len(self.frames):
            raise IndexError(
                f"frame {frame_index} has not been unrolled "
                f"(have {len(self.frames)})"
            )
        frame = self.frames[frame_index]
        blaster = BitBlaster(self.aig)
        for name, bits in frame.state.items():
            blaster.bind(name, bits)
        for name, bits in frame.inputs.items():
            blaster.bind(name, bits)
        for name, bits in frame.outputs.items():
            if not blaster.is_bound(name):
                blaster.bind(name, bits)
        return blaster.blast(expr)

    def blast_bit_at_frame(self, expr: BV, frame_index: int) -> int:
        """Blast a 1-bit expression at a frame; return its single literal."""
        bits = self.blast_at_frame(expr, frame_index)
        if len(bits) != 1:
            raise ValueError("expected a 1-bit expression")
        return bits[0]
