"""The bounded model checking loop.

:class:`BoundedModelChecker` searches for a violation of a safety property
within a bounded number of cycles, walking a schedule of increasing bounds.
The search is *genuinely incremental*: one :class:`~repro.expr.cnfgen.CNFBuilder`
and one :class:`~repro.sat.solver.CDCLSolver` stay alive for the whole run.

Pipeline stages
===============

Every query the solver answers has passed through the full formula-reduction
pipeline; per bound the stages are:

1. **AIG rewrite** -- the unroller blasts the new time-frames into the shared
   :class:`~repro.expr.aig.AIG`, where constant folding, structural hashing
   and local two-level rewriting (contradiction, absorption, substitution,
   shared-child merging) shrink the graph as it is built.
2. **Cone of influence** -- only the cone of the violation-window roots (plus
   the environmental assumptions whose support intersects it, computed via
   :meth:`~repro.expr.aig.AIG.cone_inputs` to a fixpoint) is carried further;
   frame outputs and assumptions outside the cone are never encoded.
3. **Tseitin** -- :class:`~repro.expr.cnfgen.CNFBuilder` translates exactly
   the not-yet-encoded part of that cone on top of the shared
   node-to-variable map.
4. **CNF preprocessing** -- the newly encoded clause slab is reduced by
   :func:`repro.sat.preprocess.preprocess` (bounded variable elimination,
   subsumption, self-subsuming resolution, failed-literal probing) with the
   *frozen* set protecting activation literals, input/frame-interface
   variables and the window roots, so it composes with incrementality.
5. **Incremental solve** -- the reduced slab is fed to the long-lived
   :class:`~repro.sat.solver.CDCLSolver` and the window is solved under an
   activation-literal assumption; learned clauses carry across bounds.

With :attr:`BMCProblem.split` set, stage 5 is replaced by the **distributed
proof engine** (:mod:`repro.dist`): the window query is partitioned into
cubes (by property-window position and look-ahead-scored split variables)
and fanned over a worker-process pool with dynamic re-splitting and
learned-clause sharing.  All cubes UNSAT retires the window exactly as a
sequential UNSAT does; any SAT cube's model is replayed into a
counterexample exactly as a sequential model is.  Stages 1-4 are shared
between both paths.

Window encoding
===============

Per bound ``k`` the engine

1. unrolls only the time-frames that do not exist yet and Tseitin-encodes
   just their logic on top of the shared node-to-variable map (frames encoded
   for earlier bounds are never re-encoded),
2. adds the environmental assumptions of the new frames whose support
   intersects the property cone as permanent unit clauses (they hold at
   every bound),
3. builds a *violation window* -- "the property fails at some frame in
   ``[w, k)``", where ``w`` is the first frame not yet proven safe -- and
   guards it behind a fresh activation literal ``a_k`` via the clause
   ``(-a_k OR violated)``,
4. asks the shared solver for a model under the assumption ``a_k``.

On UNSAT the activation literal is retired with the permanent unit ``-a_k``,
and -- because the earlier bounds already proved no trace violates the
property before ``w`` -- every frame in the window is now known safe in *all*
traces, so ``property@frame`` is asserted permanently and strengthens later
queries.  Learned clauses are implied by the clause database alone (never by
the per-call assumptions), so they carry across bounds; :class:`BMCResult`
reports the per-bound counts so the reuse is observable.

The window formulation also makes sparse ``bound_schedule``s sound: a
schedule of ``[4, 8]`` checks frames ``0..3`` in the first query and frames
``4..7`` in the second, instead of silently skipping the frames between the
scheduled bounds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.bmc.property import Assumption, SafetyProperty
from repro.deadline import Deadline
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as obs_telemetry
from repro.obs import trace as obs_trace
from repro.bmc.trace import CounterexampleTrace, property_holds_at, replay_inputs
from repro.bmc.unroller import SYMBOLIC, Unroller
from repro.dist.cubes import (
    Cube,
    binary_cubes,
    ladder_cubes,
    product_cubes,
    select_split_variables,
)
from repro.dist.scheduler import (
    DistResult,
    DistStats,
    SplitConfig,
    SplitQuery,
    WorkScheduler,
)
from repro.expr.cnfgen import CNFBuilder
from repro.rtl.design import Design
from repro.sat.cnf import CNF, var_of
from repro.sat.preprocess import (
    EliminationRecord,
    PreprocessStats,
    extend_model,
    preprocess,
)
from repro.sat.solver import CDCLSolver, SolverResult


class BMCStatus(Enum):
    """Outcome of a bounded model checking run."""

    VIOLATION = "violation"
    NO_VIOLATION_WITHIN_BOUND = "no_violation_within_bound"


@dataclass
class BoundStats:
    """Solver work and formula growth of one bound's query."""

    bound: int
    #: First frame of the violation window ( == bound - 1 for a dense
    #: schedule past the property's start cycle).
    window_start: int
    runtime_seconds: float
    #: "sat", "unsat", "unknown", or "skipped" (no query was needed because
    #: the property is not enforced yet at this bound).
    verdict: str
    #: Wall-clock spent inside the SAT solver (or the distributed
    #: scheduler) answering this bound's query -- excludes frame encoding,
    #: cone-of-influence analysis and slab preprocessing, so
    #: ``propagations / solve_seconds`` is a pure solver-throughput number.
    solve_seconds: float = 0.0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    #: Clauses learned while answering this bound's query.
    learned_clauses: int = 0
    #: Learned clauses alive in the shared database after this bound --
    #: i.e. the clauses the *next* bound starts from.  A growing number
    #: here is the signature of cross-bound reuse.
    learned_clauses_carried: int = 0
    #: Formula growth caused by this bound (new frames + window encoding),
    #: measured *after* preprocessing reduced the slab.
    new_variables: int = 0
    new_clauses: int = 0
    #: AIG nodes in the cone of influence of this bound's window roots.
    cone_nodes: int = 0
    #: Environmental assumptions asserted (in the cone) vs. deferred.
    assumptions_asserted: int = 0
    assumptions_deferred: int = 0
    #: Clause count of the newly encoded slab before/after preprocessing.
    slab_clauses_before: int = 0
    slab_clauses_after: int = 0
    #: CNF preprocessing work on this bound's slab (see
    #: :class:`repro.sat.preprocess.PreprocessStats`); ``None`` when
    #: preprocessing was disabled or skipped.
    preprocess: Optional[PreprocessStats] = None
    #: Per-cube statistics of the distributed proof engine (see
    #: :class:`repro.dist.scheduler.DistStats`); ``None`` for a sequential
    #: (in-process) query.
    dist: Optional[DistStats] = None

    @property
    def propagations_per_second(self) -> float:
        """Solver propagation throughput of this bound's query.

        Propagations divided by :attr:`solve_seconds` (0.0 for skipped
        bounds or queries too fast to time) -- the per-bound form of the
        benchmark gate metric.
        """
        if self.solve_seconds <= 0.0:
            return 0.0
        return self.propagations / self.solve_seconds

    @property
    def variables_eliminated(self) -> int:
        """Variables removed from this bound's slab by preprocessing."""
        return self.preprocess.variables_eliminated if self.preprocess else 0

    @property
    def clauses_subsumed(self) -> int:
        """Clauses removed from this bound's slab by subsumption."""
        return self.preprocess.clauses_subsumed if self.preprocess else 0

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serializable form of this bound's statistics.

        Used verbatim by the bench report (``scripts/bench_bmc.py``) and by
        the serving layer (:mod:`repro.serve`), which streams these dicts to
        HTTP clients as per-bound progress events.
        """
        row: Dict[str, object] = {
            "bound": self.bound,
            "window_start": self.window_start,
            "verdict": self.verdict,
            "runtime_seconds": round(self.runtime_seconds, 6),
            "solve_seconds": round(self.solve_seconds, 6),
            "propagations_per_second": round(self.propagations_per_second, 1),
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "learned_clauses": self.learned_clauses,
            "learned_clauses_carried": self.learned_clauses_carried,
            "new_variables": self.new_variables,
            "new_clauses": self.new_clauses,
            "cone_nodes": self.cone_nodes,
            "assumptions_asserted": self.assumptions_asserted,
            "assumptions_deferred": self.assumptions_deferred,
            "slab_clauses_before": self.slab_clauses_before,
            "slab_clauses_after": self.slab_clauses_after,
        }
        if self.preprocess is not None:
            row["preprocess"] = {
                "variables_eliminated": self.preprocess.variables_eliminated,
                "clauses_subsumed": self.preprocess.clauses_subsumed,
                "literals_strengthened": self.preprocess.literals_strengthened,
                "units_derived": self.preprocess.units_derived,
                "failed_literals": self.preprocess.failed_literals,
                "rounds": self.preprocess.rounds,
                "time_seconds": round(self.preprocess.time_seconds, 6),
            }
        if self.dist is not None:
            row["dist"] = {
                "workers": self.dist.workers,
                "strategy": self.dist.strategy,
                "cubes_total": self.dist.cubes_total,
                "cubes_sat": self.dist.cubes_sat,
                "cubes_unsat": self.dist.cubes_unsat,
                "cubes_unknown": self.dist.cubes_unknown,
                "resplits": self.dist.resplits,
                "clauses_shared": self.dist.clauses_shared,
                "wall_seconds": round(self.dist.wall_seconds, 6),
                "winner": self.dist.winner,
                "cubes": [
                    {
                        "literals": list(cube.literals),
                        "verdict": cube.verdict,
                        "depth": cube.depth,
                        "conflicts": cube.conflicts,
                        "decisions": cube.decisions,
                        "propagations": cube.propagations,
                        "runtime_seconds": round(cube.runtime_seconds, 6),
                        "worker": cube.worker,
                        "config": cube.config,
                    }
                    for cube in self.dist.cubes
                ],
            }
        return row


@dataclass
class BMCResult:
    """Result of a bounded model checking run."""

    status: BMCStatus
    property_name: str
    bound_reached: int
    runtime_seconds: float
    counterexample: Optional[CounterexampleTrace] = None
    per_bound_runtime: List[float] = field(default_factory=list)
    per_bound_stats: List[BoundStats] = field(default_factory=list)
    num_sat_variables: int = 0
    num_sat_clauses: int = 0
    #: True when a wall-clock :class:`repro.deadline.Deadline` stopped the
    #: bound loop before the schedule was exhausted.  The stopped bound is
    #: still reported in :attr:`per_bound_stats` with ``verdict="unknown"``
    #: (zero solver work), so downstream "all bounds definitive?" checks
    #: (e.g. ``qed_definitive``) can never mistake a truncated run for a
    #: completed proof.
    deadline_expired: bool = False

    @property
    def found_violation(self) -> bool:
        """Whether a counterexample was found."""
        return self.status is BMCStatus.VIOLATION

    @property
    def counterexample_length(self) -> int:
        """Length (in cycles) of the counterexample (0 when none)."""
        return self.counterexample.length if self.counterexample else 0

    @property
    def total_conflicts(self) -> int:
        """Conflicts summed over every bound's query."""
        return sum(stats.conflicts for stats in self.per_bound_stats)

    @property
    def total_learned_clauses(self) -> int:
        """Clauses learned across the whole run."""
        return sum(stats.learned_clauses for stats in self.per_bound_stats)

    @property
    def total_propagations(self) -> int:
        """Unit propagations summed over every bound's query."""
        return sum(stats.propagations for stats in self.per_bound_stats)

    @property
    def solve_seconds(self) -> float:
        """Wall-clock spent inside the solver, summed over every bound.

        Excludes encoding, cone analysis and preprocessing -- the
        denominator of :attr:`propagations_per_second`.
        """
        return sum(stats.solve_seconds for stats in self.per_bound_stats)

    @property
    def propagations_per_second(self) -> float:
        """Whole-run solver propagation throughput (0.0 when untimed)."""
        seconds = self.solve_seconds
        if seconds <= 0.0:
            return 0.0
        return self.total_propagations / seconds

    @property
    def learned_clauses_carried(self) -> int:
        """Learned clauses alive in the solver after the final bound."""
        if not self.per_bound_stats:
            return 0
        return self.per_bound_stats[-1].learned_clauses_carried

    @property
    def learned_clauses_reused(self) -> int:
        """Learned clauses each query inherited from earlier bounds, summed.

        Zero for a single-bound run or a run that never reuses anything;
        strictly positive as soon as one query starts from a predecessor's
        learned clauses.
        """
        reused = 0
        previous = 0
        for stats in self.per_bound_stats:
            if stats.verdict != "skipped":
                reused += previous
            previous = stats.learned_clauses_carried
        return reused

    @property
    def variables_eliminated(self) -> int:
        """Variables removed by CNF preprocessing across all bounds."""
        return sum(s.variables_eliminated for s in self.per_bound_stats)

    @property
    def clauses_subsumed(self) -> int:
        """Clauses removed by subsumption across all bounds."""
        return sum(s.clauses_subsumed for s in self.per_bound_stats)

    @property
    def preprocess_seconds(self) -> float:
        """Wall-clock spent inside CNF preprocessing across all bounds."""
        return sum(
            s.preprocess.time_seconds
            for s in self.per_bound_stats
            if s.preprocess is not None
        )

    @property
    def cubes_solved(self) -> int:
        """Cubes answered by the distributed engine across all bounds."""
        return sum(
            s.dist.cubes_total for s in self.per_bound_stats if s.dist
        )

    @property
    def cubes_resplit(self) -> int:
        """Dynamic re-splits performed across all bounds."""
        return sum(s.dist.resplits for s in self.per_bound_stats if s.dist)

    @property
    def clauses_shared(self) -> int:
        """Short learned clauses exchanged between workers, all bounds."""
        return sum(
            s.dist.clauses_shared for s in self.per_bound_stats if s.dist
        )

    @property
    def frames_proven(self) -> int:
        """Frames proven safe in every trace by the chain of UNSAT windows.

        This is the depth metric of conflict-budget ablations: under a fixed
        ``max_conflicts_per_query`` a smaller formula lets the engine retire
        windows (and therefore prove frames) deeper before the budget bites.

        An UNKNOWN bound does not cap the metric: its unproven frames fold
        into the next window (``window_start`` stays put), so a later UNSAT
        answer retires them too -- ``[unsat@2, unknown@4, unsat@6]`` proves
        all six frames.
        """
        proven = 0
        for stats in self.per_bound_stats:
            if stats.verdict in ("unsat", "skipped"):
                proven = stats.bound
        return proven


@dataclass
class BMCProblem:
    """A design plus the property and assumptions to check.

    The engine always uses the windowed incremental encoding: per scheduled
    bound it asks for a violation at any not-yet-proven frame below the
    bound, so the query granularity is controlled entirely by
    ``bound_schedule``.  A dense schedule (the default ``1..max_bound``)
    checks one new frame per query and yields minimal counterexamples (the
    textbook "first violation" loop); a single-entry schedule ``[k]`` turns
    the whole run into one SAT query covering every frame ("any violation",
    how a commercial engine is typically invoked); sparse schedules fold the
    skipped frames into the next query's window rather than silently
    assuming them safe.

    ``violation_mode`` (``"first"``/``"any"``) is retained for API
    compatibility and as a label of intent -- it no longer changes the
    encoding, which is determined by the schedule alone.

    ``bound_schedule`` optionally replaces the default ``1..max_bound``
    progression with an explicit (strictly increasing) list of bounds.

    ``preprocess`` runs the SatELite-style CNF preprocessor on every newly
    encoded clause slab before it reaches the solver (sound under
    incrementality: interface variables are frozen).  ``coi_assumptions``
    defers environmental assumptions whose input support is disjoint from
    the property cone: dropping constraints only widens the search space,
    so UNSAT verdicts stay valid, and a SAT answer is *provisional* -- the
    engine then asserts every deferred assumption and re-solves, so the
    violation it reports is consistent with the full environment (a
    deferred assumption cannot influence the property cone, but it can
    forbid the trace the solver picked, or jointly forbid all traces).
    ``max_conflicts_per_query`` bounds the solver effort per bound (the
    query answers UNKNOWN when exhausted), which is how the conflict-budget
    ablations measure reachable depth.

    ``split`` hands every bound's query to the distributed proof engine
    (:mod:`repro.dist`): the query is partitioned into cubes by QED
    property-window position and look-ahead-scored split variables, fanned
    over a worker pool with dynamic re-splitting and learned-clause sharing,
    and the per-cube verdicts are merged (all UNSAT -> the window is proven
    exactly as in sequential mode; any SAT -> the model is replayed into a
    counterexample exactly as in sequential mode).  ``split=None`` (the
    default) keeps the single-process incremental path;
    ``SplitConfig(workers=1)`` runs the cube decomposition inline and stays
    byte-for-byte deterministic.
    """

    design: Design
    prop: SafetyProperty
    assumptions: Sequence[Assumption] = ()
    initial_state: Optional[Dict[str, object]] = None
    max_bound: int = 12
    use_design_assumptions: bool = True
    violation_mode: str = "first"
    bound_schedule: Optional[Sequence[int]] = None
    preprocess: bool = True
    coi_assumptions: bool = True
    max_conflicts_per_query: Optional[int] = None
    split: Optional[SplitConfig] = None

    def __post_init__(self) -> None:
        if self.max_bound < 1:
            raise ValueError("max_bound must be at least 1")
        if self.violation_mode not in ("first", "any"):
            raise ValueError("violation_mode must be 'first' or 'any'")
        if self.bound_schedule is not None:
            if not self.bound_schedule:
                raise ValueError("bound_schedule must not be empty")
            if any(b < 1 for b in self.bound_schedule):
                raise ValueError("bounds must be positive")
            if any(
                later <= earlier
                for earlier, later in zip(
                    self.bound_schedule, list(self.bound_schedule)[1:]
                )
            ):
                raise ValueError("bound_schedule must be strictly increasing")

    def bounds(self) -> List[int]:
        """The sequence of bounds the engine will explore."""
        if self.bound_schedule is not None:
            return list(self.bound_schedule)
        return list(range(1, self.max_bound + 1))

    def knobs_dict(self) -> Dict[str, object]:
        """Canonical, versioned JSON form of the *engine knobs*.

        The design/property/assumption payload is deliberately excluded --
        it is identified by content (see
        :meth:`repro.rtl.design.Design.structural_hash`) rather than by
        value.  Two problems with equal knobs produce the same dict, which
        is the contract the serving layer's cache keys rely on.
        """
        return {
            "format": 1,
            "max_bound": self.max_bound,
            "use_design_assumptions": self.use_design_assumptions,
            "violation_mode": self.violation_mode,
            "bound_schedule": (
                None
                if self.bound_schedule is None
                else [int(b) for b in self.bound_schedule]
            ),
            "preprocess": self.preprocess,
            "coi_assumptions": self.coi_assumptions,
            "max_conflicts_per_query": self.max_conflicts_per_query,
            "split": None if self.split is None else self.split.to_json_dict(),
        }


class BoundedModelChecker:
    """Incremental-bound BMC over a single safety property."""

    def __init__(self, problem: BMCProblem) -> None:
        # Fail fast on malformed netlists: a combinational cycle or
        # undriven net would hang or garble unrolling/bit-blasting, which
        # walk the expression graph expecting a well-formed DAG.  Raises
        # DesignLintError carrying the full report.
        from repro.analysis.netlist_lint import check_design

        check_design(problem.design, prop=problem.prop.expr)
        self.problem = problem
        self._unroller = Unroller(
            problem.design, initial_state=problem.initial_state
        )
        self._cnf = CNF()
        self._builder = CNFBuilder(self._unroller.aig, self._cnf)
        self._solver: Optional[CDCLSolver] = None
        #: Number of clauses of ``self._cnf`` already handed to the solver.
        self._clauses_fed = 0
        #: Variables known to the solver after the last sync; everything at
        #: or below this index may be watched by solver clauses and is
        #: therefore frozen for slab preprocessing.
        self._vars_fed = 0
        #: Frames whose environmental constraints have been encoded.
        self._frames_encoded = 0
        #: Frames ``< self._proven_frames`` are known to satisfy the
        #: property in every trace (by the chain of earlier UNSAT answers).
        self._proven_frames = 0
        #: Input-node support of everything asserted for the property so
        #: far, and the environmental assumptions still waiting for their
        #: support to intersect it (cone-of-influence filtering).
        self._support: Set[int] = set()
        self._pending_assumptions: List[Tuple[int, Optional[Set[int]]]] = []
        #: Cumulative reconstruction stack of preprocessing-eliminated
        #: variables (see :func:`repro.sat.preprocess.extend_model`).
        self._elim_stack: List[EliminationRecord] = []
        #: Persistent cube-and-conquer scheduler (``problem.split`` runs):
        #: kept across bounds so the inline single-worker path reuses its
        #: solver incrementally -- the engine's clause list only ever grows,
        #: which is the contract ``SplitQuery.incremental`` declares.
        self._dist_scheduler: Optional[WorkScheduler] = None

    # ------------------------------------------------------------------
    def _sync_solver(self) -> CDCLSolver:
        """Create the solver on first use; afterwards feed it only the
        clauses (and variables) added to the shared CNF since the last
        sync."""
        if self._solver is None:
            self._solver = CDCLSolver(self._cnf)
            self._clauses_fed = self._cnf.num_clauses
            self._vars_fed = self._cnf.num_vars
            return self._solver
        solver = self._solver
        solver.ensure_num_vars(self._cnf.num_vars)
        clauses = self._cnf.clauses
        while self._clauses_fed < len(clauses):
            solver.add_clause(clauses[self._clauses_fed])
            self._clauses_fed += 1
        self._vars_fed = self._cnf.num_vars
        return solver

    def _encode_new_frames(self, bound: int) -> None:
        """Unroll the frames ``[frames_encoded, bound)`` and queue their
        environmental constraints.

        Frame logic reaches the CNF lazily through the property/assumption
        cones.  The environmental constraints collected here are permanent
        facts (they hold at every bound), but they are only *asserted* once
        their input support intersects the property cone (see
        :meth:`_assert_coi_assumptions`) -- an assumption over inputs the
        property can never observe cannot change a verdict.
        """
        problem = self.problem
        self._unroller.unroll(bound)
        pending = self._pending_assumptions
        for frame_index in range(self._frames_encoded, bound):
            frame = self._unroller.frames[frame_index]
            if problem.use_design_assumptions:
                for literal in frame.assumption_bits.values():
                    pending.append((literal, None))
            for assumption in problem.assumptions:
                if assumption.applies_at(frame_index):
                    literal = self._unroller.blast_bit_at_frame(
                        assumption.expr, frame_index
                    )
                    pending.append((literal, None))
        self._frames_encoded = bound

    def _assert_coi_assumptions(
        self, window_cone: Set[int]
    ) -> Tuple[int, int]:
        """Assert the pending assumptions inside the cone of influence.

        The support (primary-input nodes) of the window cone is folded into
        the running support set; every pending assumption whose own support
        intersects it is asserted, which can in turn enlarge the support, so
        the filter runs to a fixpoint.  With ``coi_assumptions`` disabled
        every pending assumption is asserted unconditionally.

        Returns ``(asserted, deferred)`` counts for this bound's stats.
        """
        aig = self._unroller.aig
        builder = self._builder
        pending = self._pending_assumptions
        if not self.problem.coi_assumptions:
            for literal, _ in pending:
                builder.assert_literal(literal)
            asserted = len(pending)
            pending.clear()
            return asserted, 0
        support = self._support
        support.update(node for node in window_cone if aig.is_input(node))
        asserted = 0
        changed = True
        while changed and pending:
            changed = False
            still_pending: List[Tuple[int, Optional[Set[int]]]] = []
            for literal, cached_support in pending:
                literal_support = (
                    cached_support
                    if cached_support is not None
                    else aig.cone_inputs([literal])
                )
                # Constant assumptions (folded to true/false) have empty
                # support; assert them -- a folded-false assumption must
                # surface as UNSAT, not be silently dropped.
                if not literal_support or not literal_support.isdisjoint(support):
                    builder.assert_literal(literal)
                    support.update(literal_support)
                    asserted += 1
                    changed = True
                else:
                    still_pending.append((literal, literal_support))
            self._pending_assumptions = pending = still_pending
        return asserted, len(pending)

    def _encode_window(
        self, window_start: int, bound: int
    ) -> Tuple[int, List[int]]:
        """Encode "violated at some frame in ``[window_start, bound)``"
        behind a fresh activation variable.

        Returns the activation variable and the per-frame property literals
        (the window roots, used for cone statistics and the frozen set).
        """
        aig = self._unroller.aig
        builder = self._builder
        roots = [
            self._unroller.blast_bit_at_frame(
                self.problem.prop.expr, frame_index
            )
            for frame_index in range(window_start, bound)
        ]
        violated_somewhere = aig.or_many(aig.negate(root) for root in roots)
        activation_var = builder.new_activation_var()
        builder.assert_literal_if(violated_somewhere, activation_var)
        return activation_var, roots

    def _frozen_interface_vars(
        self, activation_var: int, window_roots: Sequence[int]
    ) -> Set[int]:
        """Variables the engine may observe or assert after this query.

        This is the frozen contract shared by slab preprocessing and the
        distributed workers' whole-formula preprocessing: the activation
        literal, the primary-input variables (frame inputs and symbolic
        initial state -- counterexample extraction reads the model through
        them), the constant-true variable and the window-root variables
        that :meth:`_retire_window` may assert later.
        """
        builder = self._builder
        frozen = {activation_var}
        frozen.update(builder.input_vars)
        if builder.constant_var is not None:
            frozen.add(builder.constant_var)
        aig = self._unroller.aig
        for root in window_roots:
            root_var = builder.node_var(aig.lit_node(root))
            if root_var is not None:
                frozen.add(root_var)
        return frozen

    def _preprocess_slab(
        self, activation_var: int, window_roots: Sequence[int]
    ) -> Optional[PreprocessStats]:
        """Reduce the not-yet-fed clause slab in place.

        Frozen (never eliminated): every variable the solver already knows
        plus the engine-interface set of :meth:`_frozen_interface_vars`.
        Tseitin auxiliaries that a later bound re-references despite
        elimination are transparently re-encoded by the builder (see
        ``CNFBuilder.mark_eliminated``).
        """
        clauses = self._cnf.clauses
        fed = self._clauses_fed
        slab = clauses[fed:]
        if len(slab) < 24:
            return None  # not worth the pass on trivial slabs
        builder = self._builder
        frozen = self._frozen_interface_vars(activation_var, window_roots)
        # Everything the solver already watches is frozen via the cutoff
        # (cheaper than materializing an O(num_vars) set per bound).
        result = preprocess(slab, frozen=frozen, frozen_cutoff=self._vars_fed)
        del clauses[fed:]
        for clause in result.clauses:
            self._cnf.add_clause(clause)
        if result.eliminated:
            builder.mark_eliminated(
                variable for variable, _ in result.eliminated
            )
            self._elim_stack.extend(result.eliminated)
        return result.stats

    def _assert_deferred_and_resolve(
        self,
        activation_var: int,
        deadline: Optional[Deadline] = None,
    ) -> SolverResult:
        """Confirm a provisional SAT answer against the full environment.

        Deferred assumptions cannot influence the property cone, but they
        can forbid the specific trace the solver picked -- or, if they are
        jointly unsatisfiable, every trace.  They are permanent facts, so
        they are asserted for good (future bounds inherit them) and the
        window is re-solved under the same activation assumption.
        """
        builder = self._builder
        for literal, _ in self._pending_assumptions:
            builder.assert_literal(literal)
        self._pending_assumptions = []
        solver = self._sync_solver()
        return solver.solve(
            assumptions=[activation_var],
            max_conflicts=self.problem.max_conflicts_per_query,
            deadline=deadline,
        )

    def _build_split_query(
        self,
        activation_var: int,
        window_roots: Sequence[int],
        window_cone: Set[int],
    ) -> SplitQuery:
        """Prepare this bound's query for the distributed proof engine.

        The cube axes follow the split strategy: the QED property-window
        position ("the first violated frame is i", a ladder partition over
        the per-frame violation literals) and/or look-ahead-scored split
        variables from the window cone (preferring the instruction-port
        inputs, i.e. the focus-set opcode choice, when the config names
        them).  Variables not consumed by the initial cubes are kept as the
        ranked re-split sequence for cubes that overrun their budget.
        """
        split = self.problem.split
        assert split is not None
        aig = self._unroller.aig
        builder = self._builder
        violated = [
            builder.literal(aig.negate(root)) for root in window_roots
        ]
        root_vars = {var_of(literal) for literal in violated}
        # Variables whose defining clauses slab-BVE removed occur in no
        # clause of the query: splitting on them would be a no-op that
        # doubles the work per level, so they are excluded.
        lookahead = select_split_variables(
            aig,
            builder,
            window_cone,
            limit=split.lookahead_depth + split.max_resplit_depth + 4,
            exclude=root_vars | {activation_var} | builder.eliminated_vars,
            prefer_input_prefixes=split.prefer_input_prefixes,
        )
        used = 0
        if split.strategy == "portfolio":
            cubes = [Cube(())]
        elif split.strategy == "window":
            cubes = ladder_cubes(violated)
        elif split.strategy == "lookahead":
            depth = min(split.lookahead_depth, len(lookahead))
            while depth > 0 and (1 << depth) > split.max_initial_cubes:
                depth -= 1
            cubes = binary_cubes(lookahead, depth)
            used = depth
        else:  # "auto": window ladder x look-ahead tree, capped
            ladder = ladder_cubes(violated)
            depth = min(split.lookahead_depth, len(lookahead))
            while depth > 0 and len(ladder) * (1 << depth) > split.max_initial_cubes:
                depth -= 1
            cubes = product_cubes(ladder, binary_cubes(lookahead, depth))
            used = depth
        frozen = self._frozen_interface_vars(activation_var, window_roots)
        frozen.update(root_vars)
        frozen.update(lookahead)
        return SplitQuery(
            clauses=self._cnf.clauses,
            num_vars=self._cnf.num_vars,
            assumptions=[activation_var],
            cubes=cubes,
            resplit_vars=lookahead[used:],
            frozen=frozenset(frozen),
            max_conflicts=self.problem.max_conflicts_per_query,
            incremental=True,
        )

    def _solve_distributed(
        self,
        activation_var: int,
        window_roots: Sequence[int],
        window_cone: Set[int],
        deadline: Optional[Deadline] = None,
    ) -> DistResult:
        """Answer this bound's query via the cube-and-conquer scheduler."""
        query = self._build_split_query(
            activation_var, window_roots, window_cone
        )
        if self._dist_scheduler is None:
            self._dist_scheduler = WorkScheduler(self.problem.split)
        result = self._dist_scheduler.solve(query, deadline=deadline)
        # The distributed path never feeds the in-process solver; advance
        # the slab cursors so the next bound's preprocessing still operates
        # on only its new clauses (with earlier variables frozen).
        self._clauses_fed = self._cnf.num_clauses
        self._vars_fed = self._cnf.num_vars
        return result

    def _retire_window(self, activation_var: int, window_start: int, bound: int) -> None:
        """After an UNSAT answer: disable the window clause for good and
        promote the window frames to proven-safe facts."""
        builder = self._builder
        self._cnf.add_unit(-activation_var)
        for frame_index in range(window_start, bound):
            literal = self._unroller.blast_bit_at_frame(
                self.problem.prop.expr, frame_index
            )
            builder.assert_literal(literal)
        self._proven_frames = bound

    def _extract_inputs(
        self, model: List[bool], bound: int
    ) -> List[Dict[str, int]]:
        """Read back the input values the solver chose for each frame.

        Input bits without a CNF variable were outside every encoded cone
        (unconstrained) and default to 0.
        """
        inputs: List[Dict[str, int]] = []
        for frame_index in range(bound):
            frame = self._unroller.frames[frame_index]
            inputs.append(
                {
                    name: self._model_bits_value(model, bits)
                    for name, bits in frame.inputs.items()
                }
            )
        return inputs

    def _model_bits_value(self, model: List[bool], bits: Sequence[int]) -> int:
        """Decode a little-endian AIG literal vector under *model*."""
        aig = self._unroller.aig
        builder = self._builder
        value = 0
        for bit_index, literal in enumerate(bits):
            cnf_var = builder.node_var(aig.lit_node(literal))
            bit_value = False if cnf_var is None else model[cnf_var]
            if aig.lit_inverted(literal):
                bit_value = not bit_value
            if bit_value:
                value |= 1 << bit_index
        return value

    def _extract_initial_state(self, model: List[bool]) -> Dict[str, int]:
        """The replay seed: concrete overrides plus the solver's choice for
        every symbolic start-state element.

        Without this the replay starts from the reset values, which only
        coincides with the model when the solver happens to pick them.
        """
        initial: Dict[str, int] = {}
        for name, override in (self.problem.initial_state or {}).items():
            if override != SYMBOLIC:
                initial[name] = int(override)
        for name, bits in self._unroller.symbolic_initial.items():
            initial[name] = self._model_bits_value(model, bits)
        return initial

    def _violation_result(
        self,
        sat_result: SolverResult,
        bound: int,
        start_time: float,
        per_bound: List[float],
        per_bound_stats: List[BoundStats],
    ) -> BMCResult:
        problem = self.problem
        assert sat_result.model is not None
        input_sequence = self._extract_inputs(sat_result.model, bound)
        trace = replay_inputs(
            problem.design,
            input_sequence,
            problem.prop.expr,
            problem.prop.name,
            initial_state=self._extract_initial_state(sat_result.model),
        )
        # Locate the first violating cycle on the replayed trace and
        # truncate there, so counterexample lengths are minimal for
        # the sequence the solver chose.
        first_violation = None
        for cycle in range(problem.prop.start_cycle, trace.length):
            if not property_holds_at(
                problem.design, trace, problem.prop.expr, cycle
            ):
                first_violation = cycle
                break
        if first_violation is None:
            raise AssertionError(
                "BMC internal error: SAT model does not reproduce a "
                f"violation of {problem.prop.name!r} within the bound"
            )
        if first_violation + 1 < trace.length:
            trace.length = first_violation + 1
            trace.inputs = trace.inputs[: trace.length]
            trace.states = trace.states[: trace.length]
            trace.outputs = trace.outputs[: trace.length]
        return BMCResult(
            status=BMCStatus.VIOLATION,
            property_name=problem.prop.name,
            bound_reached=bound,
            runtime_seconds=time.perf_counter() - start_time,
            counterexample=trace,
            per_bound_runtime=per_bound,
            per_bound_stats=per_bound_stats,
            num_sat_variables=self._cnf.num_vars,
            num_sat_clauses=self._cnf.num_clauses,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        on_bound: Optional[Callable[[BoundStats], None]] = None,
        deadline: Optional[Deadline] = None,
    ) -> BMCResult:
        """Execute the incremental-bound search.

        ``on_bound`` is an optional progress hook invoked with each bound's
        :class:`BoundStats` the moment it is final (including ``skipped``
        bounds and the violating bound).  The serving layer uses it to
        stream per-bound progress to HTTP clients while a long query runs;
        exceptions it raises propagate and abort the run.

        ``deadline`` is a wall-clock budget: it is checked before each
        bound and threaded into the solver (and distributed scheduler),
        so expiry degrades the run to UNKNOWN at the current bound — it
        never flips a verdict.  The stopped bound is reported as a
        zero-work ``verdict="unknown"`` :class:`BoundStats` and the
        result carries ``deadline_expired=True``.
        """
        problem = self.problem
        start_time = time.perf_counter()
        per_bound: List[float] = []
        per_bound_stats: List[BoundStats] = []
        deadline_expired = False
        # Telemetry rides the per-bound progress channel: solver heartbeats
        # are stamped with the bound being searched, and each completed
        # bound adds one summary heartbeat whose counters are the run's
        # cumulative totals (monotone by construction).
        telemetry = obs_telemetry.active()
        telemetry_totals = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "learned": 0,
        }

        def emit(stats: BoundStats) -> None:
            per_bound_stats.append(stats)
            if telemetry is not None:
                telemetry_totals["conflicts"] += stats.conflicts
                telemetry_totals["decisions"] += stats.decisions
                telemetry_totals["propagations"] += stats.propagations
                telemetry_totals["learned"] += stats.learned_clauses
                telemetry.record(
                    "bound",
                    bound=stats.bound,
                    verdict=stats.verdict,
                    bound_seconds=stats.runtime_seconds,
                    solve_seconds=stats.solve_seconds,
                    conflicts=telemetry_totals["conflicts"],
                    decisions=telemetry_totals["decisions"],
                    propagations=telemetry_totals["propagations"],
                    learned=telemetry_totals["learned"],
                    learned_carried=stats.learned_clauses_carried,
                )
            # Metrics sampling happens here -- the existing per-bound poll
            # point -- never inside the solver's hot loops.
            registry = obs_metrics.process_metrics()
            registry.inc("qed_bounds_total")
            if stats.conflicts:
                registry.inc("qed_solver_conflicts_total", stats.conflicts)
            if stats.decisions:
                registry.inc("qed_solver_decisions_total", stats.decisions)
            if stats.propagations:
                registry.inc(
                    "qed_solver_propagations_total", stats.propagations
                )
            if stats.learned_clauses:
                registry.inc(
                    "qed_solver_learned_clauses_total", stats.learned_clauses
                )
            if stats.solve_seconds:
                registry.inc(
                    "qed_stage_seconds_total", stats.solve_seconds,
                    stage="solve",
                )
            if on_bound is not None:
                on_bound(stats)

        for bound in problem.bounds():
            if deadline is not None and deadline.expired():
                # Out of wall clock before this bound's query: report it
                # as explicitly unknown (zero solver work) so the bound
                # schedule and the stats list never silently diverge --
                # a truncated run must not look definitive downstream.
                deadline_expired = True
                obs_trace.event("bmc.deadline_expired", bound=bound)
                obs_metrics.process_metrics().inc(
                    "qed_deadline_expiries_total", scope="bmc"
                )
                emit(
                    BoundStats(
                        bound=bound,
                        window_start=max(
                            self._proven_frames, problem.prop.start_cycle
                        ),
                        runtime_seconds=0.0,
                        verdict="unknown",
                        learned_clauses_carried=(
                            self._solver.num_learned_clauses
                            if self._solver
                            else 0
                        ),
                    )
                )
                break
            bound_start = time.perf_counter()
            vars_before = self._cnf.num_vars
            clauses_before = self._cnf.num_clauses
            if telemetry is not None:
                # Solver heartbeats sampled while this bound's query runs
                # carry the bound number (the dashboard's progress axis).
                telemetry.set_context(bound=bound)
            bound_span = obs_trace.span("bmc.bound", bound=bound)
            with obs_trace.span("bmc.encode", bound=bound):
                self._encode_new_frames(bound)

            window_start = max(self._proven_frames, problem.prop.start_cycle)
            if window_start >= bound:
                # The property is not enforced anywhere in the new frames
                # (still before its start cycle): nothing to ask the solver.
                elapsed = time.perf_counter() - bound_start
                per_bound.append(elapsed)
                bound_span.close(verdict="skipped")
                emit(
                    BoundStats(
                        bound=bound,
                        window_start=window_start,
                        runtime_seconds=elapsed,
                        verdict="skipped",
                        learned_clauses_carried=(
                            self._solver.num_learned_clauses
                            if self._solver
                            else 0
                        ),
                        new_variables=self._cnf.num_vars - vars_before,
                        new_clauses=self._cnf.num_clauses - clauses_before,
                    )
                )
                continue

            with obs_trace.span("bmc.encode_window", bound=bound):
                activation_var, window_roots = self._encode_window(
                    window_start, bound
                )
            with obs_trace.span("bmc.coi", bound=bound) as coi_span:
                window_cone = self._unroller.aig.cone_of(window_roots)
                cone_nodes = len(window_cone)
                asserted, deferred = self._assert_coi_assumptions(window_cone)
                coi_span.set(cone_nodes=cone_nodes, asserted=asserted)
            encode_seconds = time.perf_counter() - bound_start
            slab_before = self._cnf.num_clauses - self._clauses_fed
            with obs_trace.span("bmc.preprocess", bound=bound):
                preprocess_stats = (
                    self._preprocess_slab(activation_var, window_roots)
                    if problem.preprocess
                    else None
                )
            preprocess_seconds = (
                time.perf_counter() - bound_start - encode_seconds
            )
            registry = obs_metrics.process_metrics()
            registry.inc(
                "qed_stage_seconds_total", encode_seconds, stage="encode"
            )
            if preprocess_seconds > 0.0:
                registry.inc(
                    "qed_stage_seconds_total",
                    preprocess_seconds,
                    stage="preprocess",
                )
            slab_after = self._cnf.num_clauses - self._clauses_fed
            dist_stats: Optional[DistStats] = None
            if problem.split is not None:
                solve_span = obs_trace.span(
                    "bmc.solve", bound=bound, mode="distributed"
                )
                result = self._solve_distributed(
                    activation_var, window_roots, window_cone, deadline
                )
                dist_stats = result.stats
                solve_results = [result]
                if result.is_sat and self._pending_assumptions:
                    # Provisional SAT: assert the deferred (off-cone)
                    # assumptions permanently and re-dispatch the query.
                    asserted += deferred
                    deferred = 0
                    for literal, _ in self._pending_assumptions:
                        self._builder.assert_literal(literal)
                    self._pending_assumptions = []
                    result = self._solve_distributed(
                        activation_var, window_roots, window_cone, deadline
                    )
                    # Merge both dispatches into one DistStats and report
                    # only the merged result: DistStats sums its cube list,
                    # so also appending to solve_results would double-count
                    # the re-dispatch's work in BoundStats.
                    dist_stats.cubes.extend(result.stats.cubes)
                    dist_stats.resplits += result.stats.resplits
                    dist_stats.clauses_shared += result.stats.clauses_shared
                    dist_stats.wall_seconds += result.stats.wall_seconds
                    result.stats = dist_stats
                    solve_results = [result]
                if result.is_unsat:
                    self._retire_window(activation_var, window_start, bound)
                learned_carried = 0
                # Scheduler wall time: cube solving only -- query building
                # (look-ahead split scoring) and window retirement are not
                # solver throughput.
                solve_seconds = dist_stats.wall_seconds
                solve_span.close(verdict=result.status.value)
            else:
                solve_span = obs_trace.span(
                    "bmc.solve", bound=bound, mode="incremental"
                )
                solver = self._sync_solver()
                solve_start = time.perf_counter()
                result = solver.solve(
                    assumptions=[activation_var],
                    max_conflicts=problem.max_conflicts_per_query,
                    deadline=deadline,
                )
                solve_seconds = time.perf_counter() - solve_start
                solve_results = [result]
                if result.is_sat and self._pending_assumptions:
                    # The SAT answer is provisional: confirm it against the
                    # deferred (off-cone) environmental assumptions.
                    asserted += deferred
                    deferred = 0
                    resolve_start = time.perf_counter()
                    result = self._assert_deferred_and_resolve(
                        activation_var, deadline
                    )
                    solve_seconds += time.perf_counter() - resolve_start
                    solve_results.append(result)
                if result.is_unsat:
                    self._retire_window(activation_var, window_start, bound)
                    self._sync_solver()
                learned_carried = solver.num_learned_clauses
                solve_span.close(verdict=result.status.value)

            elapsed = time.perf_counter() - bound_start
            per_bound.append(elapsed)
            emit(
                BoundStats(
                    bound=bound,
                    window_start=window_start,
                    runtime_seconds=elapsed,
                    solve_seconds=solve_seconds,
                    verdict=result.status.value,
                    conflicts=sum(r.stats.conflicts for r in solve_results),
                    decisions=sum(r.stats.decisions for r in solve_results),
                    propagations=sum(
                        r.stats.propagations for r in solve_results
                    ),
                    learned_clauses=sum(
                        r.stats.learned_clauses for r in solve_results
                    ),
                    learned_clauses_carried=learned_carried,
                    new_variables=self._cnf.num_vars - vars_before,
                    new_clauses=self._cnf.num_clauses - clauses_before,
                    cone_nodes=cone_nodes,
                    assumptions_asserted=asserted,
                    assumptions_deferred=deferred,
                    slab_clauses_before=slab_before,
                    slab_clauses_after=slab_after,
                    preprocess=preprocess_stats,
                    dist=dist_stats,
                )
            )
            bound_span.close(
                verdict=result.status.value, seconds=round(elapsed, 6)
            )

            if result.is_sat:
                assert result.model is not None
                if self._elim_stack:
                    result.model = extend_model(
                        result.model,
                        self._elim_stack,
                        skip=self._builder.restored_vars,
                    )
                if telemetry is not None:
                    telemetry.set_context(bound=None)
                return self._violation_result(
                    result, bound, start_time, per_bound, per_bound_stats
                )
            # UNKNOWN (``max_conflicts_per_query`` expired) falls through
            # like UNSAT but without retiring the window, so the frames stay
            # unproven and ``frames_proven`` reflects only real proofs.

        if (
            not deadline_expired
            and deadline is not None
            and deadline.expired()
            and per_bound_stats
            and per_bound_stats[-1].verdict == "unknown"
        ):
            # The clock ran out *during* the final bound's query (the
            # solver returned UNKNOWN at the deadline), so the loop-top
            # check never saw it.
            deadline_expired = True
        if telemetry is not None:
            telemetry.set_context(bound=None)
        if deadline_expired and per_bound_stats:
            # Honest reach: the last bound whose query actually ran (the
            # final stats entry is the zero-work expiry marker).
            bound_reached = per_bound_stats[-1].bound
        else:
            bound_reached = problem.bounds()[-1]
        return BMCResult(
            status=BMCStatus.NO_VIOLATION_WITHIN_BOUND,
            property_name=problem.prop.name,
            bound_reached=bound_reached,
            runtime_seconds=time.perf_counter() - start_time,
            per_bound_runtime=per_bound,
            per_bound_stats=per_bound_stats,
            num_sat_variables=self._cnf.num_vars,
            num_sat_clauses=self._cnf.num_clauses,
            deadline_expired=deadline_expired,
        )


def check_property(
    design: Design,
    prop: SafetyProperty,
    assumptions: Sequence[Assumption] = (),
    *,
    max_bound: int = 12,
    initial_state: Optional[Dict[str, object]] = None,
) -> BMCResult:
    """Convenience wrapper: build a problem, run it, return the result."""
    problem = BMCProblem(
        design=design,
        prop=prop,
        assumptions=assumptions,
        initial_state=initial_state,
        max_bound=max_bound,
    )
    return BoundedModelChecker(problem).run()
