"""The bounded model checking loop.

:class:`BoundedModelChecker` searches for a violation of a safety property
within a bounded number of cycles, incrementing the bound one frame at a
time.  Each bound produces a fresh CNF (the AIG is shared across bounds, so
only the new frame's logic is re-encoded into clauses each iteration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.bmc.property import Assumption, SafetyProperty
from repro.bmc.trace import CounterexampleTrace, property_holds_at, replay_inputs
from repro.bmc.unroller import Unroller
from repro.expr.cnfgen import CNFBuilder
from repro.rtl.design import Design
from repro.sat.cnf import CNF
from repro.sat.solver import CDCLSolver


class BMCStatus(Enum):
    """Outcome of a bounded model checking run."""

    VIOLATION = "violation"
    NO_VIOLATION_WITHIN_BOUND = "no_violation_within_bound"


@dataclass
class BMCResult:
    """Result of a bounded model checking run."""

    status: BMCStatus
    property_name: str
    bound_reached: int
    runtime_seconds: float
    counterexample: Optional[CounterexampleTrace] = None
    per_bound_runtime: List[float] = field(default_factory=list)
    num_sat_variables: int = 0
    num_sat_clauses: int = 0

    @property
    def found_violation(self) -> bool:
        """Whether a counterexample was found."""
        return self.status is BMCStatus.VIOLATION

    @property
    def counterexample_length(self) -> int:
        """Length (in cycles) of the counterexample (0 when none)."""
        return self.counterexample.length if self.counterexample else 0


@dataclass
class BMCProblem:
    """A design plus the property and assumptions to check.

    ``violation_mode`` selects the per-bound encoding:

    * ``"first"`` -- the property is assumed to hold on every frame before
      the last one and must be violated exactly at the last frame; bounds are
      explored incrementally (the textbook loop).
    * ``"any"`` -- a single query per bound asks for a violation at *any*
      frame up to the bound.  Combined with a ``bound_schedule`` of one entry
      this turns a whole run into one SAT call, which is how the evaluation
      campaign keeps the pure-Python backend within the runtimes the paper
      reports for the commercial engine.

    ``bound_schedule`` optionally replaces the default ``1..max_bound``
    progression with an explicit list of bounds to try.
    """

    design: Design
    prop: SafetyProperty
    assumptions: Sequence[Assumption] = ()
    initial_state: Optional[Dict[str, object]] = None
    max_bound: int = 12
    use_design_assumptions: bool = True
    violation_mode: str = "first"
    bound_schedule: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if self.max_bound < 1:
            raise ValueError("max_bound must be at least 1")
        if self.violation_mode not in ("first", "any"):
            raise ValueError("violation_mode must be 'first' or 'any'")
        if self.bound_schedule is not None:
            if not self.bound_schedule:
                raise ValueError("bound_schedule must not be empty")
            if any(b < 1 for b in self.bound_schedule):
                raise ValueError("bounds must be positive")

    def bounds(self) -> List[int]:
        """The sequence of bounds the engine will explore."""
        if self.bound_schedule is not None:
            return list(self.bound_schedule)
        return list(range(1, self.max_bound + 1))


class BoundedModelChecker:
    """Incremental-bound BMC over a single safety property."""

    def __init__(self, problem: BMCProblem) -> None:
        self.problem = problem
        self._unroller = Unroller(
            problem.design, initial_state=problem.initial_state
        )

    # ------------------------------------------------------------------
    def _encode_bound(self, bound: int) -> tuple[CNF, CNFBuilder, int]:
        """Build the CNF for a violation exactly at cycle ``bound - 1``."""
        problem = self.problem
        self._unroller.unroll(bound)
        cnf = CNF()
        builder = CNFBuilder(self._unroller.aig, cnf)

        # Environmental constraints at every frame up to the bound.
        for frame_index in range(bound):
            frame = self._unroller.frames[frame_index]
            if problem.use_design_assumptions:
                for literal in frame.assumption_bits.values():
                    builder.assert_literal(literal)
            for assumption in problem.assumptions:
                if assumption.applies_at(frame_index):
                    literal = self._unroller.blast_bit_at_frame(
                        assumption.expr, frame_index
                    )
                    builder.assert_literal(literal)

        violation_frame = bound - 1
        if violation_frame < problem.prop.start_cycle:
            # The property is not yet enforced; encode an unsatisfiable query
            # so the engine simply moves to the next bound.
            builder.cnf.add_clause([])
            return cnf, builder, violation_frame

        if problem.violation_mode == "first":
            # Property must hold on all earlier frames (we only look for the
            # first violation, which also keeps counterexamples minimal) ...
            for frame_index in range(problem.prop.start_cycle, bound - 1):
                literal = self._unroller.blast_bit_at_frame(
                    problem.prop.expr, frame_index
                )
                builder.assert_literal(literal)
            # ... and be violated at the last frame.
            literal = self._unroller.blast_bit_at_frame(
                problem.prop.expr, violation_frame
            )
            builder.assert_literal(self._unroller.aig.negate(literal))
        else:
            # A violation at any frame up to the bound.
            aig = self._unroller.aig
            violated_somewhere = aig.or_many(
                aig.negate(
                    self._unroller.blast_bit_at_frame(
                        problem.prop.expr, frame_index
                    )
                )
                for frame_index in range(problem.prop.start_cycle, bound)
            )
            builder.assert_literal(violated_somewhere)
        return cnf, builder, violation_frame

    def _extract_inputs(
        self, builder: CNFBuilder, model: List[bool], bound: int
    ) -> List[Dict[str, int]]:
        """Read back the input values the solver chose for each frame."""
        inputs: List[Dict[str, int]] = []
        for frame_index in range(bound):
            frame = self._unroller.frames[frame_index]
            frame_inputs: Dict[str, int] = {}
            for name, bits in frame.inputs.items():
                value = 0
                for bit_index, literal in enumerate(bits):
                    node = self._unroller.aig.lit_node(literal)
                    cnf_var = builder._node_var.get(node)
                    if cnf_var is None:
                        bit_value = False  # unconstrained input bit
                    else:
                        bit_value = model[cnf_var]
                    if self._unroller.aig.lit_inverted(literal):
                        bit_value = not bit_value
                    if bit_value:
                        value |= 1 << bit_index
                frame_inputs[name] = value
            inputs.append(frame_inputs)
        return inputs

    # ------------------------------------------------------------------
    def run(self) -> BMCResult:
        """Execute the incremental-bound search."""
        problem = self.problem
        start_time = time.perf_counter()
        per_bound: List[float] = []
        last_vars = 0
        last_clauses = 0

        for bound in problem.bounds():
            bound_start = time.perf_counter()
            cnf, builder, violation_frame = self._encode_bound(bound)
            last_vars = cnf.num_vars
            last_clauses = cnf.num_clauses
            solver = CDCLSolver(cnf)
            result = solver.solve()
            per_bound.append(time.perf_counter() - bound_start)

            if result.satisfiable:
                assert result.model is not None
                input_sequence = self._extract_inputs(builder, result.model, bound)
                trace = replay_inputs(
                    problem.design,
                    input_sequence,
                    problem.prop.expr,
                    problem.prop.name,
                )
                # Locate the first violating cycle on the replayed trace and
                # truncate there, so counterexample lengths are minimal for
                # the sequence the solver chose.
                first_violation = None
                for cycle in range(problem.prop.start_cycle, trace.length):
                    if not property_holds_at(
                        problem.design, trace, problem.prop.expr, cycle
                    ):
                        first_violation = cycle
                        break
                if first_violation is None:
                    raise AssertionError(
                        "BMC internal error: SAT model does not reproduce a "
                        f"violation of {problem.prop.name!r} within the bound"
                    )
                if first_violation + 1 < trace.length:
                    trace.length = first_violation + 1
                    trace.inputs = trace.inputs[: trace.length]
                    trace.states = trace.states[: trace.length]
                    trace.outputs = trace.outputs[: trace.length]
                return BMCResult(
                    status=BMCStatus.VIOLATION,
                    property_name=problem.prop.name,
                    bound_reached=bound,
                    runtime_seconds=time.perf_counter() - start_time,
                    counterexample=trace,
                    per_bound_runtime=per_bound,
                    num_sat_variables=last_vars,
                    num_sat_clauses=last_clauses,
                )

        return BMCResult(
            status=BMCStatus.NO_VIOLATION_WITHIN_BOUND,
            property_name=problem.prop.name,
            bound_reached=problem.bounds()[-1],
            runtime_seconds=time.perf_counter() - start_time,
            per_bound_runtime=per_bound,
            num_sat_variables=last_vars,
            num_sat_clauses=last_clauses,
        )


def check_property(
    design: Design,
    prop: SafetyProperty,
    assumptions: Sequence[Assumption] = (),
    *,
    max_bound: int = 12,
    initial_state: Optional[Dict[str, object]] = None,
) -> BMCResult:
    """Convenience wrapper: build a problem, run it, return the result."""
    problem = BMCProblem(
        design=design,
        prop=prop,
        assumptions=assumptions,
        initial_state=initial_state,
        max_bound=max_bound,
    )
    return BoundedModelChecker(problem).run()
