"""Bounded model checking engine.

The engine follows the classical BMC recipe [Clarke 01] that commercial tools
such as the Onespin engine used in the paper implement, with the incremental
refinement those engines rely on to reach deep bounds:

1. unroll the design's transition relation frame by frame into a shared AIG,
2. constrain frame 0 to the initial state and every frame to the
   environmental assumptions (permanent unit clauses),
3. per bound ``k``, assert "the property fails at some not-yet-proven frame
   below ``k``" behind a fresh activation literal and solve under that single
   assumption,
4. on SAT, decode the model into a counterexample trace; on UNSAT, retire the
   activation literal, record the window's frames as proven safe, and grow
   the *same* solver instance to the next bound -- learned clauses, variable
   activities and the encoded frames all carry over.

The public entry points are :class:`BMCProblem` / :class:`BoundedModelChecker`
and the :class:`CounterexampleTrace` they produce; :class:`BoundStats` exposes
the per-bound solver work so the incremental reuse is measurable.
"""

from repro.bmc.property import Assumption, SafetyProperty
from repro.bmc.unroller import Unroller, UnrolledFrame
from repro.bmc.trace import CounterexampleTrace
from repro.bmc.engine import (
    BMCProblem,
    BMCResult,
    BMCStatus,
    BoundStats,
    BoundedModelChecker,
)

__all__ = [
    "Assumption",
    "SafetyProperty",
    "Unroller",
    "UnrolledFrame",
    "CounterexampleTrace",
    "BMCProblem",
    "BMCResult",
    "BMCStatus",
    "BoundStats",
    "BoundedModelChecker",
]
