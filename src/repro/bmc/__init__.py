"""Bounded model checking engine.

The engine follows the classical BMC recipe [Clarke 01] that commercial tools
such as the Onespin engine used in the paper implement:

1. unroll the design's transition relation for ``k`` time-frames,
2. constrain frame 0 to the initial state and every frame to the
   environmental assumptions,
3. assert the negation of the safety property at frame ``k``,
4. hand the resulting CNF to a SAT solver,
5. on SAT, decode the model into a counterexample trace; on UNSAT, increase
   ``k`` until the bound limit is reached.

The public entry points are :class:`BMCProblem` / :class:`BoundedModelChecker`
and the :class:`CounterexampleTrace` they produce.
"""

from repro.bmc.property import Assumption, SafetyProperty
from repro.bmc.unroller import Unroller, UnrolledFrame
from repro.bmc.trace import CounterexampleTrace
from repro.bmc.engine import BMCProblem, BMCResult, BMCStatus, BoundedModelChecker

__all__ = [
    "Assumption",
    "SafetyProperty",
    "Unroller",
    "UnrolledFrame",
    "CounterexampleTrace",
    "BMCProblem",
    "BMCResult",
    "BMCStatus",
    "BoundedModelChecker",
]
