"""Counterexample traces.

A :class:`CounterexampleTrace` is the BMC-side analogue of a waveform: for
every cycle it records the primary-input values chosen by the SAT solver and
the resulting state/output values obtained by concretely re-simulating the
design under those inputs.  Re-simulation doubles as an end-to-end sanity
check of the bit-blasting pipeline (the violated property is re-evaluated on
the concrete trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.expr.bitvec import BV
from repro.expr.eval import evaluate
from repro.rtl.design import Design
from repro.rtl.simulator import Simulator
from repro.rtl.waveform import Waveform


@dataclass
class CounterexampleTrace:
    """A concrete trace violating a safety property."""

    design_name: str
    property_name: str
    length: int
    inputs: List[Dict[str, int]] = field(default_factory=list)
    states: List[Dict[str, int]] = field(default_factory=list)
    outputs: List[Dict[str, int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def input_at(self, cycle: int, name: str) -> int:
        """Value of input *name* driven at *cycle*."""
        return self.inputs[cycle][name]

    def state_at(self, cycle: int, name: str) -> int:
        """Value of state element *name* at the start of *cycle*."""
        return self.states[cycle][name]

    def output_at(self, cycle: int, name: str) -> int:
        """Value of output *name* during *cycle*."""
        return self.outputs[cycle][name]

    def signal_column(self, name: str) -> List[Optional[int]]:
        """Values of *name* (input, state or output) across all cycles."""
        column: List[Optional[int]] = []
        for cycle in range(self.length):
            if name in self.inputs[cycle]:
                column.append(self.inputs[cycle][name])
            elif name in self.states[cycle]:
                column.append(self.states[cycle][name])
            elif name in self.outputs[cycle]:
                column.append(self.outputs[cycle][name])
            else:
                column.append(None)
        return column

    def to_waveform(self) -> Waveform:
        """Convert the trace into a :class:`~repro.rtl.waveform.Waveform`."""
        waveform = Waveform(self.design_name)
        for cycle in range(self.length):
            merged = dict(self.states[cycle])
            merged.update(self.inputs[cycle])
            waveform.record(cycle, merged, self.outputs[cycle])
        return waveform

    def summary(self, signals: Optional[List[str]] = None) -> str:
        """Human-readable rendering of the trace."""
        header = (
            f"counterexample for {self.property_name!r} on {self.design_name} "
            f"({self.length} cycles)"
        )
        return header + "\n" + self.to_waveform().as_table(signals)


def replay_inputs(
    design: Design,
    input_sequence: List[Dict[str, int]],
    property_expr: Optional[BV],
    property_name: str,
    initial_state: Optional[Dict[str, int]] = None,
) -> CounterexampleTrace:
    """Re-simulate *design* under *input_sequence* and build a trace.

    ``initial_state`` overrides the reset values of the named state elements
    before the first cycle; the BMC engine passes the solver-chosen values of
    symbolic start-state elements here, so the replay reproduces the model
    even when the trace does not begin at the concrete reset state.

    The simulator's assumption checking is disabled: the SAT solver already
    guarantees the assumptions hold, and environmental constraints written
    over output names cannot be checked by the plain simulator namespace.
    """
    simulator = Simulator(design, check_assumptions=False)
    for name, value in (initial_state or {}).items():
        simulator.poke(name, value)
    states: List[Dict[str, int]] = []
    outputs: List[Dict[str, int]] = []
    for inputs in input_sequence:
        states.append(simulator.state)
        outputs.append(simulator.step(inputs))
    trace = CounterexampleTrace(
        design_name=design.name,
        property_name=property_name,
        length=len(input_sequence),
        inputs=[dict(step) for step in input_sequence],
        states=states,
        outputs=outputs,
    )
    return trace


def property_holds_at(
    design: Design, trace: CounterexampleTrace, expr: BV, cycle: int
) -> bool:
    """Evaluate a property expression on a concrete trace cycle."""
    env: Dict[str, int] = dict(trace.states[cycle])
    env.update(trace.inputs[cycle])
    env.update(trace.outputs[cycle])
    return evaluate(expr, env) == 1
