"""Safety properties and environmental assumptions for BMC.

Both are 1-bit expressions over the design's signal namespace.  The namespace
contains:

* primary-input names,
* state-element names (current-cycle values), and
* output names (the unroller substitutes the output's defining expression).

A :class:`SafetyProperty` is checked for violation -- the BMC engine searches
for a reachable cycle where the expression evaluates to 0.  An
:class:`Assumption` constrains every cycle of every trace the engine
considers; this is how Symbolic QED restricts the instruction stream to valid
QED sequences without writing design-specific properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.expr.bitvec import BV, ExprError


def _require_bit(expr: BV, what: str) -> None:
    if expr.width != 1:
        raise ExprError(f"{what} must be a 1-bit expression, got width {expr.width}")


@dataclass(frozen=True)
class SafetyProperty:
    """A named invariant that must hold at every reachable cycle.

    Attributes
    ----------
    name:
        Identifier used in reports and counterexample summaries.
    expr:
        The 1-bit expression that must evaluate to 1 in every cycle.
    description:
        Optional human-readable explanation (shown in failure reports).
    start_cycle:
        First cycle (inclusive) at which the property is enforced.  Some
        checks -- e.g. the QED consistency check -- are only meaningful once
        ``qed_ready`` can possibly be asserted; leaving the earlier cycles
        unconstrained keeps the CNF smaller.
    """

    name: str
    expr: BV
    description: str = ""
    start_cycle: int = 0

    def __post_init__(self) -> None:
        _require_bit(self.expr, f"property {self.name!r}")
        if self.start_cycle < 0:
            raise ValueError("start_cycle must be non-negative")


@dataclass(frozen=True)
class Assumption:
    """A named environmental constraint applied at every cycle.

    ``only_cycle`` restricts the assumption to a single time frame, which is
    how Single-Instruction properties pin the instruction under test at cycle
    0 while leaving later cycles unconstrained.
    """

    name: str
    expr: BV
    description: str = ""
    only_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        _require_bit(self.expr, f"assumption {self.name!r}")
        if self.only_cycle is not None and self.only_cycle < 0:
            raise ValueError("only_cycle must be non-negative")

    def applies_at(self, cycle: int) -> bool:
        """Return whether the assumption constrains the given cycle."""
        return self.only_cycle is None or self.only_cycle == cycle
