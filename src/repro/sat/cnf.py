"""Conjunctive normal form container used by the bit-blaster and BMC engine.

Literals follow the DIMACS convention: a positive integer ``v`` denotes the
variable ``v`` asserted true, ``-v`` denotes it asserted false.  Variable
indices start at 1; 0 is reserved (it terminates clauses in DIMACS files).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, TextIO

Literal = int


def neg(literal: Literal) -> Literal:
    """Return the negation of *literal*."""
    return -literal


def var_of(literal: Literal) -> int:
    """Return the variable index of *literal* (always positive)."""
    return literal if literal > 0 else -literal


def sign_of(literal: Literal) -> bool:
    """Return ``True`` when *literal* asserts its variable true."""
    return literal > 0


class CNF:
    """A growable CNF formula.

    The object owns its variable space: fresh variables are handed out by
    :meth:`new_var` so that independent producers (e.g. several unrolled
    time-frames of a design) never collide.
    """

    def __init__(self, num_vars: int = 0) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self._num_vars = num_vars
        self._clauses: List[List[Literal]] = []

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables allocated so far."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses added so far."""
        return len(self._clauses)

    def new_var(self) -> int:
        """Allocate and return a fresh variable index."""
        self._num_vars += 1
        return self._num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate *count* fresh variables and return them in order."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.new_var() for _ in range(count)]

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Add a clause (a disjunction of literals).

        An empty clause makes the formula trivially unsatisfiable; it is
        stored as-is and handled by the solver.
        """
        clause = list(literals)
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is not allowed inside a clause")
            if var_of(lit) > self._num_vars:
                self._num_vars = var_of(lit)
        self._clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[Literal]]) -> None:
        """Add several clauses at once."""
        for clause in clauses:
            self.add_clause(clause)

    def add_unit(self, literal: Literal) -> None:
        """Add a unit clause asserting *literal*."""
        self.add_clause([literal])

    @property
    def clauses(self) -> List[List[Literal]]:
        """The clause database (mutable; treat as read-only from clients)."""
        return self._clauses

    def copy(self) -> "CNF":
        """Return a deep copy of the formula."""
        duplicate = CNF(self._num_vars)
        duplicate._clauses = [list(clause) for clause in self._clauses]
        return duplicate

    def extend(self, other: "CNF") -> None:
        """Append the clauses of *other*, assuming a shared variable space."""
        self._num_vars = max(self._num_vars, other._num_vars)
        self._clauses.extend(list(clause) for clause in other._clauses)

    def __iter__(self) -> Iterator[List[Literal]]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self._num_vars}, clauses={len(self._clauses)})"

    # ------------------------------------------------------------------
    # DIMACS I/O
    # ------------------------------------------------------------------
    def to_dimacs(self) -> str:
        """Serialise the formula in DIMACS CNF format."""
        lines = [f"p cnf {self._num_vars} {len(self._clauses)}"]
        for clause in self._clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def write_dimacs(self, stream: TextIO) -> None:
        """Write the formula to *stream* in DIMACS CNF format."""
        stream.write(self.to_dimacs())

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a DIMACS CNF document into a :class:`CNF`."""
        cnf: Optional[CNF] = None
        pending: List[Literal] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed problem line: {line!r}")
                cnf = cls(int(parts[2]))
                continue
            if cnf is None:
                raise ValueError("clause encountered before problem line")
            for token in line.split():
                literal = int(token)
                if literal == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(literal)
        if cnf is None:
            raise ValueError("missing DIMACS problem line")
        if pending:
            cnf.add_clause(pending)
        return cnf

    # ------------------------------------------------------------------
    # Evaluation helpers (used by tests and the model checker)
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the formula under *assignment*.

        *assignment* is indexed by variable (index 0 unused).  Raises
        ``IndexError`` if the assignment does not cover all variables.
        """
        for clause in self._clauses:
            if not any(
                assignment[var_of(lit)] == sign_of(lit) for lit in clause
            ):
                return False
        return True
