"""Boolean satisfiability substrate.

Symbolic QED is driven by a bounded model checker, which in turn is driven by
a SAT solver (the paper uses the commercial Onespin 360 DV engine; we build
the same pipeline from scratch).  This package provides:

* :mod:`repro.sat.cnf` -- a CNF container with variable allocation and DIMACS
  input/output.
* :mod:`repro.sat.solver` -- a CDCL (conflict-driven clause learning) solver
  with two-watched-literal propagation, VSIDS branching, first-UIP conflict
  analysis, Luby restarts and phase saving.
* :mod:`repro.sat.preprocess` -- the single preprocessing code path:
  SatELite-style formula reduction (bounded variable elimination,
  subsumption, self-subsuming resolution, failed-literal probing, optional
  blocked-clause elimination) with a frozen-variable contract that makes it
  sound for the incremental BMC engine's per-bound clause slabs, plus the
  lightweight whole-CNF clean-up :func:`repro.sat.preprocess.simplify_cnf`
  (which absorbed the retired ``repro.sat.simplify`` module).

The public entry point used by the rest of the library is
:func:`repro.sat.solve`.
"""

from repro.sat.cnf import CNF, Literal, neg, var_of, sign_of
from repro.sat.solver import (
    CDCLSolver,
    SolverResult,
    SolverStats,
    SolverStatus,
    solve,
)
from repro.sat.preprocess import (
    PreprocessResult,
    PreprocessStats,
    SimplificationResult,
    extend_model,
    preprocess,
    reconstruct_blocked,
    simplify_cnf,
)

__all__ = [
    "CNF",
    "Literal",
    "neg",
    "var_of",
    "sign_of",
    "CDCLSolver",
    "SolverResult",
    "SolverStats",
    "SolverStatus",
    "solve",
    "simplify_cnf",
    "SimplificationResult",
    "PreprocessResult",
    "PreprocessStats",
    "extend_model",
    "preprocess",
    "reconstruct_blocked",
]
