"""A CDCL SAT solver with sound incremental reuse and a flat clause arena.

The solver implements the standard modern architecture:

* two-watched-literal unit propagation with blocker literals,
* VSIDS-style activity-based decision heuristic with phase saving,
* first-UIP conflict analysis with clause learning, recursive
  learned-clause minimisation and non-chronological backjumping,
* Luby-sequence restarts,
* Glucose-style learned-clause database reduction (LBD-ranked).

On top of the one-shot interface the solver supports the MiniSat-style
incremental contract that the bounded model checker in :mod:`repro.bmc`
relies on:

* :meth:`CDCLSolver.solve` may be called repeatedly on the same instance
  with different assumption sets.  Every call first backjumps to decision
  level 0, so no decision or assumption from a previous call leaks into the
  next one (learned clauses and level-0 facts are kept -- they are implied
  by the clause database and therefore sound to reuse).
* :meth:`CDCLSolver.add_clause` inserts new clauses between calls.  New
  clauses are simplified against the permanent level-0 assignment, watched,
  and new top-level units are propagated immediately.
* ``max_conflicts`` is a *per-call* budget.  A call that exhausts it
  returns :attr:`SolverStatus.UNKNOWN`, which is distinct from UNSAT --
  check :attr:`SolverResult.is_unsat` (or ``status``), never ``not
  result.satisfiable``, when a definitive refutation is required.

Clause arena layout
-------------------

The clause database is a single contiguous flat sequence of machine words
(a Python list of ints).  Each clause is a 5-word header followed by its
literals inline, and is addressed by the arena offset of its first header
word::

    offset  +0      +1       +2     +3          +4      +5 ... +5+size-1
            [size]  [flags]  [lbd]  [act-slot]  [scan]  [lit0] ... [litN]

    flags   bit 0: learned clause, bit 1: dead (transient mark during
            compaction; never set between public calls)
    lbd     literal-block distance at learn time (0 for originals)
    act     index into the parallel list of clause activities
            (floats cannot live in the integer arena)
    scan    saved replacement-watch scan position (relative body index in
            ``[2, size)``): the next scan for a non-false literal resumes
            where the previous one stopped and wraps around, instead of
            re-reading the recently-falsified prefix every visit
            (circular search, Gent 2013)

The backing store is a plain list rather than ``array('i')`` on purpose:
a C-typed array halves the memory but *boxes a fresh int object on every
read*, which measures ~25% slower than list indexing (list reads hand back
a cached reference) across the propagation and analysis loops -- in pure
Python the arena's win is the elimination of per-clause list objects and
their allocator traffic, not byte-level compactness.

Everything that used to be a clause *index* -- watch-list entries, the
``_reason`` of each assigned variable, the conflict reference returned by
propagation -- is an arena *offset*.  Literals are stored in the
even/odd encoding ``2*v`` (positive) / ``2*v + 1`` (negative), so negation
is ``lit ^ 1``, the variable is ``lit >> 1`` and a literal indexes its own
watch list directly; the public API (``add_clause``, assumptions, exported
clauses, models) keeps the signed DIMACS convention and converts at the
boundary.  Truth values are read from ``_litval``, a per-*literal* table
(1 true, 0 false, -1 unassigned; both phases updated on assign), which
removes the sign branch from every hot-loop value lookup.

Binary clauses never touch the arena body during propagation: they live
in dedicated per-literal implication lists of (other literal, offset)
pairs, so a falsified literal immediately yields each implied literal (or
the conflict) without loading or reordering any clause, and the binary
sweep needs none of the replacement-watch/compaction bookkeeping of the
long-clause sweep (a binary watcher can never relocate).  The arena copy
of a binary clause exists only for conflict analysis to walk.

Database reduction is an in-place mark-and-compact garbage collection:

1. rank learned clauses by (LBD desc, activity asc) and mark the worse
   half dead (glue/binary/locked clauses are exempt),
2. slide every live clause down over the dead ones in one pass over the
   arena (``arena[w:w+n] = arena[r:r+n]`` block moves), recording an
   old-offset -> new-offset map and re-slotting activities in lockstep,
3. remap watch lists (dropping pairs of dead clauses) and the ``_reason``
   offsets of the trail in a single pass each.

No Python clause objects are rebuilt, and clause order -- hence search
determinism -- is preserved.  Exported clauses (cube-and-conquer sharing)
are copied out of the arena *at learn time*, so a compaction between
learning and :meth:`drain_exported` can never leave a dangling offset in
the export buffer.

It is written for clarity first and speed second, but the hot loop
(propagation) avoids per-literal object allocation and pointer-chasing so
that the bounded model checking problems generated by :mod:`repro.bmc`
(tens of thousands of clauses) solve quickly, and the full Symbolic QED
runs in seconds -- which is the regime the paper reports for Onespin on
the industrial cores.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.deadline import Deadline
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry as obs_telemetry
from repro.obs import trace as obs_trace
from repro.sat.cnf import CNF, Literal, var_of

_UNASSIGNED = -1

#: Arena header words before a clause's literals (size, flags, lbd, act,
#: saved scan position).
_HDR = 5
_F_LEARNED = 1
_F_DEAD = 2

#: Conflicts/decisions between monotonic-clock reads when a wall-clock
#: deadline is attached to a solve() call.  At ~240k props/s even very
#: conflict-heavy searches take well under 100 ms per 256 conflicts, so
#: deadline overshoot stays small while the common path pays only an
#: integer decrement.
_DEADLINE_STRIDE = 256


class SolverStatus(Enum):
    """Tri-state verdict of a SAT query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Counters describing the work a solve call performed."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    max_decision_level: int = 0


@dataclass
class SolverResult:
    """Outcome of a SAT query.

    ``status`` is the tri-state verdict.  ``model`` maps variable index to
    boolean when satisfiable (index 0 is unused and always ``False``).
    ``stats`` counts the work of *this call only*; cumulative counters live
    on :attr:`CDCLSolver.stats`.

    The legacy ``satisfiable``/``unknown`` booleans are kept as properties;
    note that ``satisfiable`` is ``False`` for both UNSAT and UNKNOWN, so
    callers that need a definitive refutation must use :attr:`is_unsat`.
    """

    status: SolverStatus
    model: Optional[List[bool]] = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        """Whether a model was found."""
        return self.status is SolverStatus.SAT

    @property
    def is_unsat(self) -> bool:
        """Whether the query was definitively refuted (excludes UNKNOWN)."""
        return self.status is SolverStatus.UNSAT

    @property
    def satisfiable(self) -> bool:
        """Legacy boolean view; ``False`` also covers UNKNOWN."""
        return self.status is SolverStatus.SAT

    @property
    def unknown(self) -> bool:
        """Whether a conflict budget expired before a verdict."""
        return self.status is SolverStatus.UNKNOWN

    def value(self, variable: int) -> bool:
        """Return the model value of *variable* (only valid when SAT)."""
        if not self.is_sat or self.model is None:
            raise ValueError("no model available: formula was unsatisfiable")
        return self.model[variable]


def _luby(i: int) -> int:
    """Return the i-th element (1-based) of the Luby restart sequence.

    Uses the standard "find the enclosing complete subsequence" formulation:
    if ``i`` is of the form ``2^k - 1`` the value is ``2^(k-1)``; otherwise the
    index is reduced into the preceding complete subsequence.
    """
    if i <= 0:
        raise ValueError("Luby index must be positive")
    size = 1
    sequences = 0
    while size < i:
        size = 2 * size + 1
        sequences += 1
    while size - 1 != i - 1:
        size = (size - 1) >> 1
        sequences -= 1
        i = ((i - 1) % size) + 1
    return 1 << sequences


class CDCLSolver:
    """Conflict-driven clause-learning SAT solver over a flat clause arena."""

    def __init__(
        self,
        cnf: CNF,
        *,
        restart_base: int = 100,
        var_decay: float = 0.95,
        clause_decay: float = 0.999,
        default_phase: bool = False,
    ) -> None:
        self._num_vars = 0
        self._restart_base = restart_base
        self._var_decay = var_decay
        self._clause_decay = clause_decay
        #: Initial saved phase of fresh variables.  ``False`` (negative
        #: first) is the MiniSat default; portfolio solving flips it on some
        #: workers so their search trees diverge from the first decision.
        self._default_phase = default_phase

        # Learned-clause export (cube-and-conquer clause sharing): when
        # enabled, short low-LBD clauses learned by this solver are copied
        # into a buffer that the owner drains and broadcasts to its peers.
        # Exported clauses are implied by the clause database alone (never
        # by the per-call assumptions), so they are sound to share between
        # workers solving different cubes of the same formula.  The copy is
        # taken at learn time (decoded back to signed literals), so database
        # compaction between learning and draining cannot invalidate it.
        self._export_max_lbd: Optional[int] = None
        self._export_max_length = 8
        self._exported: List[List[Literal]] = []

        # Clause database: one contiguous int arena (see the module
        # docstring for the header layout) plus a parallel float list of
        # clause activities indexed by the header's activity slot.  Both are
        # flat Python lists rather than ``array('i')``/``array('d')``:
        # C-typed arrays halve the memory but box a fresh object on every
        # read, which measures ~25% slower in the propagation/analysis loops
        # -- see the module docstring.
        self._arena: List[int] = []
        self._act: List[float] = []
        self._num_original = 0
        self._num_learned_live = 0
        self._clause_bump = 1.0
        #: Learned clauses allowed before the next database reduction; grows
        #: linearly with each reduction so the database stays bounded on
        #: hard instances instead of scaling with the original clause count.
        self._reduce_threshold = 4000

        # Assignment state.  ``_litval`` is indexed by *encoded literal*
        # (2v / 2v+1) and holds 1 (true), 0 (false) or -1 (unassigned) for
        # that literal; both phases are written on every assign/unassign so
        # the hot loops never branch on literal sign.  ``_level``/``_reason``
        # and the saved ``_phase`` are per-variable (index 0 unused);
        # ``_reason`` holds an arena offset or -1 for decisions/assumptions.
        self._litval: List[int] = [-1, -1]
        self._level: List[int] = [0]
        self._reason: List[int] = [-1]
        self._trail: List[int] = []  # encoded literals, assignment order
        self._trail_lim: List[int] = []
        self._qhead = 0

        # VSIDS.  Decisions are drawn from a lazy max-heap of (-activity, var);
        # stale entries are skipped when popped.  ``_heap_entries`` counts the
        # live heap entries per variable so unassignment (backjumping) only
        # pushes variables that are not in the heap already -- without it the
        # heap accumulates hundreds of duplicates per decision on BMC-sized
        # problems.
        self._activity: List[float] = [0.0]
        self._var_bump = 1.0
        self._phase: List[bool] = [default_phase]
        self._order_heap: List[Tuple[float, int]] = []
        self._heap_entries: List[int] = [0]
        # Reusable scratch marks for conflict analysis and clause
        # minimisation: 0 = unseen, 1 = part of the conflict/learned tail,
        # 2 = proven redundant (removable), 3 = proven non-redundant
        # (poison).  2/3 are exact per-variable verdict caches that persist
        # across the candidate walks of one conflict (see
        # :meth:`_lit_redundant`); every non-zero mark is appended to the
        # analysis ``touched`` list and cleared before the next conflict.
        self._seen: List[int] = [0]
        # Persistent DFS frame stacks of the minimisation walk (parallel
        # lists indexed by depth; see :meth:`_lit_redundant`).
        self._ccmin_vars: List[int] = []
        self._ccmin_ks: List[int] = []
        self._ccmin_ends: List[int] = []

        # Watches: encoded literal -> parallel per-literal lists of watcher
        # blockers (``_wblock``) and their clauses' arena offsets
        # (``_wref``).  The blocker is a literal of the clause; when it is
        # already true the clause is satisfied and propagation skips it
        # without touching the arena or even the offset list -- the MiniSat
        # 2.2 "blocker literal" optimisation.  The split into two parallel
        # lists (rather than interleaved pairs) lets the hot sweep iterate
        # the blockers with a C-level ``enumerate`` and read offsets only
        # for the minority of visits that get past the blocker test.
        # Binary clauses live in their own per-literal implication lists
        # (``_bin_lit``/``_bin_ref``, same parallel split): a binary
        # watcher never relocates and its "blocker" *is* the whole rest of
        # the clause, so the binary sweep runs without the
        # replacement-watch scan or any compaction bookkeeping.
        self._wblock: List[List[int]] = [[], []]
        self._wref: List[List[int]] = [[], []]
        self._bin_lit: List[List[int]] = [[], []]
        self._bin_ref: List[List[int]] = [[], []]

        self.stats = SolverStats()
        self._trivially_unsat = False

        self.ensure_num_vars(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # Variable space
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables the solver currently knows about."""
        return self._num_vars

    def ensure_num_vars(self, num_vars: int) -> None:
        """Grow the variable space so indices ``1..num_vars`` are valid.

        New variables start unassigned with zero activity and negative
        saved phase; existing state is untouched, so this is safe to call
        between :meth:`solve` invocations.
        """
        if num_vars <= self._num_vars:
            return
        grow = num_vars - self._num_vars
        self._litval.extend([-1] * (2 * grow))
        self._level.extend([0] * grow)
        self._reason.extend([-1] * grow)
        self._activity.extend([0.0] * grow)
        self._phase.extend([self._default_phase] * grow)
        self._seen.extend([0] * grow)
        self._heap_entries.extend([1] * grow)
        self._wblock.extend([] for _ in range(2 * grow))
        self._wref.extend([] for _ in range(2 * grow))
        self._bin_lit.extend([] for _ in range(2 * grow))
        self._bin_ref.extend([] for _ in range(2 * grow))
        for variable in range(self._num_vars + 1, num_vars + 1):
            heapq.heappush(self._order_heap, (0.0, variable))
        self._num_vars = num_vars

    # ------------------------------------------------------------------
    # Clause database
    # ------------------------------------------------------------------
    def _watch(self, offset: int, literal: int, blocker: int) -> None:
        """Register clause *offset* on encoded *literal* with *blocker*.

        The blocker and offset go to parallel per-literal lists (the
        satisfied-blocker test resolves most visits without ever reading
        the offset list).  Binary clauses go to the dedicated implication
        lists instead (for them *blocker* is by construction the other
        literal of the clause), so the long-clause sweep never sees them.
        """
        if self._arena[offset] == 2:
            self._bin_lit[literal].append(blocker)
            self._bin_ref[literal].append(offset)
            return
        self._wblock[literal].append(blocker)
        self._wref[literal].append(offset)

    def add_clause(self, literals: Sequence[Literal]) -> None:
        """Add an original clause; legal between :meth:`solve` calls.

        The solver first backjumps to decision level 0 (any in-flight
        assumptions/decisions from a previous call are abandoned), then
        simplifies the clause against the permanent level-0 assignment:
        satisfied clauses are dropped, falsified literals are removed, and a
        resulting unit is enqueued and propagated immediately so follow-on
        top-level facts are available to subsequent ``add_clause`` calls.
        """
        self._backjump(0)
        if self._trivially_unsat:
            return
        clause = self._normalise(literals)
        if clause is None:
            return  # tautology
        for lit in clause:
            self.ensure_num_vars(lit if lit > 0 else -lit)
        # Simplify against the (permanent) level-0 assignment.
        litval = self._litval
        simplified: List[int] = []
        for lit in clause:
            encoded = lit + lit if lit > 0 else 1 - lit - lit
            value = litval[encoded]
            if value == 1:
                return  # already satisfied forever
            if value == -1:
                simplified.append(encoded)
        if not simplified:
            self._trivially_unsat = True
            return
        if len(simplified) == 1:
            self._enqueue(simplified[0], -1)
            if self._propagate() != -1:
                self._trivially_unsat = True
            return
        arena = self._arena
        offset = len(arena)
        self._act.append(0.0)
        arena.append(len(simplified))
        arena.append(0)
        arena.append(0)
        arena.append(len(self._act) - 1)
        arena.append(2)
        arena.extend(simplified)
        self._num_original += 1
        self._watch(offset, simplified[0], simplified[1])
        self._watch(offset, simplified[1], simplified[0])

    def add_clauses(self, clauses: Iterable[Sequence[Literal]]) -> None:
        """Add several original clauses between solve calls."""
        for clause in clauses:
            self.add_clause(clause)

    @staticmethod
    def _normalise(literals: Sequence[Literal]) -> Optional[List[Literal]]:
        """Remove duplicates; return ``None`` for tautological clauses."""
        seen = set()
        clause: List[Literal] = []
        for lit in literals:
            if -lit in seen:
                return None
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        return clause

    def enable_clause_export(
        self, max_lbd: int = 3, max_length: int = 8
    ) -> None:
        """Start buffering short, low-LBD learned clauses for sharing.

        Clauses with literal-block distance <= *max_lbd* and at most
        *max_length* literals are copied into an export buffer as they are
        learned; :meth:`drain_exported` hands them to the caller.  Unit
        clauses learned at level 0 are always exported (LBD 1, the most
        valuable shares).

        The buffered clauses are value copies in the signed public literal
        convention, taken the moment the clause is learned -- they stay
        valid even if a database compaction (:meth:`_reduce_learned`)
        deletes or relocates the arena clause before the owner drains them.
        """
        self._export_max_lbd = max_lbd
        self._export_max_length = max_length

    def drain_exported(self) -> List[List[Literal]]:
        """Return (and clear) the clauses buffered since the last drain."""
        exported = self._exported
        self._exported = []
        return exported

    def _add_learned_clause(self, clause: List[int]) -> int:
        arena = self._arena
        offset = len(arena)
        level_of = self._level
        lbd = len({level_of[lit >> 1] for lit in clause})
        if (
            self._export_max_lbd is not None
            and lbd <= self._export_max_lbd
            and len(clause) <= self._export_max_length
        ):
            # Copy-out at learn time (decoded): compaction can delete or
            # move the arena clause before the owner drains the buffer.
            self._exported.append(
                [lit >> 1 if not lit & 1 else -(lit >> 1) for lit in clause]
            )
        self._act.append(self._clause_bump)
        arena.append(len(clause))
        arena.append(_F_LEARNED)
        arena.append(lbd)
        arena.append(len(self._act) - 1)
        arena.append(2)
        arena.extend(clause)
        self._num_learned_live += 1
        self.stats.learned_clauses += 1
        if len(clause) >= 2:
            self._watch(offset, clause[0], clause[1])
            self._watch(offset, clause[1], clause[0])
        return offset

    @property
    def num_learned_clauses(self) -> int:
        """Learned clauses currently in the database (survivors of reduction)."""
        return self._num_learned_live

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, literal: int, reason: int) -> None:
        """Assign encoded *literal* with *reason* (arena offset or -1)."""
        variable = literal >> 1
        litval = self._litval
        litval[literal] = 1
        litval[literal ^ 1] = 0
        self._level[variable] = len(self._trail_lim)
        self._reason[variable] = reason
        self._phase[variable] = not literal & 1
        self._trail.append(literal)

    def _propagate(self) -> int:
        """Run unit propagation; return a conflicting arena offset or -1.

        This is the solver's hot loop: truth lookups are single list reads
        (no sign branch, thanks to the per-literal value table), clause
        bodies are read straight out of the integer arena, and binary
        clauses are resolved from their implication pair alone -- their
        blocker is by construction the other literal, so neither the swap
        nor the replacement-watch scan ever runs for them.

        The long-clause sweep runs in two phases.  Phase 1 iterates the
        blocker list with a C-level ``enumerate`` and performs no watcher
        removal -- the dominant visits (blocker satisfied, watched literal
        satisfied, unit) cost a couple of list reads each and at most
        refresh the blocker in place.  The first watcher that *moves away*
        (a replacement watch was found) leaves a hole; the sweep drops into
        phase 2, the classical in-place compacting loop, for the rest of
        the list.  Most sweeps never leave phase 1, so the common case
        pays no compaction bookkeeping at all.
        """
        arena = self._arena
        wblocks = self._wblock
        wrefs = self._wref
        bin_lits = self._bin_lit
        bin_refs = self._bin_ref
        litval = self._litval
        level_of = self._level
        reason = self._reason
        phase = self._phase
        trail = self._trail
        qhead = self._qhead
        entry_qhead = qhead
        trail_len = len(trail)
        # The decision level is constant for the whole propagation fixpoint
        # (decisions happen between _propagate calls), so hoist it.
        level = len(self._trail_lim)
        conflict = -1
        # hot-loop
        while qhead < trail_len:
            literal = trail[qhead]
            qhead += 1
            false_lit = literal ^ 1
            # Binary implications first: the implied literal is read
            # straight off the list; the arena offset (for the reason /
            # conflict reference) is read only when it is actually needed.
            blist = bin_lits[false_lit]
            if blist:
                refs = bin_refs[false_lit]
                for idx, other in enumerate(blist):
                    value = litval[other]
                    if value == -1:
                        variable = other >> 1
                        litval[other] = 1
                        litval[other ^ 1] = 0
                        level_of[variable] = level
                        reason[variable] = refs[idx]
                        phase[variable] = not other & 1
                        trail.append(other)
                        trail_len += 1
                    elif value == 0:
                        conflict = refs[idx]
                        break
                if conflict != -1:
                    break
            # Long clauses, phase 1: no watcher has left the list yet.
            blockers = wblocks[false_lit]
            refs = wrefs[false_lit]
            hole = -1
            for i, blocker in enumerate(blockers):
                # Blocker already true: clause satisfied, skip untouched.
                if litval[blocker] == 1:
                    continue
                offset = refs[i]
                base = offset + 5
                # Ensure the falsified literal is in slot 1.
                first = arena[base]
                if first == false_lit:
                    first = arena[base + 1]
                    arena[base] = first
                    arena[base + 1] = false_lit
                first_value = litval[first]
                if first_value == 1:
                    # Refresh the blocker to the satisfied watched literal.
                    blockers[i] = first
                    continue
                # Look for a replacement watch.  Ternary clauses (half the
                # visits on BMC formulas) have exactly one candidate, so
                # they skip the scan-loop setup entirely; longer clauses
                # resume from the header's saved scan position and wrap,
                # so a falsified prefix is not re-read on every visit.
                size = arena[offset]
                if size == 3:
                    lit_k = arena[base + 2]
                    if litval[lit_k] != 0:
                        arena[base + 1] = lit_k
                        arena[base + 2] = false_lit
                        wblocks[lit_k].append(first)
                        wrefs[lit_k].append(offset)
                        hole = i
                        break  # watcher moved away: enter phase 2
                else:
                    end = base + size
                    start = base + arena[offset + 4]
                    k = start
                    replaced = False
                    while k < end:
                        lit_k = arena[k]
                        if litval[lit_k] != 0:
                            arena[base + 1] = lit_k
                            arena[k] = false_lit
                            arena[offset + 4] = k - base
                            wblocks[lit_k].append(first)
                            wrefs[lit_k].append(offset)
                            replaced = True
                            break
                        k += 1
                    if not replaced:
                        k = base + 2
                        while k < start:
                            lit_k = arena[k]
                            if litval[lit_k] != 0:
                                arena[base + 1] = lit_k
                                arena[k] = false_lit
                                arena[offset + 4] = k - base
                                wblocks[lit_k].append(first)
                                wrefs[lit_k].append(offset)
                                replaced = True
                                break
                            k += 1
                    if replaced:
                        hole = i
                        break  # watcher moved away: enter phase 2
                # Clause is unit or conflicting; the watcher stays put.
                blockers[i] = first
                if first_value == 0:
                    conflict = offset
                    break
                # Inlined _enqueue(first, offset).
                variable = first >> 1
                litval[first] = 1
                litval[first ^ 1] = 0
                level_of[variable] = level
                reason[variable] = offset
                phase[variable] = not first & 1
                trail.append(first)
                trail_len += 1
            if conflict != -1:
                break
            if hole < 0:
                continue
            # Long clauses, phase 2: compact in place over the hole(s).
            keep = hole
            i = hole + 1
            n = len(blockers)
            while i < n:
                blocker = blockers[i]
                if litval[blocker] == 1:
                    blockers[keep] = blocker
                    refs[keep] = refs[i]
                    keep += 1
                    i += 1
                    continue
                offset = refs[i]
                base = offset + 5
                first = arena[base]
                if first == false_lit:
                    first = arena[base + 1]
                    arena[base] = first
                    arena[base + 1] = false_lit
                first_value = litval[first]
                if first_value == 1:
                    blockers[keep] = first
                    refs[keep] = offset
                    keep += 1
                    i += 1
                    continue
                size = arena[offset]
                if size == 3:
                    lit_k = arena[base + 2]
                    if litval[lit_k] != 0:
                        arena[base + 1] = lit_k
                        arena[base + 2] = false_lit
                        wblocks[lit_k].append(first)
                        wrefs[lit_k].append(offset)
                        i += 1
                        continue
                else:
                    end = base + size
                    start = base + arena[offset + 4]
                    k = start
                    replaced = False
                    while k < end:
                        lit_k = arena[k]
                        if litval[lit_k] != 0:
                            arena[base + 1] = lit_k
                            arena[k] = false_lit
                            arena[offset + 4] = k - base
                            wblocks[lit_k].append(first)
                            wrefs[lit_k].append(offset)
                            replaced = True
                            break
                        k += 1
                    if not replaced:
                        k = base + 2
                        while k < start:
                            lit_k = arena[k]
                            if litval[lit_k] != 0:
                                arena[base + 1] = lit_k
                                arena[k] = false_lit
                                arena[offset + 4] = k - base
                                wblocks[lit_k].append(first)
                                wrefs[lit_k].append(offset)
                                replaced = True
                                break
                            k += 1
                    if replaced:
                        i += 1
                        continue
                blockers[keep] = first
                refs[keep] = offset
                keep += 1
                i += 1
                if first_value == 0:
                    # Conflict: keep the remaining watchers and bail out.
                    while i < n:
                        blockers[keep] = blockers[i]
                        refs[keep] = refs[i]
                        keep += 1
                        i += 1
                    conflict = offset
                    break
                variable = first >> 1
                litval[first] = 1
                litval[first ^ 1] = 0
                level_of[variable] = level
                reason[variable] = offset
                phase[variable] = not first & 1
                trail.append(first)
                trail_len += 1
            del blockers[keep:]
            del refs[keep:]
            if conflict != -1:
                break
        self._qhead = qhead
        self.stats.propagations += qhead - entry_qhead
        return conflict

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _rescale_var_activity(self) -> None:
        """Scale all variable activities down and rebuild the order heap."""
        litval = self._litval
        for v in range(1, self._num_vars + 1):
            self._activity[v] *= 1e-100
        self._var_bump *= 1e-100
        self._order_heap = [
            (-self._activity[v], v)
            for v in range(1, self._num_vars + 1)
            if litval[v + v] == -1
        ]
        heapq.heapify(self._order_heap)
        self._heap_entries = [0] * (self._num_vars + 1)
        for _, v in self._order_heap:
            self._heap_entries[v] = 1

    def _rescale_clause_activity(self) -> None:
        """Scale all clause activities down (keeps the float slots finite)."""
        act = self._act
        for slot in range(len(act)):
            act[slot] *= 1e-20
        self._clause_bump *= 1e-20

    def _analyse(self, conflict_offset: int) -> tuple[List[int], int]:
        """First-UIP analysis.

        Returns the learned clause (encoded literals, asserting literal
        first) and the backjump level.
        """
        learned: List[int] = []
        seen = self._seen
        level_of = self._level
        trail = self._trail
        arena = self._arena
        reason_of = self._reason
        act = self._act
        var_act = self._activity
        var_bump = self._var_bump
        order_heap = self._order_heap
        heap_entries = self._heap_entries
        heappush = heapq.heappush
        clause_bump = self._clause_bump
        touched: List[int] = []
        counter = 0
        #: The implied literal of the reason clause being expanded; -1 while
        #: expanding the conflict clause (no literal to skip -- encoded
        #: literals are always >= 2).  Binary clauses keep their slot order
        #: during propagation, so the implied literal is skipped by value
        #: rather than by position.
        literal = -1
        offset = conflict_offset
        trail_index = len(trail) - 1
        current_level = len(self._trail_lim)

        while True:
            # Inlined clause-activity bump (rescale is rare).
            slot = arena[offset + 3]
            bumped = act[slot] + clause_bump
            act[slot] = bumped
            if bumped > 1e20:
                self._rescale_clause_activity()
                clause_bump = self._clause_bump
            base = offset + 5
            # Slice-iterate the clause body: one C-level copy beats a
            # range+index loop's two Python ops per literal.
            for lit in arena[base : base + arena[offset]]:
                if lit == literal:
                    continue  # the reason clause's implied literal
                variable = lit >> 1
                if seen[variable] or level_of[variable] == 0:
                    continue
                seen[variable] = 1
                touched.append(variable)
                # Inlined _bump_var(variable).
                activity = var_act[variable] + var_bump
                var_act[variable] = activity
                if activity > 1e100:
                    self._rescale_var_activity()
                    var_bump = self._var_bump
                    order_heap = self._order_heap
                    heap_entries = self._heap_entries
                else:
                    # Always push on a bump: the new entry carries the
                    # raised priority (a lazy decrease-key).  Deferring
                    # pushes for assigned variables measures *worse* -- the
                    # decision order drifts from true VSIDS and conflict
                    # counts blow up.
                    heap_entries[variable] += 1
                    heappush(order_heap, (-activity, variable))
                if level_of[variable] == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Walk the trail backwards to the next marked literal.
            lit = trail[trail_index]
            while not seen[lit >> 1]:
                trail_index -= 1
                lit = trail[trail_index]
            literal = lit
            variable = lit >> 1
            seen[variable] = 0
            counter -= 1
            trail_index -= 1
            if counter == 0:
                break
            offset = reason_of[variable]
        learned.insert(0, literal ^ 1)
        # Conflict-clause minimisation: drop literals whose reason chains are
        # subsumed by the rest of the clause (and level-0 facts).  ``seen`` is
        # still marked for every learned-tail variable, which the redundancy
        # walk uses as its "in clause" test.
        if len(learned) > 1:
            # Levels represented in the learned tail: a redundancy walk can
            # only be intercepted at these levels (or level 0), so any
            # antecedent at another level refutes the candidate immediately.
            levels = {level_of[lit >> 1] for lit in learned[1:]}
            kept = [learned[0]]
            for lit in learned[1:]:
                if reason_of[lit >> 1] < 0 or not self._lit_redundant(
                    lit, touched, levels
                ):
                    kept.append(lit)
            learned = kept
        for variable in touched:
            seen[variable] = 0

        if len(learned) == 1:
            backjump_level = 0
        else:
            # Move the literal with the highest level (other than slot 0)
            # into slot 1 so it is watched after backjumping.
            max_index = 1
            max_level = level_of[learned[1] >> 1]
            for k in range(2, len(learned)):
                lvl = level_of[learned[k] >> 1]
                if lvl > max_level:
                    max_index = k
                    max_level = lvl
            learned[1], learned[max_index] = learned[max_index], learned[1]
            backjump_level = max_level
        return learned, backjump_level

    def _lit_redundant(
        self, literal: int, touched: List[int], levels: Set[int]
    ) -> bool:
        """Whether *literal* of a learned clause is implied by the others.

        Walks the implication graph from the literal's reason clause; the
        literal is redundant when every path bottoms out in a variable that
        is already part of the clause (mark 1) or assigned at level 0.

        The walk is a post-order DFS that caches an *exact* per-variable
        verdict: a fully-explored variable is marked removable (2), and on
        failure the failing variable plus every ancestor on the DFS stack
        -- whose redundancy required it -- is marked poison (3).  Both
        marks persist across the candidate walks of one conflict, so no
        subgraph is ever walked twice per conflict; this is sound because
        redundancy is a pure fixpoint over the (acyclic) implication graph
        and the fixed clause-tail/level sets, independent of walk order --
        unlike a single-bit ``seen``, which would have to roll failed walks
        back (the MiniSat 2.2 formulation) and re-explore.

        *levels* is the set of decision levels of the learned clause's tail
        literals.  An antecedent at any other non-zero level can never be
        intercepted -- following its same-level implication chain must reach
        that level's decision, and no interceptor (clause literal or cached
        redundancy) exists at a level outside the set -- so the walk fails
        immediately instead of exploring to the decision.  The filter is
        exact (same literals removed, just discovered cheaper), unlike the
        32-bit abstraction MiniSat uses for the same purpose.

        The implied literal of each reason clause needs no positional skip:
        its variable is always already marked (that is why the clause was
        expanded), so the walk filters it out by value.
        """
        seen = self._seen
        level_of = self._level
        reason_of = self._reason
        arena = self._arena
        reason = reason_of[literal >> 1]
        # DFS frames live in three persistent parallel stacks (variable,
        # next arena index, body end index) indexed by ``depth`` -- no
        # per-node allocation, entries beyond the current depth are stale
        # and always overwritten before being read.
        vars_ = self._ccmin_vars
        ks = self._ccmin_ks
        ends = self._ccmin_ends
        if vars_:
            vars_[0] = literal >> 1
            ks[0] = reason + _HDR
            ends[0] = reason + _HDR + arena[reason]
        else:
            vars_.append(literal >> 1)
            ks.append(reason + _HDR)
            ends.append(reason + _HDR + arena[reason])
        depth = 0
        # hot-loop
        while depth >= 0:
            k = ks[depth]
            end = ends[depth]
            descended = False
            while k < end:
                other = arena[k]
                k += 1
                other_var = other >> 1
                mark = seen[other_var]
                # 1 = in clause, 2 = cached removable, 4 = on this DFS
                # stack (only ever met as a reason clause's own implied
                # literal -- the graph is acyclic).
                if (
                    mark == 1
                    or mark == 2
                    or mark == 4
                    or level_of[other_var] == 0
                ):
                    continue
                if (
                    mark == 3
                    or level_of[other_var] not in levels
                    or reason_of[other_var] < 0
                ):
                    # Definitive failure: the node is poison (cached or a
                    # decision / un-interceptable level), and so is every
                    # ancestor whose redundancy required it.
                    if mark == 0:
                        seen[other_var] = 3
                        touched.append(other_var)
                    for i in range(depth + 1):
                        fr_var = vars_[i]
                        if seen[fr_var] == 4:
                            seen[fr_var] = 3
                    return False
                ks[depth] = k
                seen[other_var] = 4
                touched.append(other_var)
                fr_reason = reason_of[other_var]
                depth += 1
                if depth == len(vars_):
                    vars_.append(other_var)
                    ks.append(fr_reason + _HDR)
                    ends.append(fr_reason + _HDR + arena[fr_reason])
                else:
                    vars_[depth] = other_var
                    ks[depth] = fr_reason + _HDR
                    ends[depth] = fr_reason + _HDR + arena[fr_reason]
                descended = True
                break
            if descended:
                continue
            # Every antecedent checked out: the node is proven removable.
            fr_var = vars_[depth]
            if seen[fr_var] == 4:
                seen[fr_var] = 2
            depth -= 1
        return True

    def _backjump(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        litval = self._litval
        reason = self._reason
        heap_entries = self._heap_entries
        heap = self._order_heap
        activity = self._activity
        heappush = heapq.heappush
        trail = self._trail
        for index in range(len(trail) - 1, limit - 1, -1):
            literal = trail[index]
            variable = literal >> 1
            litval[literal] = -1
            litval[literal ^ 1] = -1
            reason[variable] = -1
            # Skip the push when a live heap entry already exists for the
            # variable; bumps always push priority-current entries.
            if heap_entries[variable] == 0:
                heap_entries[variable] = 1
                heappush(heap, (-activity[variable], variable))
        del trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _decide(self) -> Optional[int]:
        """Pick the next decision as an encoded literal (None = all set)."""
        # Pop the most active unassigned variable; stale heap entries (already
        # assigned or with outdated activity) are discarded lazily.
        heap = self._order_heap
        heap_entries = self._heap_entries
        litval = self._litval
        phase = self._phase
        heappop = heapq.heappop
        while heap:
            _, variable = heappop(heap)
            heap_entries[variable] -= 1
            if litval[variable + variable] == -1:
                encoded = variable + variable
                return encoded if phase[variable] else encoded + 1
        # Heap exhausted: fall back to a linear scan to guarantee completeness.
        for variable in range(1, self._num_vars + 1):
            if litval[variable + variable] == -1:
                encoded = variable + variable
                return encoded if phase[variable] else encoded + 1
        return None

    def _reduce_learned(self) -> None:
        """Drop the worse half of the learned clauses (Glucose-style) and
        compact the arena in place.

        Candidates are ranked by literal-block distance first (high LBD goes
        first) and activity second; "glue" clauses (LBD <= 2), binary clauses
        and clauses currently acting as a reason for an assignment are kept.

        Removal is a mark-and-compact garbage collection: condemned clauses
        get their dead flag set, live clauses slide down over them in one
        pass of block moves (activities re-slotted in lockstep), and the
        watch lists and trail ``_reason`` offsets are remapped in one pass
        each.  Watch-list order and clause order are preserved, so the
        search after a reduction is deterministic.
        """
        arena = self._arena
        act = self._act
        top = len(arena)
        learned_offsets: List[int] = []
        offset = 0
        while offset < top:
            if arena[offset + 1] & _F_LEARNED:
                learned_offsets.append(offset)
            offset += _HDR + arena[offset]
        if not learned_offsets:
            return
        reason_of = self._reason
        locked = set()
        for lit in self._trail:
            reason = reason_of[lit >> 1]
            if reason >= 0:
                locked.add(reason)
        learned_offsets.sort(
            key=lambda off: (-arena[off + 2], act[arena[off + 3]])
        )
        to_remove = set()
        for off in learned_offsets[: len(learned_offsets) // 2]:
            if off not in locked and arena[off] > 2 and arena[off + 2] > 2:
                to_remove.add(off)
        if not to_remove:
            return
        for off in to_remove:
            arena[off + 1] |= _F_DEAD
        # Compact: live clauses slide down, activities re-slot in lockstep.
        remap: Dict[int, int] = {}
        new_act: List[float] = []
        write = 0
        read = 0
        while read < top:
            length = _HDR + arena[read]
            if arena[read + 1] & _F_DEAD:
                read += length
                continue
            if write != read:
                arena[write : write + length] = arena[read : read + length]
            remap[read] = write
            new_act.append(act[arena[write + 3]])
            arena[write + 3] = len(new_act) - 1
            write += length
            read += length
        del arena[write:]
        self._act = new_act
        self._num_learned_live -= len(to_remove)
        # Remap the watch lists in place, dropping dead clauses' watchers.
        remap_get = remap.get
        for blockers, refs in zip(self._wblock, self._wref):
            n = len(refs)
            keep = 0
            for i in range(n):
                new_offset = remap_get(refs[i], -1)
                if new_offset >= 0:
                    blockers[keep] = blockers[i]
                    refs[keep] = new_offset
                    keep += 1
            if keep != n:
                del blockers[keep:]
                del refs[keep:]
        # Binary clauses are never condemned (the size > 2 guard above), so
        # every implication-list offset has a remap entry; rewrite in place.
        for refs in self._bin_ref:
            for i in range(len(refs)):
                refs[i] = remap[refs[i]]
        # Remap the reasons of the (level-0) trail; locked clauses are never
        # condemned, so every live reason has a remap entry.
        for lit in self._trail:
            variable = lit >> 1
            reason = reason_of[variable]
            if reason >= 0:
                reason_of[variable] = remap[reason]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _snapshot(self) -> SolverStats:
        stats = self.stats
        return SolverStats(
            decisions=stats.decisions,
            propagations=stats.propagations,
            conflicts=stats.conflicts,
            restarts=stats.restarts,
            learned_clauses=stats.learned_clauses,
            max_decision_level=stats.max_decision_level,
        )

    def _lbd_histogram(self) -> Dict[int, int]:
        """LBD distribution of the live learned clauses.

        One linear arena walk -- cold-path only: sampled into telemetry
        heartbeats at restart/DB-reduce branches, which already do
        comparable linear work, never at the per-conflict poll sites.
        """
        arena = self._arena
        top = len(arena)
        histogram: Dict[int, int] = {}
        offset = 0
        while offset < top:
            if arena[offset + 1] & _F_LEARNED:
                lbd = arena[offset + 2]
                histogram[lbd] = histogram.get(lbd, 0) + 1
            offset += _HDR + arena[offset]
        return histogram

    def _sample_heartbeat(
        self,
        sink: obs_telemetry.TelemetrySink,
        site: str,
        *,
        restart_interval: Optional[int] = None,
        with_lbd: bool = False,
    ) -> None:
        """Record one telemetry heartbeat from read-only search state.

        Counters are the instance's lifetime totals (monotone across
        incremental solve calls on a reused solver); nothing here feeds
        back into the search, so the verdict/model/stats of a solve are
        byte-identical with telemetry on or off.
        """
        stats = self.stats
        fields: Dict[str, object] = {
            "conflicts": stats.conflicts,
            "decisions": stats.decisions,
            "propagations": stats.propagations,
            "restarts": stats.restarts,
            "learned": stats.learned_clauses,
            "trail_depth": len(self._trail),
            "decision_level": len(self._trail_lim),
            "learned_live": self._num_learned_live,
            "arena_len": len(self._arena),
        }
        if restart_interval is not None:
            fields["restart_interval"] = restart_interval
        if with_lbd:
            fields["lbd_hist"] = self._lbd_histogram()
        sink.record(site, **fields)

    def _call_stats(self, entry: SolverStats, call_max_level: int) -> SolverStats:
        stats = self.stats
        stats.max_decision_level = max(stats.max_decision_level, call_max_level)
        return SolverStats(
            decisions=stats.decisions - entry.decisions,
            propagations=stats.propagations - entry.propagations,
            conflicts=stats.conflicts - entry.conflicts,
            restarts=stats.restarts - entry.restarts,
            learned_clauses=stats.learned_clauses - entry.learned_clauses,
            max_decision_level=call_max_level,
        )

    def solve(
        self,
        assumptions: Iterable[Literal] = (),
        *,
        max_conflicts: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> SolverResult:
        """Solve the formula, optionally under *assumptions*.

        The call begins by backjumping to decision level 0, discarding any
        decisions, assumptions and partial trail left by a previous call, so
        the same instance can be reused for incremental queries with
        different assumption sets.  Assumptions are literals that must hold;
        they are applied as decisions at the start of the search.
        ``max_conflicts`` bounds the effort of *this call*; when it is
        exhausted the result status is :attr:`SolverStatus.UNKNOWN`.
        ``deadline`` bounds it by wall clock: the search polls the
        monotonic clock every few hundred conflicts/decisions (and at
        every restart) and returns :attr:`SolverStatus.UNKNOWN` once it
        has passed — the search state stays valid for incremental reuse,
        exactly as with an exhausted conflict budget.
        """
        entry = self._snapshot()
        call_max_level = 0
        # Observability: one module-global load per call.  Span events
        # (restarts, DB reductions, deadline polls) are recorded only at
        # the cold branches below -- never inside the `# hot-loop`
        # propagate/analyse regions -- and only when a collector is
        # installed, so the disabled cost is a local `is None` test.
        observer = obs_trace.active()
        # Telemetry heartbeats follow the same contract: sampled only at
        # the cold branches below, read-only, rate-limited by the sink.
        telemetry = obs_telemetry.active()

        # Reset to level 0: a previous call's assumption decisions and
        # partial trail must never leak into this query.
        self._backjump(0)
        if self._trivially_unsat:
            return SolverResult(SolverStatus.UNSAT, stats=self._call_stats(entry, 0))
        if deadline is not None and deadline.expired():
            return SolverResult(
                SolverStatus.UNKNOWN, stats=self._call_stats(entry, 0)
            )

        assumption_list = []
        for assumption in assumptions:
            self.ensure_num_vars(var_of(assumption))
            assumption_list.append(
                assumption + assumption
                if assumption > 0
                else 1 - assumption - assumption
            )

        conflict = self._propagate()
        if conflict != -1:
            self._trivially_unsat = True
            return SolverResult(SolverStatus.UNSAT, stats=self._call_stats(entry, 0))

        litval = self._litval
        conflicts_until_restart = self._restart_base * _luby(1)
        restart_count = 1
        conflicts_since_restart = 0
        # Wall-clock polling cadence: one monotonic-clock read every
        # DEADLINE_STRIDE conflicts or decisions.  The countdown keeps
        # the common path to a single decrement + compare; the checks
        # sit outside the `# hot-loop` propagate/analyse regions.
        deadline_countdown = _DEADLINE_STRIDE

        while True:
            conflict = self._propagate()
            if conflict != -1:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if (
                    max_conflicts is not None
                    and self.stats.conflicts - entry.conflicts > max_conflicts
                ):
                    self._backjump(0)
                    return SolverResult(
                        SolverStatus.UNKNOWN,
                        stats=self._call_stats(entry, call_max_level),
                    )
                if deadline is not None:
                    deadline_countdown -= 1
                    if deadline_countdown <= 0:
                        deadline_countdown = _DEADLINE_STRIDE
                        if observer is not None:
                            observer.event(
                                "solver.deadline_poll",
                                {"remaining": deadline.remaining()},
                            )
                        if telemetry is not None and telemetry.due():
                            self._sample_heartbeat(telemetry, "deadline_poll")
                        if deadline.expired():
                            self._backjump(0)
                            return SolverResult(
                                SolverStatus.UNKNOWN,
                                stats=self._call_stats(entry, call_max_level),
                            )
                if not self._trail_lim:
                    # Conflict independent of any decision or assumption:
                    # the clause database itself is unsatisfiable, now and
                    # for every future call.
                    self._trivially_unsat = True
                    return SolverResult(
                        SolverStatus.UNSAT,
                        stats=self._call_stats(entry, call_max_level),
                    )
                learned, backjump_level = self._analyse(conflict)
                self._backjump(backjump_level)
                if len(learned) == 1:
                    unit = learned[0]
                    if self._export_max_lbd is not None:
                        self._exported.append(
                            [unit >> 1 if not unit & 1 else -(unit >> 1)]
                        )
                    value = litval[unit]
                    if value == 0:
                        # Falsified at level 0: permanently UNSAT.
                        self._trivially_unsat = True
                        return SolverResult(
                            SolverStatus.UNSAT,
                            stats=self._call_stats(entry, call_max_level),
                        )
                    if value == -1:
                        self._enqueue(unit, -1)
                else:
                    offset = self._add_learned_clause(learned)
                    self._enqueue(learned[0], offset)
                self._var_bump /= self._var_decay
                self._clause_bump /= self._clause_decay
                continue

            # Restart?
            if conflicts_since_restart >= conflicts_until_restart:
                self.stats.restarts += 1
                restart_count += 1
                conflicts_since_restart = 0
                conflicts_until_restart = self._restart_base * _luby(
                    restart_count
                )
                if observer is not None:
                    observer.event(
                        "solver.restart",
                        {
                            "conflicts": self.stats.conflicts - entry.conflicts,
                            "next_interval": conflicts_until_restart,
                        },
                    )
                obs_metrics.process_metrics().inc("qed_solver_restarts_total")
                if telemetry is not None and telemetry.due():
                    # Sampled before the backjump so trail depth and
                    # decision level describe the search being abandoned.
                    self._sample_heartbeat(
                        telemetry,
                        "restart",
                        restart_interval=conflicts_until_restart,
                        with_lbd=True,
                    )
                self._backjump(0)
                if deadline is not None and deadline.expired():
                    return SolverResult(
                        SolverStatus.UNKNOWN,
                        stats=self._call_stats(entry, call_max_level),
                    )
                continue

            # Learned clause DB reduction: triggered by the adaptive
            # threshold, which grows a little after every reduction (keeps
            # propagation fast on hard instances instead of letting the
            # database scale with the original clause count).
            if (
                self._num_learned_live > self._reduce_threshold
                and not self._trail_lim
            ):
                before_reduce = self._num_learned_live
                self._reduce_learned()
                self._reduce_threshold += 1000
                if observer is not None:
                    observer.event(
                        "solver.db_reduce",
                        {
                            "before": before_reduce,
                            "after": self._num_learned_live,
                        },
                    )
                obs_metrics.process_metrics().inc(
                    "qed_solver_db_reductions_total"
                )
                if telemetry is not None and telemetry.due():
                    self._sample_heartbeat(telemetry, "db_reduce", with_lbd=True)

            # Apply pending assumptions as decisions.
            pending_assumption = -1
            assumption_falsified = False
            for assumption in assumption_list:
                value = litval[assumption]
                if value == 0:
                    assumption_falsified = True
                    break
                if value == -1:
                    pending_assumption = assumption
                    break
            if assumption_falsified:
                # UNSAT *under these assumptions* -- the formula itself may
                # still be satisfiable, so do not poison future calls.
                self._backjump(0)
                return SolverResult(
                    SolverStatus.UNSAT,
                    stats=self._call_stats(entry, call_max_level),
                )
            if pending_assumption != -1:
                self._trail_lim.append(len(self._trail))
                self._enqueue(pending_assumption, -1)
                continue

            decision = self._decide()
            if decision is None:
                model = [False] * (self._num_vars + 1)
                for variable in range(1, self._num_vars + 1):
                    model[variable] = litval[variable + variable] == 1
                call_max_level = max(call_max_level, len(self._trail_lim))
                return SolverResult(
                    SolverStatus.SAT,
                    model=model,
                    stats=self._call_stats(entry, call_max_level),
                )

            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            call_max_level = max(call_max_level, len(self._trail_lim))
            self._enqueue(decision, -1)
            if deadline is not None:
                # Conflict-free stretches (e.g. an easily satisfied
                # instance with a huge variable count) never reach the
                # conflict-side countdown, so poll on decisions too.
                deadline_countdown -= 1
                if deadline_countdown <= 0:
                    deadline_countdown = _DEADLINE_STRIDE
                    if observer is not None:
                        observer.event(
                            "solver.deadline_poll",
                            {"remaining": deadline.remaining()},
                        )
                    if telemetry is not None and telemetry.due():
                        self._sample_heartbeat(telemetry, "deadline_poll")
                    if deadline.expired():
                        self._backjump(0)
                        return SolverResult(
                            SolverStatus.UNKNOWN,
                            stats=self._call_stats(entry, call_max_level),
                        )


def solve(
    cnf: CNF, assumptions: Iterable[Literal] = ()
) -> SolverResult:
    """Solve *cnf* (optionally under *assumptions*) and return the result."""
    solver = CDCLSolver(cnf)
    return solver.solve(assumptions)
