"""CNF preprocessing: the single formula-reduction code path.

The heavy-duty entry point :func:`preprocess` *shrinks the formula before
the solver sees it* with the three classic SatELite techniques (plus an
optional blocked-clause pass); the gentle entry point :func:`simplify_cnf`
(absorbed from the retired ``repro.sat.simplify`` module) only cleans a
whole CNF up without touching the variable space.  :func:`preprocess`
applies:

* **bounded variable elimination** (BVE) -- a non-frozen variable is
  resolved away when the set of non-tautological resolvents is no larger
  than the clauses it replaces.  Tseitin auxiliaries introduced by the
  AIG-to-CNF translation are the prime candidates: most have a handful of
  occurrences and disappear without any growth.
* **subsumption and self-subsuming resolution** -- a clause implied by a
  shorter one is dropped; a clause that is *almost* subsumed (one literal
  flipped) is strengthened by removing that literal.
* **failed-literal probing** -- assuming a literal and running unit
  propagation; a conflict proves the complement at top level.
* **blocked-clause elimination** (optional, ``enable_blocked=True``) -- a
  clause all of whose resolvents on one literal are tautological is
  removed; sound for whole formulas only (never per-bound slabs), see
  :func:`preprocess`.

The preprocessor is designed to compose with the *incremental* BMC engine:
it operates on a clause *slab* (the clauses newly encoded for one bound) and
takes a **frozen** variable set that it must never eliminate -- activation
literals, frame-interface variables and symbolic-initial-state variables,
i.e. everything the engine may still reference from later bounds, solver
assumptions or counterexample extraction.  Derived facts (units) are always
part of the output, so the downstream solver sees them.

Because eliminating a variable removes its defining clauses, a SAT model of
the reduced slab no longer assigns eliminated variables meaningfully.  The
:class:`PreprocessResult` therefore carries the *reconstruction stack* (the
clauses removed per eliminated variable, in elimination order);
:func:`extend_model` replays it backwards to extend any model of the reduced
formula to the original variable space.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.sat.cnf import CNF, Literal, var_of

#: Reconstruction stack entry: the variable and the clauses its elimination
#: removed (recorded *before* removal, in the original variable space).
EliminationRecord = Tuple[int, List[List[Literal]]]

#: Blocked-clause reconstruction entry: the blocking literal and the removed
#: clause (see :func:`reconstruct_blocked`).
BlockedRecord = Tuple[Literal, List[Literal]]


@dataclass
class PreprocessStats:
    """Work and reduction achieved by one :func:`preprocess` call."""

    clauses_in: int = 0
    clauses_out: int = 0
    units_derived: int = 0
    clauses_subsumed: int = 0
    literals_strengthened: int = 0
    clauses_blocked: int = 0
    variables_eliminated: int = 0
    resolvents_added: int = 0
    probes: int = 0
    failed_literals: int = 0
    rounds: int = 0
    time_seconds: float = 0.0

    def merge(self, other: "PreprocessStats") -> None:
        """Accumulate *other* into this instance (per-run totals)."""
        self.clauses_in += other.clauses_in
        self.clauses_out += other.clauses_out
        self.units_derived += other.units_derived
        self.clauses_subsumed += other.clauses_subsumed
        self.literals_strengthened += other.literals_strengthened
        self.clauses_blocked += other.clauses_blocked
        self.variables_eliminated += other.variables_eliminated
        self.resolvents_added += other.resolvents_added
        self.probes += other.probes
        self.failed_literals += other.failed_literals
        self.rounds += other.rounds
        self.time_seconds += other.time_seconds


@dataclass
class PreprocessResult:
    """Outcome of :func:`preprocess`.

    ``clauses`` is the reduced slab (including one unit clause per fixed
    variable); ``eliminated`` is the reconstruction stack for
    :func:`extend_model`.  When ``unsat`` is true the input slab is
    unsatisfiable on its own and ``clauses`` contains the empty clause.
    """

    clauses: List[List[Literal]]
    stats: PreprocessStats
    eliminated: List[EliminationRecord] = field(default_factory=list)
    #: Blocked clauses removed by the (optional) BCE pass, in removal order.
    blocked: List[BlockedRecord] = field(default_factory=list)
    unsat: bool = False

    def extend_model(
        self, model: List[bool], skip: AbstractSet[int] = frozenset()
    ) -> List[bool]:
        """Extend *model* over this result's removed structure.

        Reconstruction replays removals in reverse chronological order: the
        BCE pass runs last, so blocked clauses are repaired first
        (:func:`reconstruct_blocked`), then the eliminated variables are
        re-derived (:func:`extend_model`).
        """
        model = reconstruct_blocked(model, self.blocked)
        return extend_model(model, self.eliminated, skip)


def _signature(clause: Sequence[Literal]) -> int:
    """Bloom-filter signature over variables (for fast subset rejection)."""
    sig = 0
    for lit in clause:
        sig |= 1 << ((lit if lit > 0 else -lit) % 61)
    return sig


class _Preprocessor:
    """Mutable working state of one preprocessing run."""

    def __init__(
        self,
        clauses: Iterable[Sequence[Literal]],
        frozen: AbstractSet[int],
        frozen_cutoff: int,
        bve_clause_limit: int,
        bve_occurrence_limit: int,
        bce_occurrence_limit: int = 24,
    ) -> None:
        self.frozen = frozen
        self.frozen_cutoff = frozen_cutoff
        self.bve_clause_limit = bve_clause_limit
        self.bve_occurrence_limit = bve_occurrence_limit
        self.bce_occurrence_limit = bce_occurrence_limit
        self.blocked: List[BlockedRecord] = []
        self.unsat = False
        self.fixed: Dict[int, bool] = {}
        self.clauses: List[Optional[List[Literal]]] = []
        self.sigs: List[int] = []
        self.occs: Dict[Literal, Set[int]] = defaultdict(set)
        self.unit_queue: List[Literal] = []
        self.touched: List[int] = []
        self.eliminated: List[EliminationRecord] = []
        self.stats = PreprocessStats()
        for clause in clauses:
            self.stats.clauses_in += 1
            self._add_clause(clause)
        self._propagate_units()

    # ------------------------------------------------------------------
    # Clause database
    # ------------------------------------------------------------------
    def _add_clause(self, literals: Sequence[Literal]) -> None:
        seen: Set[Literal] = set()
        out: List[Literal] = []
        for lit in literals:
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            value = self.fixed.get(lit if lit > 0 else -lit)
            if value is not None:
                if (lit > 0) == value:
                    return  # satisfied by a fixed variable
                continue  # falsified literal dropped
            seen.add(lit)
            out.append(lit)
        if not out:
            self.unsat = True
            return
        cid = len(self.clauses)
        self.clauses.append(out)
        self.sigs.append(_signature(out))
        for lit in out:
            self.occs[lit].add(cid)
        if len(out) == 1:
            self.unit_queue.append(out[0])
        else:
            self.touched.append(cid)

    def _remove_clause(self, cid: int) -> None:
        clause = self.clauses[cid]
        if clause is None:
            return
        self.clauses[cid] = None
        occs = self.occs
        for lit in clause:
            entry = occs.get(lit)
            if entry is not None:
                entry.discard(cid)

    def _strengthen(self, cid: int, lit: Literal) -> None:
        """Remove *lit* from clause *cid* (it is known not to help)."""
        clause = self.clauses[cid]
        if clause is None:
            return
        clause.remove(lit)
        entry = self.occs.get(lit)
        if entry is not None:
            entry.discard(cid)
        if not clause:
            self.unsat = True
            return
        self.sigs[cid] = _signature(clause)
        if len(clause) == 1:
            self.unit_queue.append(clause[0])
        else:
            self.touched.append(cid)

    # ------------------------------------------------------------------
    # Unit propagation
    # ------------------------------------------------------------------
    def _propagate_units(self) -> None:
        while self.unit_queue and not self.unsat:
            lit = self.unit_queue.pop()
            variable = lit if lit > 0 else -lit
            value = lit > 0
            existing = self.fixed.get(variable)
            if existing is not None:
                if existing != value:
                    self.unsat = True
                continue
            self.fixed[variable] = value
            self.stats.units_derived += 1
            for cid in list(self.occs.get(lit, ())):
                self._remove_clause(cid)
            self.occs.pop(lit, None)
            for cid in list(self.occs.get(-lit, ())):
                self._strengthen(cid, -lit)
            self.occs.pop(-lit, None)

    # ------------------------------------------------------------------
    # Subsumption / self-subsuming resolution
    # ------------------------------------------------------------------
    def _find_subsumed(
        self, lits: Sequence[Literal], sig: int, skip_cid: int
    ) -> List[int]:
        """Alive clauses (other than *skip_cid*) that contain all of *lits*."""
        best: Optional[Literal] = None
        best_count = -1
        for lit in lits:
            entry = self.occs.get(lit)
            count = len(entry) if entry else 0
            if count == 0:
                return []
            if best is None or count < best_count:
                best, best_count = lit, count
        lits_set = set(lits)
        size = len(lits)
        sigs = self.sigs
        clauses = self.clauses
        found: List[int] = []
        for cid in self.occs.get(best, ()):
            if cid == skip_cid:
                continue
            clause = clauses[cid]
            if clause is None or len(clause) < size:
                continue
            if sig & ~sigs[cid]:
                continue
            if lits_set.issubset(clause):
                found.append(cid)
        return found

    def _subsumption_pass(self, max_clause_len: int = 20) -> None:
        while self.touched and not self.unsat:
            queue, self.touched = self.touched, []
            for did in queue:
                if self.unit_queue:
                    self._propagate_units()
                if self.unsat:
                    return
                clause = self.clauses[did]
                if clause is None or len(clause) > max_clause_len:
                    continue
                sig = self.sigs[did]
                for cid in self._find_subsumed(clause, sig, did):
                    self._remove_clause(cid)
                    self.stats.clauses_subsumed += 1
                # Self-subsuming resolution: flip one literal of the clause;
                # any superset of the flipped clause can drop the flipped
                # literal (the resolvent on it subsumes the superset).  The
                # signature is sign-insensitive, so it carries over.
                for index in range(len(clause)):
                    lit = clause[index]
                    flipped = list(clause)
                    flipped[index] = -lit
                    for cid in self._find_subsumed(flipped, sig, did):
                        self._strengthen(cid, -lit)
                        self.stats.literals_strengthened += 1
                    if self.clauses[did] is not clause:
                        break  # the clause itself changed; re-queued already

    # ------------------------------------------------------------------
    # Bounded variable elimination
    # ------------------------------------------------------------------
    def _eliminate_pass(self) -> bool:
        occs = self.occs
        candidates: List[Tuple[int, int]] = []
        seen_vars: Set[int] = set()
        for lit, entry in occs.items():
            if not entry:
                continue
            variable = lit if lit > 0 else -lit
            if (
                variable in seen_vars
                or variable <= self.frozen_cutoff
                or variable in self.frozen
            ):
                continue
            seen_vars.add(variable)
            total = len(occs.get(variable, ())) + len(occs.get(-variable, ()))
            candidates.append((total, variable))
        candidates.sort()
        changed = False
        for _, variable in candidates:
            if self.unsat:
                break
            if variable in self.fixed:
                continue
            pos = sorted(occs.get(variable, ()))
            neg = sorted(occs.get(-variable, ()))
            if not pos and not neg:
                continue
            if (
                len(pos) > self.bve_occurrence_limit
                and len(neg) > self.bve_occurrence_limit
            ):
                continue
            limit = len(pos) + len(neg)
            resolvents: List[List[Literal]] = []
            within_bounds = True
            for pos_cid in pos:
                pos_clause = self.clauses[pos_cid]
                assert pos_clause is not None
                rest = [l for l in pos_clause if l != variable]
                rest_set = set(rest)
                for neg_cid in neg:
                    neg_clause = self.clauses[neg_cid]
                    assert neg_clause is not None
                    merged_set = set(rest_set)
                    tautology = False
                    for lit in neg_clause:
                        if lit == -variable:
                            continue
                        if -lit in merged_set:
                            tautology = True
                            break
                        merged_set.add(lit)
                    if tautology:
                        continue
                    if len(merged_set) > self.bve_clause_limit:
                        within_bounds = False
                        break
                    resolvents.append(sorted(merged_set))
                    if len(resolvents) > limit:
                        within_bounds = False
                        break
                if not within_bounds:
                    break
            if not within_bounds:
                continue
            removed = [list(self.clauses[cid]) for cid in pos + neg]
            for cid in pos + neg:
                self._remove_clause(cid)
            occs.pop(variable, None)
            occs.pop(-variable, None)
            self.eliminated.append((variable, removed))
            self.stats.variables_eliminated += 1
            for resolvent in resolvents:
                self._add_clause(resolvent)
                self.stats.resolvents_added += 1
            if self.unit_queue:
                self._propagate_units()
            changed = True
        return changed

    # ------------------------------------------------------------------
    # Failed-literal probing
    # ------------------------------------------------------------------
    def _probe_pass(self, max_probes: int, visit_budget: int) -> None:
        # Rank probe literals by how much propagation assuming them can
        # trigger: the binary-clause occurrences of their complement.
        score: Dict[Literal, int] = defaultdict(int)
        for clause in self.clauses:
            if clause is not None and len(clause) == 2:
                for lit in clause:
                    score[-lit] += 1
        ranked = sorted(score.items(), key=lambda item: (-item[1], item[0]))
        visits = 0
        for lit, strength in ranked[:max_probes]:
            if self.unsat or visits > visit_budget or strength < 2:
                break
            variable = lit if lit > 0 else -lit
            if variable in self.fixed:
                continue
            failed, visits = self._probe_one(lit, visits, visit_budget)
            self.stats.probes += 1
            if failed:
                self.stats.failed_literals += 1
                self.unit_queue.append(-lit)
                self._propagate_units()

    def _probe_one(
        self, root: Literal, visits: int, budget: int
    ) -> Tuple[bool, int]:
        """Assume *root* and unit-propagate; ``True`` means it failed."""
        assign: Dict[int, bool] = {}
        queue = [root]
        head = 0
        clauses = self.clauses
        occs = self.occs
        while head < len(queue):
            lit = queue[head]
            head += 1
            variable = lit if lit > 0 else -lit
            value = lit > 0
            current = assign.get(variable)
            if current is not None:
                if current != value:
                    return True, visits
                continue
            assign[variable] = value
            for cid in occs.get(-lit, ()):
                clause = clauses[cid]
                if clause is None:
                    continue
                visits += len(clause)
                unassigned: Optional[Literal] = None
                unassigned_count = 0
                satisfied = False
                for other in clause:
                    if other == -lit:
                        continue
                    other_var = other if other > 0 else -other
                    other_value = assign.get(other_var)
                    if other_value is None:
                        unassigned_count += 1
                        unassigned = other
                        if unassigned_count > 1:
                            break
                    elif (other > 0) == other_value:
                        satisfied = True
                        break
                if satisfied or unassigned_count > 1:
                    continue
                if unassigned_count == 0:
                    return True, visits
                queue.append(unassigned)
            if visits > budget:
                break
        return False, visits

    # ------------------------------------------------------------------
    # Blocked-clause elimination
    # ------------------------------------------------------------------
    def _clause_blocked_on(self, clause: List[Literal], lit: Literal) -> bool:
        """Whether every resolvent of *clause* on *lit* is tautological."""
        rest = {l for l in clause if l != lit}
        for cid in self.occs.get(-lit, ()):
            other = self.clauses[cid]
            if other is None:
                continue
            other_set = set(other)
            if not any(-l in other_set for l in rest):
                return False
        return True

    def _bce_pass(self) -> None:
        """Remove blocked clauses (a final, optional pass).

        A clause is *blocked* on one of its literals when every resolvent on
        that literal is tautological; removing it preserves satisfiability
        (Kullmann), and a model of the remainder is repaired by flipping the
        blocking literal whenever the removed clause is unsatisfied
        (:func:`reconstruct_blocked`).  Pure literals are the degenerate
        case (no resolvents at all), so this pass generalises pure-literal
        elimination.

        Two restrictions keep the pass safe in this codebase: frozen
        variables never act as blocking literals (their value is observed
        elsewhere, e.g. by solver assumptions), and -- unlike every other
        transformation here -- blocked-clause elimination is **not** sound
        on a slab of a larger formula (an outside clause can produce a
        non-tautological resolvent), so the caller must only enable it on a
        complete formula.
        """
        queue: List[int] = [
            cid for cid, clause in enumerate(self.clauses) if clause is not None
        ]
        in_queue = set(queue)
        while queue and not self.unsat:
            cid = queue.pop()
            in_queue.discard(cid)
            clause = self.clauses[cid]
            if clause is None:
                continue
            for lit in clause:
                variable = lit if lit > 0 else -lit
                if variable <= self.frozen_cutoff or variable in self.frozen:
                    continue
                if len(self.occs.get(-lit, ())) > self.bce_occurrence_limit:
                    continue
                if self._clause_blocked_on(clause, lit):
                    self.blocked.append((lit, list(clause)))
                    self._remove_clause(cid)
                    self.stats.clauses_blocked += 1
                    # Removing a clause can newly block clauses that used to
                    # resolve against it: re-examine the resolution partners.
                    for other_lit in clause:
                        for ocid in self.occs.get(-other_lit, ()):
                            if ocid not in in_queue:
                                in_queue.add(ocid)
                                queue.append(ocid)
                    break

    # ------------------------------------------------------------------
    def output_clauses(self) -> List[List[Literal]]:
        if self.unsat:
            return [[]]
        out: List[List[Literal]] = []
        for variable in sorted(self.fixed):
            out.append([variable if self.fixed[variable] else -variable])
        for clause in self.clauses:
            if clause is not None:
                out.append(list(clause))
        return out


def preprocess(
    clauses: Iterable[Sequence[Literal]],
    *,
    frozen: AbstractSet[int] = frozenset(),
    frozen_cutoff: int = 0,
    max_rounds: int = 3,
    enable_subsumption: bool = True,
    enable_elimination: bool = True,
    enable_probing: bool = True,
    enable_blocked: bool = False,
    bve_clause_limit: int = 8,
    bve_occurrence_limit: int = 12,
    bce_occurrence_limit: int = 24,
    probe_limit: int = 2000,
    probe_visit_budget: int = 2_000_000,
) -> PreprocessResult:
    """Shrink a clause slab; never eliminates a variable in *frozen*.

    ``frozen_cutoff`` freezes every variable ``<= frozen_cutoff`` without
    materializing a set -- the incremental engine uses it for "everything
    the solver already knows", which would otherwise be an O(num_vars) set
    per bound.

    The slab may be any subset of a larger formula: every transformation
    applied here is sound with respect to the superset as long as variables
    occurring outside the slab are frozen (facts derived from a subset hold
    for the whole formula, and elimination is restricted to slab-local
    variables).

    ``enable_blocked`` (off by default) runs blocked-clause elimination as
    a final pass.  **Exception to the slab contract above:** BCE only
    preserves satisfiability when *clauses* is the complete formula --
    a clause outside the slab can produce a non-tautological resolvent on
    the blocking literal -- so only enable it for whole-formula
    preprocessing (e.g. a portfolio worker building its own solver), never
    for the incremental engine's per-bound slabs.  BCE also changes the
    model: use :meth:`PreprocessResult.extend_model` (which repairs blocked
    clauses before re-deriving eliminated variables) rather than the
    module-level :func:`extend_model`.
    """
    start = time.perf_counter()
    state = _Preprocessor(
        clauses,
        frozen,
        frozen_cutoff,
        bve_clause_limit,
        bve_occurrence_limit,
        bce_occurrence_limit,
    )
    for round_index in range(max_rounds):
        if state.unsat:
            break
        state.stats.rounds += 1
        changed = False
        if enable_subsumption:
            before = (
                state.stats.clauses_subsumed,
                state.stats.literals_strengthened,
                state.stats.units_derived,
            )
            state._subsumption_pass()
            changed |= before != (
                state.stats.clauses_subsumed,
                state.stats.literals_strengthened,
                state.stats.units_derived,
            )
        if enable_elimination and not state.unsat:
            changed |= state._eliminate_pass()
            if enable_subsumption and state.touched and not state.unsat:
                state._subsumption_pass()
        if enable_probing and round_index == 0 and not state.unsat:
            failed_before = state.stats.failed_literals
            state._probe_pass(probe_limit, probe_visit_budget)
            changed |= state.stats.failed_literals > failed_before
        if not changed:
            break
    if enable_blocked and not state.unsat:
        state._bce_pass()
    result_clauses = state.output_clauses()
    state.stats.clauses_out = len(result_clauses)
    state.stats.time_seconds = time.perf_counter() - start
    return PreprocessResult(
        clauses=result_clauses,
        stats=state.stats,
        eliminated=state.eliminated,
        blocked=state.blocked,
        unsat=state.unsat,
    )


def extend_model(
    model: List[bool],
    eliminated: Sequence[EliminationRecord],
    skip: AbstractSet[int] = frozenset(),
) -> List[bool]:
    """Extend *model* over eliminated variables (reverse elimination order).

    For each eliminated variable the removed clauses are examined under the
    model built so far: a removed clause not satisfied by its other literals
    forces the variable's value.  Unsatisfied clauses cannot disagree --
    otherwise the corresponding resolvent (which the reduced formula kept)
    would be falsified -- so the first one found decides.  Variables in
    *skip* are left at the model's value (used when a variable was later
    re-introduced and the solver assigned it directly).
    """
    extended = list(model)
    needed = 0
    for variable, removed in eliminated:
        needed = max(needed, variable)
        for clause in removed:
            for lit in clause:
                needed = max(needed, lit if lit > 0 else -lit)
    if len(extended) < needed + 1:
        extended.extend([False] * (needed + 1 - len(extended)))
    for variable, removed in reversed(eliminated):
        if variable in skip:
            continue
        value = False
        for clause in removed:
            satisfied_by_others = False
            own_polarity = False
            for lit in clause:
                lit_var = lit if lit > 0 else -lit
                if lit_var == variable:
                    own_polarity = lit > 0
                    continue
                if extended[lit_var] == (lit > 0):
                    satisfied_by_others = True
                    break
            if not satisfied_by_others:
                value = own_polarity
                break
        extended[variable] = value
    return extended


def reconstruct_blocked(
    model: List[bool], blocked: Sequence[BlockedRecord]
) -> List[bool]:
    """Repair *model* for the clauses a BCE pass removed.

    Unlike an eliminated variable, a blocking variable still occurs in the
    remaining formula, so it already has a meaningful model value -- it is
    only *flipped* (to the blocking literal's polarity) when the removed
    clause is not otherwise satisfied.  Flipping is sound because every
    clause containing the complement of the blocking literal resolves
    tautologically with the removed clause: such a clause contains the
    complement of another literal of the removed clause, and that literal
    is false in the model (the clause was unsatisfied), so the complement
    keeps the clause satisfied.  Removals are replayed in reverse order.
    """
    extended = list(model)
    needed = 0
    for lit, clause in blocked:
        for other in clause:
            needed = max(needed, other if other > 0 else -other)
    if len(extended) < needed + 1:
        extended.extend([False] * (needed + 1 - len(extended)))
    for lit, clause in reversed(blocked):
        satisfied = False
        for other in clause:
            variable = other if other > 0 else -other
            if extended[variable] == (other > 0):
                satisfied = True
                break
        if not satisfied:
            extended[lit if lit > 0 else -lit] = lit > 0
    return extended


# ----------------------------------------------------------------------
# Legacy lightweight simplification (absorbed from repro.sat.simplify)
# ----------------------------------------------------------------------
@dataclass
class SimplificationResult:
    """Outcome of :func:`simplify_cnf`."""

    cnf: CNF
    fixed: Dict[int, bool] = field(default_factory=dict)
    unsatisfiable: bool = False

    def extend_model(self, model: List[bool]) -> List[bool]:
        """Overlay the preprocessing-fixed variables onto *model*."""
        extended = list(model)
        needed = max(self.fixed, default=0) + 1
        if len(extended) < needed:
            extended.extend([False] * (needed - len(extended)))
        for variable, value in self.fixed.items():
            extended[variable] = value
        return extended


def simplify_cnf(cnf: CNF) -> SimplificationResult:
    """Lightweight clause-level clean-up of a whole :class:`CNF`.

    The gentle sibling of :func:`preprocess`: tautology and duplicate
    removal, exhaustive top-level unit propagation, and pure-literal
    elimination -- nothing that changes the variable space, so solver
    models remain directly usable after
    :meth:`SimplificationResult.extend_model`.  (Pure-literal elimination
    is the degenerate case of the blocked-clause pass above; it is kept
    here because this entry point reports *fixed values* rather than a
    reconstruction stack.)

    Built on the same :class:`_Preprocessor` core as :func:`preprocess`
    (clause intake + unit propagation), with every reduction pass disabled;
    only the single-scan pure-literal step is specific to this entry point.
    """
    state = _Preprocessor(
        cnf.clauses,
        frozen=frozenset(),
        frozen_cutoff=0,
        bve_clause_limit=0,
        bve_occurrence_limit=0,
    )
    if state.unsat:
        return SimplificationResult(
            cnf=cnf.copy(), fixed=dict(state.fixed), unsatisfiable=True
        )
    fixed: Dict[int, bool] = dict(state.fixed)

    # Pure-literal elimination (single scan, matching the legacy entry
    # point): a variable occurring in one polarity only is fixed to it and
    # its clauses dropped.
    pure: Dict[int, bool] = {}
    for literal, occurrences in state.occs.items():
        if not occurrences:
            continue
        variable = var_of(literal)
        if variable in fixed or variable in pure:
            continue
        if not state.occs.get(-literal):
            pure[variable] = literal > 0
    for variable, value in pure.items():
        fixed.setdefault(variable, value)

    simplified = CNF(cnf.num_vars)
    for clause in state.clauses:
        if clause is None:
            continue
        if any(var_of(literal) in pure for literal in clause):
            continue
        simplified.add_clause(list(clause))
    return SimplificationResult(cnf=simplified, fixed=fixed)
