"""Lightweight CNF preprocessing.

The bit-blaster in :mod:`repro.expr` already does constant folding and
structural hashing, so the CNF it emits is fairly compact; this module adds
inexpensive clause-level clean-up that still pays for itself on BMC problems:

* removal of tautological clauses and duplicate literals,
* top-level unit propagation (with the implied literal substitution),
* pure-literal elimination.

The result is a new :class:`~repro.sat.cnf.CNF` plus a map of variables fixed
by preprocessing, so models of the simplified formula can be extended back to
the original variable space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sat.cnf import CNF, Literal, var_of


@dataclass
class SimplificationResult:
    """Outcome of :func:`simplify_cnf`."""

    cnf: CNF
    fixed: Dict[int, bool] = field(default_factory=dict)
    unsatisfiable: bool = False

    def extend_model(self, model: List[bool]) -> List[bool]:
        """Overlay the preprocessing-fixed variables onto *model*."""
        extended = list(model)
        needed = max(self.fixed, default=0) + 1
        if len(extended) < needed:
            extended.extend([False] * (needed - len(extended)))
        for variable, value in self.fixed.items():
            extended[variable] = value
        return extended


def _propagate_units(
    clauses: List[List[Literal]], fixed: Dict[int, bool]
) -> Optional[List[List[Literal]]]:
    """Exhaustively apply unit propagation at the top level.

    Returns the reduced clause list, or ``None`` if a conflict was found.
    """
    changed = True
    while changed:
        changed = False
        units = [clause[0] for clause in clauses if len(clause) == 1]
        if not units:
            break
        for literal in units:
            variable = var_of(literal)
            value = literal > 0
            if variable in fixed and fixed[variable] != value:
                return None
            fixed[variable] = value
        new_clauses: List[List[Literal]] = []
        for clause in clauses:
            satisfied = False
            reduced: List[Literal] = []
            for literal in clause:
                variable = var_of(literal)
                if variable in fixed:
                    if (literal > 0) == fixed[variable]:
                        satisfied = True
                        break
                else:
                    reduced.append(literal)
            if satisfied:
                changed = True
                continue
            if not reduced:
                return None
            if len(reduced) != len(clause):
                changed = True
            new_clauses.append(reduced)
        clauses = new_clauses
    return clauses


def simplify_cnf(cnf: CNF) -> SimplificationResult:
    """Simplify *cnf* and report fixed variables.

    The returned formula shares the original variable numbering, so solver
    models remain directly usable after :meth:`SimplificationResult.extend_model`.
    """
    fixed: Dict[int, bool] = {}
    clauses: List[List[Literal]] = []
    for clause in cnf.clauses:
        seen: Set[Literal] = set()
        tautology = False
        cleaned: List[Literal] = []
        for literal in clause:
            if -literal in seen:
                tautology = True
                break
            if literal not in seen:
                seen.add(literal)
                cleaned.append(literal)
        if tautology:
            continue
        clauses.append(cleaned)

    propagated = _propagate_units(clauses, fixed)
    if propagated is None:
        empty = CNF(cnf.num_vars)
        empty.add_clause([1]) if cnf.num_vars else None
        return SimplificationResult(cnf=cnf.copy(), fixed=fixed, unsatisfiable=True)
    clauses = propagated

    # Pure-literal elimination.
    polarity: Dict[int, Set[bool]] = {}
    for clause in clauses:
        for literal in clause:
            polarity.setdefault(var_of(literal), set()).add(literal > 0)
    pure = {
        variable: next(iter(signs))
        for variable, signs in polarity.items()
        if len(signs) == 1
    }
    if pure:
        for variable, value in pure.items():
            fixed.setdefault(variable, value)
        clauses = [
            clause
            for clause in clauses
            if not any(var_of(lit) in pure for lit in clause)
        ]

    simplified = CNF(cnf.num_vars)
    for clause in clauses:
        simplified.add_clause(clause)
    return SimplificationResult(cnf=simplified, fixed=fixed)
