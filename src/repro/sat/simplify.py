"""Deprecated shim -- the lightweight simplifier moved to
:mod:`repro.sat.preprocess`.

There is one preprocessing code path now: :func:`repro.sat.preprocess.preprocess`
for the heavy SatELite-style reduction and
:func:`repro.sat.preprocess.simplify_cnf` for the gentle whole-CNF clean-up
this module used to provide.  Import from :mod:`repro.sat` (or
:mod:`repro.sat.preprocess`) instead; this shim re-exports the moved names
and will be removed in a future PR.
"""

from __future__ import annotations

import warnings

from repro.sat.preprocess import SimplificationResult, simplify_cnf

__all__ = ["SimplificationResult", "simplify_cnf"]

warnings.warn(
    "repro.sat.simplify is deprecated; simplify_cnf and SimplificationResult "
    "now live in repro.sat.preprocess (re-exported from repro.sat)",
    DeprecationWarning,
    stacklevel=2,
)
