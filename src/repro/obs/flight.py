"""Failure flight recorder: crash-dump JSON artifacts for bad job endings.

A :class:`FlightRecorder` owns a directory and dumps one structured JSON
artifact per job whenever the serve queue sees a terminal failure -- the
job FAILed, was quarantined, or expired its deadline (queued or
mid-solve).  The artifact bundles everything the in-memory trace store
held for the job (spans, the bounded ring of recent span events, attempt
history), so a postmortem never needs a re-run: the kill that burned a
retry, the deadline poll that fired, the fault-injector site that tripped
are all in the file.

Writes are atomic (temp file + ``os.replace``) and best-effort: a full
disk or unwritable directory increments ``write_errors`` instead of
taking the queue down with it.  The directory is bounded: once it holds
more than ``max_files`` flight records, the oldest (by mtime) are evicted
after each successful dump and counted in ``evictions`` -- a long-lived
server with a recurring failure mode keeps the freshest postmortems
instead of filling the disk.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

__all__ = ["DEFAULT_MAX_FILES", "FLIGHT_FORMAT", "FlightRecorder"]

#: Version tag written into every artifact.
FLIGHT_FORMAT = 1

#: Flight records kept per directory before oldest-mtime eviction.
DEFAULT_MAX_FILES = 64


class FlightRecorder:
    """Dump per-job flight records into *directory* (``None`` disables)."""

    def __init__(
        self, directory: Optional[str], *, max_files: int = DEFAULT_MAX_FILES
    ) -> None:
        if max_files < 1:
            raise ValueError("max_files must be at least 1")
        self.directory = directory
        self.max_files = max_files
        self.dumps = 0
        self.write_errors = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    def dump(
        self,
        job_id: str,
        *,
        reason: str,
        state: str,
        trace: Optional[Dict[str, object]] = None,
        error: Optional[str] = None,
        attempts: int = 0,
        extra: Optional[Dict[str, object]] = None,
    ) -> Optional[str]:
        """Write ``flight-<job_id>.json``; returns its path (or ``None``).

        *reason* is the trigger (``failed`` / ``quarantined`` /
        ``deadline_expired``), *trace* the trace store's JSON view of the
        job at dump time.  Repeated dumps for the same job overwrite --
        the final, most complete record wins.
        """
        if self.directory is None:
            return None
        payload: Dict[str, object] = {
            "format": FLIGHT_FORMAT,
            "job_id": job_id,
            "reason": reason,
            "state": state,
            "error": error,
            "attempts": attempts,
            "dumped_at": time.time(),
        }
        if extra:
            payload.update(extra)
        payload["trace"] = trace or {}
        path = os.path.join(self.directory, f"flight-{job_id}.json")
        tmp_path = path + ".tmp"
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, path)
        except OSError:
            self.write_errors += 1
            return None
        self.dumps += 1
        self._evict(keep=path)
        return path

    def _evict(self, *, keep: str) -> None:
        """Drop the oldest flight records beyond ``max_files``.

        Best-effort like the writes: listing or unlink errors are
        swallowed (a record another process already removed, a permission
        hiccup) -- eviction runs again after the next dump.  The record
        just written (*keep*) is never evicted, even under mtime ties.
        """
        directory = self.directory
        if directory is None:
            return
        try:
            names = os.listdir(directory)
        except OSError:
            return
        records: List[Tuple[float, str]] = []
        for name in names:
            if not (name.startswith("flight-") and name.endswith(".json")):
                continue
            path = os.path.join(directory, name)
            if path == keep:
                continue
            try:
                records.append((os.path.getmtime(path), path))
            except OSError:
                continue
        # The just-written record occupies one slot.
        excess = len(records) + 1 - self.max_files
        if excess <= 0:
            return
        records.sort()
        for _, path in records[:excess]:
            try:
                os.remove(path)
            except OSError:
                continue
            self.evictions += 1
