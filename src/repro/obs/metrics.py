"""Process-local metrics: counters, gauges, histograms, Prometheus text.

A :class:`MetricsRegistry` is a plain in-process accumulator -- no locks,
no background threads, no sockets -- which is what makes it safe to
inherit across ``fork()`` and to live inside the fork-safety lint scope.
Cross-process aggregation is *explicit*: a forked worker takes a
:meth:`~MetricsRegistry.snapshot` at job start, computes the
:func:`diff_snapshots` delta at job end, and ships that delta over the
pipe it already reports on; the parent folds it in with
:meth:`~MetricsRegistry.merge`.  Counters and histograms add, gauges take
the most recent value.

Two registries matter in practice:

* the **process registry** (:func:`process_metrics`): bumped by the
  instrumented engine/solver/scheduler wherever they run, and the source
  of worker deltas;
* the serve queue's **own registry**: queue-side counters plus every
  merged worker delta -- what ``GET /metrics`` renders.

Rendering is the Prometheus text exposition format, deterministically
ordered (sorted metric names, sorted label sets) so scrapes diff cleanly;
:func:`parse_prometheus` is the inverse good enough for tests and the CI
smoke assertion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "diff_snapshots",
    "parse_prometheus",
    "process_metrics",
    "reset_process_metrics",
]

#: Histogram bucket upper bounds in seconds (Prometheus defaults, +inf
#: implicit).  Tuned for queue waits and solve stages: 5ms..60s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: A label set in canonical form: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]
Snapshot = Dict[str, object]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(
        '%s="%s"' % (k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in pairs
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Counters, gauges and histograms for one process (no locks)."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}
        # name -> labels -> [count, sum, bucket_counts...]; bucket bounds
        # are DEFAULT_BUCKETS for every histogram (uniform keeps merge
        # trivial and the text format honest).
        self._histograms: Dict[str, Dict[LabelKey, List[float]]] = {}

    # -- recording ------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Add *value* to a (monotonic) counter."""
        series = self._counters.setdefault(name, {})
        key = _label_key(labels)
        series[key] = series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge to its current value (last write wins on merge)."""
        self._gauges.setdefault(name, {})[_label_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one histogram observation."""
        series = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        cells = series.get(key)
        if cells is None:
            cells = [0.0, 0.0] + [0.0] * len(DEFAULT_BUCKETS)
            series[key] = cells
        cells[0] += 1.0
        cells[1] += value
        for index, bound in enumerate(DEFAULT_BUCKETS):
            if value <= bound:
                cells[2 + index] += 1.0

    def counter_value(self, name: str, **labels: str) -> float:
        """Current value of one counter series (0.0 when absent)."""
        return self._counters.get(name, {}).get(_label_key(labels), 0.0)

    # -- snapshots ------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """A JSON-safe copy of every series (labels as sorted pair lists)."""
        return {
            "counters": {
                name: [[list(map(list, key)), value] for key, value in
                       sorted(series.items())]
                for name, series in sorted(self._counters.items())
            },
            "gauges": {
                name: [[list(map(list, key)), value] for key, value in
                       sorted(series.items())]
                for name, series in sorted(self._gauges.items())
            },
            "histograms": {
                name: [[list(map(list, key)), list(cells)] for key, cells in
                       sorted(series.items())]
                for name, series in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Snapshot) -> None:
        """Fold a snapshot (usually a child-process delta) into this one."""
        counters = snapshot.get("counters")
        if isinstance(counters, dict):
            for name, rows in counters.items():
                series = self._counters.setdefault(str(name), {})
                for pairs, value in rows:
                    key = tuple((str(k), str(v)) for k, v in pairs)
                    series[key] = series.get(key, 0.0) + float(value)
        gauges = snapshot.get("gauges")
        if isinstance(gauges, dict):
            for name, rows in gauges.items():
                series = self._gauges.setdefault(str(name), {})
                for pairs, value in rows:
                    key = tuple((str(k), str(v)) for k, v in pairs)
                    series[key] = float(value)
        histograms = snapshot.get("histograms")
        if isinstance(histograms, dict):
            for name, rows in histograms.items():
                series = self._histograms.setdefault(str(name), {})
                for pairs, cells in rows:
                    key = tuple((str(k), str(v)) for k, v in pairs)
                    existing = series.get(key)
                    if existing is None:
                        series[key] = [float(c) for c in cells]
                    else:
                        for index, cell in enumerate(cells):
                            if index < len(existing):
                                existing[index] += float(cell)

    # -- rendering ------------------------------------------------------
    def render_prometheus(self) -> str:
        """The Prometheus text exposition format, deterministically ordered."""
        lines: List[str] = []
        for name in sorted(self._counters):
            lines.append(f"# TYPE {name} counter")
            for key in sorted(self._counters[name]):
                value = self._counters[name][key]
                lines.append(
                    f"{name}{_render_labels(key)} {_format_value(value)}"
                )
        for name in sorted(self._gauges):
            lines.append(f"# TYPE {name} gauge")
            for key in sorted(self._gauges[name]):
                value = self._gauges[name][key]
                lines.append(
                    f"{name}{_render_labels(key)} {_format_value(value)}"
                )
        for name in sorted(self._histograms):
            lines.append(f"# TYPE {name} histogram")
            for key in sorted(self._histograms[name]):
                cells = self._histograms[name][key]
                # observe() fills buckets cumulatively already (every
                # bound >= the value is bumped), matching the exposition
                # format's le-semantics directly.
                for index, bound in enumerate(DEFAULT_BUCKETS):
                    label = _render_labels(key, ("le", _format_value(bound)))
                    lines.append(
                        f"{name}_bucket{label} {_format_value(cells[2 + index])}"
                    )
                inf_label = _render_labels(key, ("le", "+Inf"))
                lines.append(
                    f"{name}_bucket{inf_label} {_format_value(cells[0])}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(key)} {_format_value(cells[1])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(key)} {_format_value(cells[0])}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def diff_snapshots(now: Snapshot, then: Snapshot) -> Snapshot:
    """Counter/histogram delta ``now - then``; gauges pass through as-is.

    This is how a long-lived pool worker ships per-job metrics without
    double counting: mark at job start, diff at job end, ship the delta.
    """

    def _series_map(snap: Snapshot, kind: str) -> Dict[str, Dict[LabelKey, object]]:
        result: Dict[str, Dict[LabelKey, object]] = {}
        table = snap.get(kind)
        if isinstance(table, dict):
            for name, rows in table.items():
                series: Dict[LabelKey, object] = {}
                for pairs, value in rows:
                    series[tuple((str(k), str(v)) for k, v in pairs)] = value
                result[str(name)] = series
        return result

    out_counters: Dict[str, List[object]] = {}
    then_counters = _series_map(then, "counters")
    for name, series in _series_map(now, "counters").items():
        rows: List[object] = []
        for key in sorted(series):
            base = then_counters.get(name, {}).get(key, 0.0)
            delta = float(series[key]) - float(base)  # type: ignore[arg-type]
            if delta:
                rows.append([[list(pair) for pair in key], delta])
        if rows:
            out_counters[name] = rows

    out_histograms: Dict[str, List[object]] = {}
    then_histograms = _series_map(then, "histograms")
    for name, series in _series_map(now, "histograms").items():
        rows = []
        for key in sorted(series):
            cells = series[key]
            assert isinstance(cells, list)
            base_cells = then_histograms.get(name, {}).get(key)
            if isinstance(base_cells, list):
                delta_cells = [
                    float(cell) - float(base_cells[index])
                    if index < len(base_cells)
                    else float(cell)
                    for index, cell in enumerate(cells)
                ]
            else:
                delta_cells = [float(cell) for cell in cells]
            if any(delta_cells):
                rows.append([[list(pair) for pair in key], delta_cells])
        if rows:
            out_histograms[name] = rows

    gauges = now.get("gauges")
    return {
        "counters": out_counters,
        "gauges": gauges if isinstance(gauges, dict) else {},
        "histograms": out_histograms,
    }


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text into ``{"name{labels}": value}`` (tests/CI).

    Comment lines are skipped; a malformed sample line raises, which is
    exactly what the smoke job wants from "parses as Prometheus text".
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {line!r}")
        samples[name_part] = float(value_part)
    return samples


# ----------------------------------------------------------------------
_PROCESS = MetricsRegistry()


def process_metrics() -> MetricsRegistry:
    """This process's ambient registry (always present, never ``None``)."""
    return _PROCESS


def reset_process_metrics() -> MetricsRegistry:
    """Swap in a fresh process registry (test isolation helper)."""
    global _PROCESS
    _PROCESS = MetricsRegistry()
    return _PROCESS
