"""End-to-end tracing: trace contexts, spans, span events, trace stores.

The tracing layer follows the :mod:`repro.deadline` / :mod:`repro.faults`
threading model exactly: one module-global :class:`ObsCollector` (or
``None``), installed at a trace root -- ``POST /jobs`` job execution,
:func:`repro.eval.campaign.detect_bug` or
:func:`~repro.eval.campaign.run_campaign` for direct runs -- and inherited
by forked workers through the copy-on-write memory snapshot.  Every
instrumented layer (BMC engine, work scheduler, CDCL solver, fault
injector) asks :func:`active` and does nothing when it returns ``None``,
so the disabled cost is a single module-global load and an ``is None``
branch.

Fork propagation falls out of the memory model: a cube worker forked while
a ``dist.solve`` span is open inherits the collector *with that span on
the stack*, so the worker's first span parents under it and carries the
parent's trace id.  The worker then ships its completed spans back over
whatever pipe it already reports results on (the scheduler's results
queue, the campaign pool's return value, the serve progress queue) and the
parent absorbs them with :meth:`ObsCollector.absorb` -- span ids are
prefixed with the recording pid, so batches from any number of children
merge without collisions.

No locks anywhere: collectors are single-writer by construction (one
process, one logical job at a time), which is what lets this module sit
inside the fork-safety lint scope.  The one caveat is the thread-backed
serve queue (``use_processes=False``) with more than one worker, where
concurrent jobs share the module global; spans still render, but may
attribute to the wrong job's batch.  The process-backed default is exact.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ObsCollector",
    "SpanHandle",
    "TraceContext",
    "TraceStore",
    "active",
    "clear",
    "enabled",
    "event",
    "install",
    "last_trace",
    "new_trace_id",
    "set_enabled",
    "span",
    "start_trace",
]

#: One recorded span: ids, name, monotonic start/end, free-form attributes.
SpanDict = Dict[str, object]
#: One span event: monotonic timestamp, name, owning span id, attributes.
EventDict = Dict[str, object]

_TRACE_SEQ = 0


def new_trace_id() -> str:
    """A process-unique trace id (pid + per-process sequence, no RNG)."""
    global _TRACE_SEQ
    _TRACE_SEQ += 1
    return f"t{os.getpid():08x}{_TRACE_SEQ:06d}"


@dataclass(frozen=True)
class TraceContext:
    """The wire-safe identity of a trace position: trace id + parent span.

    This is what crosses explicit process boundaries (job rows, shipped
    batches); the richer :class:`ObsCollector` crosses *fork* boundaries
    implicitly via the memory snapshot.
    """

    trace_id: str
    parent_span_id: Optional[str] = None

    def to_json_dict(self) -> Dict[str, object]:
        return {"trace_id": self.trace_id, "parent_span_id": self.parent_span_id}


class ObsCollector:
    """Per-trace span/event sink; one per process per logical job.

    Spans and events are bounded (oldest events are dropped ring-style,
    span recording stops at the cap) so a pathological run cannot grow
    memory without bound.  Span ids embed ``os.getpid()`` *at record
    time*, so spans recorded by a forked child never collide with spans
    the parent records after the fork.
    """

    __slots__ = (
        "trace_id",
        "base_epoch",
        "spans",
        "events",
        "max_spans",
        "max_events",
        "dropped_events",
        "_stack",
        "_seq",
    )

    def __init__(
        self,
        trace_id: Optional[str] = None,
        *,
        max_spans: int = 4096,
        max_events: int = 2048,
    ) -> None:
        self.trace_id: str = trace_id or new_trace_id()
        self.base_epoch: float = time.time() - time.monotonic()
        self.spans: List[SpanDict] = []
        self.events: List[EventDict] = []
        self.max_spans = max_spans
        self.max_events = max_events
        self.dropped_events = 0
        self._stack: List[str] = []
        self._seq = 0

    # -- recording ------------------------------------------------------
    def begin(
        self, name: str, attrs: Optional[Dict[str, object]] = None
    ) -> SpanDict:
        """Open a span as a child of the innermost open span."""
        self._seq += 1
        span_id = f"{os.getpid():x}.{self._seq}"
        record: SpanDict = {
            "span_id": span_id,
            "parent_id": self._stack[-1] if self._stack else None,
            "name": name,
            "start": time.monotonic(),
            "end": None,
            "attrs": dict(attrs) if attrs else {},
        }
        self._stack.append(span_id)
        if len(self.spans) < self.max_spans:
            self.spans.append(record)
        return record

    def end(self, record: SpanDict, **attrs: object) -> None:
        """Close *record* (and anything left open beneath it)."""
        record["end"] = time.monotonic()
        if attrs:
            merged = record["attrs"]
            if isinstance(merged, dict):
                merged.update(attrs)
        span_id = record["span_id"]
        if span_id in self._stack:
            while self._stack:
                popped = self._stack.pop()
                if popped == span_id:
                    break

    def event(self, name: str, attrs: Optional[Dict[str, object]] = None) -> None:
        """Record a point-in-time event under the innermost open span."""
        if len(self.events) >= self.max_events:
            del self.events[0]
            self.dropped_events += 1
        self.events.append(
            {
                "t": time.monotonic(),
                "name": name,
                "span_id": self._stack[-1] if self._stack else None,
                "attrs": dict(attrs) if attrs else {},
            }
        )

    # -- shipping -------------------------------------------------------
    def mark(self) -> Tuple[int, int]:
        """Snapshot (span, event) counts; pair with :meth:`batch_since`."""
        return (len(self.spans), len(self.events))

    def batch_since(self, mark: Tuple[int, int]) -> Dict[str, object]:
        """Completed spans and events recorded since *mark*, JSON-safe.

        Open spans are withheld (their closing end will ship with a later
        batch once the parent closes them), so a batch is always a set of
        finished measurements.
        """
        spans = [s for s in self.spans[mark[0] :] if s["end"] is not None]
        return {
            "trace_id": self.trace_id,
            "spans": spans,
            "events": self.events[mark[1] :],
        }

    def absorb(self, batch: Dict[str, object]) -> None:
        """Merge a child's shipped batch into this collector.

        Child span ids are pid-prefixed and child parent ids point either
        at the child's own spans or at spans inherited from this very
        collector, so a plain append reconstructs the tree.
        """
        spans = batch.get("spans")
        if isinstance(spans, list):
            room = self.max_spans - len(self.spans)
            if room > 0:
                self.spans.extend(spans[:room])
        events = batch.get("events")
        if isinstance(events, list):
            for entry in events:
                if len(self.events) >= self.max_events:
                    del self.events[0]
                    self.dropped_events += 1
                self.events.append(entry)

    # -- views ----------------------------------------------------------
    def context(self) -> TraceContext:
        return TraceContext(
            trace_id=self.trace_id,
            parent_span_id=self._stack[-1] if self._stack else None,
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "base_epoch": self.base_epoch,
            "spans": list(self.spans),
            "events": list(self.events),
            "dropped_events": self.dropped_events,
        }


# ----------------------------------------------------------------------
# Module-global installation (the faults._INJECTOR pattern).

_COLLECTOR: Optional[ObsCollector] = None
_LAST: Optional[ObsCollector] = None
_ENABLED = True


def install(collector: ObsCollector) -> ObsCollector:
    """Install *collector* as the process's active trace sink."""
    global _COLLECTOR
    _COLLECTOR = collector
    return collector


def clear() -> Optional[ObsCollector]:
    """Uninstall and stash the collector; :func:`last_trace` keeps it."""
    global _COLLECTOR, _LAST
    collector, _COLLECTOR = _COLLECTOR, None
    if collector is not None:
        _LAST = collector
    return collector


def active() -> Optional[ObsCollector]:
    """The installed collector, or ``None`` when tracing is off."""
    return _COLLECTOR


def last_trace() -> Optional[ObsCollector]:
    """The most recently cleared collector (how direct runs read back)."""
    return _LAST


def set_enabled(flag: bool) -> bool:
    """Globally enable/disable trace creation (:func:`start_trace`).

    Disabling does *not* tear down an installed collector; it only makes
    the entry points (`detect_bug`, `run_campaign`, job execution) skip
    creating one, which is the observability-off mode the byte-identical
    record guarantee is tested against.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = flag
    return previous


def enabled() -> bool:
    """Whether trace creation is globally enabled (see :func:`set_enabled`)."""
    return _ENABLED


def start_trace(trace_id: Optional[str] = None) -> Optional[ObsCollector]:
    """Create and install a collector unless tracing is disabled."""
    if not _ENABLED:
        return None
    return install(ObsCollector(trace_id))


class SpanHandle:
    """Context manager that closes its span on exit; see :func:`span`."""

    __slots__ = ("_collector", "_span")

    def __init__(
        self, collector: Optional[ObsCollector], record: Optional[SpanDict]
    ) -> None:
        self._collector = collector
        self._span = record

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span (no-op when tracing is off)."""
        if self._span is not None:
            merged = self._span["attrs"]
            if isinstance(merged, dict):
                merged.update(attrs)

    def close(self, **attrs: object) -> None:
        """Close the span now (idempotent; for non-``with`` call sites)."""
        if attrs:
            self.set(**attrs)
        if self._collector is not None and self._span is not None:
            self._collector.end(self._span)
            self._span = None

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


_NULL_SPAN = SpanHandle(None, None)


def span(name: str, **attrs: object) -> SpanHandle:
    """Open a span on the active collector; a shared no-op when off."""
    collector = _COLLECTOR
    if collector is None:
        return _NULL_SPAN
    return SpanHandle(collector, collector.begin(name, attrs or None))


def event(name: str, **attrs: object) -> None:
    """Record a span event on the active collector, if any."""
    collector = _COLLECTOR
    if collector is not None:
        collector.event(name, attrs or None)


# ----------------------------------------------------------------------
class TraceStore:
    """Server-side per-job trace aggregation (the ``/jobs/<id>/trace`` view).

    The serve queue records its own spans (queue-wait, lint, cache
    read/write, attempts) directly into the store and *re-roots* batches
    shipped up from worker processes: a shipped span whose parent is
    unknown to the store attaches under the span the batch arrived for
    (the running attempt), which is what stitches a forked worker's
    subtree into the job's trace under the job's trace id.

    Bounded twice over -- per-job span/event caps plus a job cap with
    oldest-first eviction -- so a long-lived server cannot grow without
    bound.  Only ever touched from the queue's event-loop thread.
    """

    def __init__(
        self,
        *,
        max_jobs: int = 256,
        max_spans: int = 2048,
        max_events: int = 1024,
    ) -> None:
        self.max_jobs = max_jobs
        self.max_spans = max_spans
        self.max_events = max_events
        self._jobs: Dict[str, Dict[str, object]] = {}
        self._seq = 0

    def ensure(self, job_id: str, trace_id: str) -> None:
        if job_id in self._jobs:
            return
        while len(self._jobs) >= self.max_jobs:
            oldest = next(iter(self._jobs))
            del self._jobs[oldest]
        self._jobs[job_id] = {
            "trace_id": trace_id,
            "base_epoch": time.time() - time.monotonic(),
            "spans": [],
            "events": [],
            "dropped_events": 0,
        }

    def known(self, job_id: str) -> bool:
        return job_id in self._jobs

    # -- queue-side spans ----------------------------------------------
    def add_span(
        self,
        job_id: str,
        name: str,
        start: float,
        end: Optional[float],
        *,
        parent_id: Optional[str] = None,
        **attrs: object,
    ) -> Optional[str]:
        """Record a queue-side span; returns its id.

        Pass ``end=None`` to open the span (e.g. a dispatch attempt whose
        worker batches must attach to it while it is still running) and
        settle it later with :meth:`close_span`.
        """
        entry = self._jobs.get(job_id)
        if entry is None:
            return None
        spans = entry["spans"]
        assert isinstance(spans, list)
        if len(spans) >= self.max_spans:
            return None
        self._seq += 1
        span_id = f"q.{self._seq}"
        spans.append(
            {
                "span_id": span_id,
                "parent_id": parent_id,
                "name": name,
                "start": start,
                "end": end,
                "attrs": dict(attrs),
            }
        )
        return span_id

    def close_span(
        self,
        job_id: str,
        span_id: Optional[str],
        end: float,
        **attrs: object,
    ) -> None:
        """Settle an open span recorded with ``add_span(..., end=None)``."""
        entry = self._jobs.get(job_id)
        if entry is None or span_id is None:
            return
        spans = entry["spans"]
        assert isinstance(spans, list)
        for record in reversed(spans):
            if record.get("span_id") == span_id:
                record["end"] = end
                if attrs:
                    merged = record.get("attrs")
                    if isinstance(merged, dict):
                        merged.update(attrs)
                return

    def add_event(
        self,
        job_id: str,
        name: str,
        *,
        span_id: Optional[str] = None,
        **attrs: object,
    ) -> None:
        entry = self._jobs.get(job_id)
        if entry is None:
            return
        events = entry["events"]
        assert isinstance(events, list)
        if len(events) >= self.max_events:
            del events[0]
            dropped = entry.get("dropped_events", 0)
            entry["dropped_events"] = int(dropped) + 1 if isinstance(dropped, int) else 1
        events.append(
            {
                "t": time.monotonic(),
                "name": name,
                "span_id": span_id,
                "attrs": dict(attrs),
            }
        )

    # -- worker batches -------------------------------------------------
    def absorb(
        self,
        job_id: str,
        batch: Dict[str, object],
        *,
        attach_to: Optional[str] = None,
    ) -> None:
        """Merge a worker-shipped batch into the job's trace.

        Spans whose parent id is not present (neither in the batch nor
        already stored) are re-rooted under *attach_to* -- the worker's
        own root becomes a child of the queue's attempt span, and the
        worker subtree below it comes along untouched.
        """
        entry = self._jobs.get(job_id)
        if entry is None:
            return
        spans = entry["spans"]
        events = entry["events"]
        assert isinstance(spans, list) and isinstance(events, list)
        known_ids = {s["span_id"] for s in spans}
        incoming = batch.get("spans")
        if isinstance(incoming, list):
            batch_ids = {
                s.get("span_id") for s in incoming if isinstance(s, dict)
            }
            for raw in incoming:
                if not isinstance(raw, dict) or len(spans) >= self.max_spans:
                    continue
                record = dict(raw)
                parent = record.get("parent_id")
                if parent is None or (
                    parent not in batch_ids and parent not in known_ids
                ):
                    record["parent_id"] = attach_to
                spans.append(record)
        incoming_events = batch.get("events")
        if isinstance(incoming_events, list):
            for raw in incoming_events:
                if not isinstance(raw, dict):
                    continue
                if len(events) >= self.max_events:
                    del events[0]
                events.append(dict(raw))

    # -- views ----------------------------------------------------------
    def to_json_dict(self, job_id: str) -> Optional[Dict[str, object]]:
        entry = self._jobs.get(job_id)
        if entry is None:
            return None
        spans = entry["spans"]
        events = entry["events"]
        assert isinstance(spans, list) and isinstance(events, list)
        return {
            "job_id": job_id,
            "trace_id": entry["trace_id"],
            "base_epoch": entry["base_epoch"],
            "spans": list(spans),
            "events": list(events),
            "dropped_events": entry.get("dropped_events", 0),
        }

    def job_ids(self) -> List[str]:
        return list(self._jobs)


def sum_self_seconds(spans: Iterable[SpanDict]) -> Dict[str, List[float]]:
    """Aggregate per-name [count, total, self] seconds over *spans*.

    Self time is a span's duration minus the durations of its direct
    children -- the "where did the time go" decomposition the trace
    renderer prints.  Open spans (no end) are skipped.
    """
    closed = [s for s in spans if isinstance(s.get("end"), float)]
    child_seconds: Dict[object, float] = {}
    for record in closed:
        parent = record.get("parent_id")
        if parent is not None:
            start = record["start"]
            end = record["end"]
            assert isinstance(start, float) and isinstance(end, float)
            child_seconds[parent] = child_seconds.get(parent, 0.0) + (end - start)
    table: Dict[str, List[float]] = {}
    for record in closed:
        start = record["start"]
        end = record["end"]
        assert isinstance(start, float) and isinstance(end, float)
        total = end - start
        own = max(0.0, total - child_seconds.get(record["span_id"], 0.0))
        name = str(record.get("name"))
        row = table.setdefault(name, [0.0, 0.0, 0.0])
        row[0] += 1.0
        row[1] += total
        row[2] += own
    return table
