"""Unified observability: tracing, fork-safe metrics, telemetry, flight.

Stdlib-only and lock-free by design -- the whole package sits inside the
fork-safety lint scope, because its module-global state (the active
:class:`~repro.obs.trace.ObsCollector`, the process
:class:`~repro.obs.metrics.MetricsRegistry`, the installed
:class:`~repro.obs.telemetry.TelemetrySink`) is inherited by every forked
cube/campaign/serve worker exactly like :data:`repro.faults._INJECTOR`.

The four pieces:

* :mod:`repro.obs.trace` -- trace contexts, spans, span events, the
  server-side per-job :class:`~repro.obs.trace.TraceStore`;
* :mod:`repro.obs.metrics` -- counters/gauges/histograms with explicit
  child-snapshot merge and Prometheus text rendering;
* :mod:`repro.obs.telemetry` -- live solver search heartbeats (conflicts,
  propagations/s, trail depth, LBD histogram, restart cadence) sampled
  off the solver's cold branches and streamed up to
  ``GET /jobs/<id>/telemetry``;
* :mod:`repro.obs.flight` -- the failure flight recorder (bounded JSON
  artifacts for failed/quarantined/deadline-expired jobs).

Instrumented layers use the module-level helpers (:func:`active`,
:func:`span`, :func:`event`, :func:`process_metrics`,
:func:`telemetry_active`): one global load and an ``is None`` branch when
observability is off, nothing in ``# hot-loop`` regions ever (solver
counters are sampled at the existing per-call, per-bound and cold-branch
boundaries only).
"""

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    MetricsRegistry,
    diff_snapshots,
    parse_prometheus,
    process_metrics,
    reset_process_metrics,
)
from repro.obs.telemetry import (
    TelemetrySink,
    active as telemetry_active,
    clear as clear_telemetry,
    enabled as telemetry_enabled,
    install as install_telemetry,
    set_enabled as set_telemetry_enabled,
)
from repro.obs.trace import (
    ObsCollector,
    SpanHandle,
    TraceContext,
    TraceStore,
    active,
    clear,
    enabled,
    event,
    install,
    last_trace,
    new_trace_id,
    set_enabled,
    span,
    start_trace,
    sum_self_seconds,
)

__all__ = [
    "FlightRecorder",
    "MetricsRegistry",
    "ObsCollector",
    "SpanHandle",
    "TelemetrySink",
    "TraceContext",
    "TraceStore",
    "active",
    "clear",
    "clear_telemetry",
    "diff_snapshots",
    "enabled",
    "event",
    "install",
    "install_telemetry",
    "last_trace",
    "new_trace_id",
    "parse_prometheus",
    "process_metrics",
    "reset_process_metrics",
    "set_enabled",
    "set_telemetry_enabled",
    "span",
    "start_trace",
    "sum_self_seconds",
    "telemetry_active",
    "telemetry_enabled",
]
