"""Live solver search telemetry: heartbeats sampled off cold branches.

PR 8's spans answer "where did the time go" *after* a job finishes; this
module answers "what is the CDCL search doing *right now*".  The solver
samples a heartbeat -- conflicts, propagations/s over a sliding window,
trail depth, decision level, learned-DB size, arena occupancy, LBD
histogram, restart cadence -- at the cold branches it already owns
(restart, DB-reduce, deadline-poll; the ``# hot-loop`` propagate/analyse
regions are never touched), the BMC engine stamps each heartbeat with the
bound being searched and adds one summary heartbeat per completed bound,
and the serving layer ships them up the same channel the span batches
ride (tagged ``__telemetry__`` alongside ``__obs__``) into a per-job ring
buffer behind ``GET /jobs/<id>/telemetry``.

Design rules, inherited from :mod:`repro.obs.trace`:

* **Module-global sink, fork-inherited.**  ``install()`` puts one
  :class:`TelemetrySink` in a module global; forked workers inherit it
  through the fork memory snapshot and ship their heartbeats home with
  :meth:`TelemetrySink.batch_since` (the parent absorbs them).  The
  disabled cost at every sampling site is one module-global load plus an
  ``is None`` branch.
* **Read-only sampling.**  A heartbeat is built purely from counters the
  solver already maintains; nothing observable feeds back into the
  search, so results and :class:`~repro.eval.campaign.BugDetectionRecord`
  payloads are byte-identical with telemetry on or off.
* **Bounded everywhere.**  The sink keeps at most ``max_heartbeats``
  recent heartbeats (older ones are dropped and counted), and sampling is
  throttled by :meth:`TelemetrySink.due` so a restart storm cannot turn
  the telemetry layer itself into the bottleneck.

Heartbeat counters (``conflicts``/``propagations``/...) are the solver
instance's *lifetime* totals, so a sequence of heartbeats from one reused
incremental solver -- the BMC engine's normal regime -- is monotonically
non-decreasing across bounds.  Heartbeats from distinct processes carry
their ``pid`` and interleave without any cross-process ordering claim.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_MAX_HEARTBEATS",
    "DEFAULT_MIN_INTERVAL_SECONDS",
    "DEFAULT_FLUSH_INTERVAL_SECONDS",
    "TelemetrySink",
    "install",
    "clear",
    "active",
    "set_enabled",
    "enabled",
]

#: Ring-buffer bound of one sink: heartbeats beyond this drop the oldest.
DEFAULT_MAX_HEARTBEATS = 512
#: Minimum seconds between sampled heartbeats (:meth:`TelemetrySink.due`).
DEFAULT_MIN_INTERVAL_SECONDS = 0.05
#: Minimum seconds between ``on_flush`` shipments of pending heartbeats.
DEFAULT_FLUSH_INTERVAL_SECONDS = 0.25
#: Samples kept in the propagations/s sliding window.
_PPS_WINDOW = 16


class TelemetrySink:
    """A bounded heartbeat ring with sliding-window throughput.

    ``on_flush`` (optional) receives batches of newly recorded heartbeats
    at most every ``flush_interval_seconds`` -- the serving layer installs
    a callback that ships them over the job progress queue, which is what
    makes ``GET /jobs/<id>/telemetry`` live *during* a solve rather than a
    post-mortem.  Forked workers that ship heartbeats home explicitly via
    :meth:`batch_since` call :meth:`detach_flush` first, so a heartbeat
    never travels both channels.
    """

    __slots__ = (
        "max_heartbeats",
        "min_interval_seconds",
        "flush_interval_seconds",
        "heartbeats",
        "dropped",
        "flush_errors",
        "_total",
        "_flushed_total",
        "_seq",
        "_last_sample",
        "_last_flush",
        "_window",
        "_context",
        "_on_flush",
    )

    def __init__(
        self,
        *,
        max_heartbeats: int = DEFAULT_MAX_HEARTBEATS,
        min_interval_seconds: float = DEFAULT_MIN_INTERVAL_SECONDS,
        on_flush: Optional[Callable[[List[dict]], None]] = None,
        flush_interval_seconds: float = DEFAULT_FLUSH_INTERVAL_SECONDS,
    ) -> None:
        if max_heartbeats < 1:
            raise ValueError("max_heartbeats must be at least 1")
        self.max_heartbeats = max_heartbeats
        self.min_interval_seconds = min_interval_seconds
        self.flush_interval_seconds = flush_interval_seconds
        #: Most recent heartbeats, oldest first (bounded ring).
        self.heartbeats: List[dict] = []
        #: Heartbeats evicted from the ring (recorded - retained).
        self.dropped = 0
        #: ``on_flush`` callbacks that raised (swallowed, never re-raised).
        self.flush_errors = 0
        self._total = 0
        self._flushed_total = 0
        self._seq = 0
        self._last_sample = 0.0
        self._last_flush = 0.0
        self._window: List[Tuple[float, int]] = []
        self._context: Dict[str, object] = {}
        self._on_flush = on_flush

    # -- sampling ------------------------------------------------------
    def due(self) -> bool:
        """Whether enough wall clock passed to sample another heartbeat.

        The solver's cold branches guard their (cheap, but not free)
        heartbeat construction with this, so a restart storm samples at a
        bounded rate instead of once per restart.
        """
        return (
            time.monotonic() - self._last_sample >= self.min_interval_seconds
        )

    def record(self, site: str, **fields: object) -> dict:
        """Record one heartbeat sampled at *site* and return it.

        ``fields`` are raw solver counters (``conflicts``,
        ``propagations``, ``trail_depth``, ...).  The sink stamps sequence
        number, pid, wall-clock time and the ambient context (e.g. the
        BMC bound being searched), and derives ``pps`` -- propagations
        per second over a sliding window of recent heartbeats.  The
        window resets itself when ``propagations`` decreases, i.e. when a
        fresh solver instance starts reporting.
        """
        now = time.monotonic()
        heartbeat: dict = {
            "seq": self._seq,
            "pid": os.getpid(),
            "t": time.time(),
            "site": site,
        }
        heartbeat.update(self._context)
        heartbeat.update(fields)
        propagations = fields.get("propagations")
        if isinstance(propagations, int):
            window = self._window
            if window and propagations < window[-1][1]:
                del window[:]
            window.append((now, propagations))
            if len(window) > _PPS_WINDOW:
                del window[0]
            span = window[-1][0] - window[0][0]
            if span > 0:
                heartbeat["pps"] = (window[-1][1] - window[0][1]) / span
        self._seq += 1
        self._last_sample = now
        self._append(heartbeat)
        self.maybe_flush()
        return heartbeat

    def _append(self, heartbeat: dict) -> None:
        self.heartbeats.append(heartbeat)
        self._total += 1
        if len(self.heartbeats) > self.max_heartbeats:
            del self.heartbeats[0]
            self.dropped += 1

    # -- context -------------------------------------------------------
    def set_context(self, **fields: object) -> None:
        """Merge *fields* into every subsequent heartbeat (``None`` drops).

        The BMC engine uses this to stamp solver heartbeats with the
        bound currently being searched.
        """
        for key, value in fields.items():
            if value is None:
                self._context.pop(key, None)
            else:
                self._context[key] = value

    # -- fork shipping -------------------------------------------------
    def mark(self) -> int:
        """Position token for :meth:`batch_since` (count recorded so far)."""
        return self._total

    def batch_since(self, mark: int) -> List[dict]:
        """Heartbeats recorded after *mark* that are still retained.

        A forked worker records its own heartbeats on the inherited sink
        copy and ships ``batch_since(mark)`` home with its result, the
        same protocol span batches use.
        """
        new = self._total - mark
        if new <= 0:
            return []
        return list(self.heartbeats[max(0, len(self.heartbeats) - new) :])

    def absorb(self, batch: List[dict]) -> None:
        """Merge a shipped worker batch into this sink's ring."""
        for heartbeat in batch:
            self._append(heartbeat)
        self.maybe_flush()

    # -- flushing ------------------------------------------------------
    def detach_flush(self) -> None:
        """Drop the flush callback (forked workers ship explicitly)."""
        self._on_flush = None

    def maybe_flush(self, force: bool = False) -> None:
        """Ship pending heartbeats through ``on_flush`` if one is due.

        Callback exceptions are counted and swallowed: telemetry delivery
        must never fail a solve.
        """
        if self._on_flush is None:
            return
        pending = self._total - self._flushed_total
        if pending <= 0:
            return
        now = time.monotonic()
        if not force and now - self._last_flush < self.flush_interval_seconds:
            return
        batch = list(self.heartbeats[max(0, len(self.heartbeats) - pending) :])
        self._flushed_total = self._total
        self._last_flush = now
        try:
            self._on_flush(batch)
        except Exception:
            self.flush_errors += 1

    def flush(self) -> None:
        """Ship everything pending immediately (job teardown path)."""
        self.maybe_flush(force=True)

    # -- inspection ----------------------------------------------------
    def snapshot(self) -> List[dict]:
        """A copy of the retained heartbeats, oldest first."""
        return list(self.heartbeats)


# ----------------------------------------------------------------------
# Module-global sink (fork-inherited), mirroring repro.obs.trace.
# ----------------------------------------------------------------------
_SINK: Optional[TelemetrySink] = None
_ENABLED = True


def install(sink: Optional[TelemetrySink] = None) -> TelemetrySink:
    """Install *sink* (or a fresh default one) as the process sink."""
    global _SINK
    _SINK = sink if sink is not None else TelemetrySink()
    return _SINK


def clear() -> None:
    """Uninstall the process sink (sampling sites go back to no-ops)."""
    global _SINK
    _SINK = None


def active() -> Optional[TelemetrySink]:
    """The installed sink, or ``None`` when absent or globally disabled."""
    if not _ENABLED:
        return None
    return _SINK


def set_enabled(value: bool) -> None:
    """Globally enable/disable telemetry without touching the sink."""
    global _ENABLED
    _ENABLED = bool(value)


def enabled() -> bool:
    """Whether telemetry is globally enabled (default ``True``)."""
    return _ENABLED
