"""The verification campaign over the sixteen design versions.

For every seeded bug the campaign runs the Symbolic QED features (baseline
EDDI-V, the QED-CF enhancement, duplication using memory, Single-I) and the
industrial-flow techniques (DST, OCS-FV, CRS) and records which of them
detect it.  Figs. 8, 9 and 10 and Tables 2 and 3 are computed from these
records.

Because the SAT backend here is pure Python, the default campaign runs each
bug against its buggy version with a bug-specific *focus set* of opcodes (an
environment constraint on the stimulus, see
:func:`repro.qed.qed_module.build_qed_module`) and a bound just large enough
for the counterexample.  ``CampaignConfig(exhaustive=True)`` removes the
focus sets and runs every feature on every version -- the faithful but slow
configuration.

The per-bug jobs are completely independent -- each builds its own design,
QED module and solver -- so :func:`run_campaign` can fan them out over a
``ProcessPoolExecutor`` (``workers=N``).  The merge is deterministic: records
come back in the order the bugs were selected regardless of which worker
finished first, so a parallel campaign produces the same records as a serial
one (modulo wall-clock fields).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.analysis.netlist_lint import check_version_design
from repro.deadline import Deadline
from repro.dist.scheduler import SplitConfig
from repro.isa.arch import ArchParams, TINY_PROFILE
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.indverif.crs import CRSConfig, ConstrainedRandomSim
from repro.indverif.dst import default_directed_suite
from repro.indverif.ocsfv import OCSFVChecker
from repro.qed.eddiv import QEDMode
from repro.qed.harness import SymbolicQED
from repro.qed.single_i import SingleIChecker
from repro.uarch.bugs import BUGS, Bug, bug_by_id
from repro.uarch.versions import ALL_VERSIONS, DesignVersion

#: Per-bug focus sets and bounds: the instructions the BMC stimulus is allowed
#: to use when hunting that bug, plus the unrolling depth.  These model the
#: per-block runs a verification engineer would launch; they never weaken the
#: checked property.
FOCUS_SETS: Dict[str, Dict[str, object]] = {
    "wrport_collision": {
        "mode": QEDMode.EDDIV,
        "opcodes": ["LDI", "MOV", "INC", "ADD"],
        "bound": 8,
    },
    "alu_after_load": {
        "mode": QEDMode.EDDIV,
        "opcodes": ["LDI", "ADD", "XOR", "LDA", "STA"],
        "bound": 8,
    },
    "consecutive_sub": {
        "mode": QEDMode.EDDIV,
        "opcodes": ["LDI", "SUB", "INC"],
        "bound": 8,
    },
    "st_ld_stale": {
        "mode": QEDMode.EDDIV,
        "opcodes": ["LDI", "LDA", "STA", "MOV"],
        "bound": 8,
    },
    "inplace_after_store": {
        "mode": QEDMode.EDDIV,
        "opcodes": ["LDI", "INC", "STA", "MOV"],
        "bound": 8,
    },
    "bz_flag_misread": {
        "mode": QEDMode.EDDIV_CF,
        "opcodes": ["LDI", "ADD", "CMPI", "BZ"],
        "bound": 8,
    },
    "bnz_carry_confusion": {
        "mode": QEDMode.EDDIV_CF,
        "opcodes": ["LDI", "ADD", "CMPI", "BNZ"],
        "bound": 8,
    },
    "jr_target_offby1": {
        "mode": QEDMode.EDDIV_CF,
        "opcodes": ["LDI", "INC", "ADD", "CMPI", "JR"],
        "bound": 8,
    },
    "beq_high_inverted": {
        "mode": QEDMode.EDDIV_CF,
        "opcodes": ["LDI", "INC", "ADD", "CMPI", "BEQ"],
        "bound": 8,
    },
    "ldil_after_load": {
        "mode": QEDMode.EDDIV_MEM,
        "opcodes": None,
        "bound": 9,
    },
    "sra_zero_fill": {"mode": "single_i", "opcodes": ["SRA"], "bound": 2},
    "cmpi_carry_spec": {"mode": "single_i", "opcodes": ["CMPI"], "bound": 2},
    "ror_direction": {"mode": "single_i", "opcodes": ["ROR"], "bound": 2},
    "satadd_clamp": {"mode": "single_i", "opcodes": ["SATADD"], "bound": 2},
}

#: Priority order used to attribute a bug to the Symbolic QED feature that
#: detects it (Fig. 10): baseline first, then the enhancements, then Single-I.
FEATURE_PRIORITY: Tuple[str, ...] = ("eddiv", "qed_cf", "qed_mem", "single_i")


@dataclass
class CampaignConfig:
    """Configuration of a campaign run.

    ``split`` routes every QED BMC query through the distributed proof
    engine (cube-and-conquer + portfolio, see :mod:`repro.dist`); it
    composes with ``run_campaign(workers=N)``: the pool fans out over bugs,
    and each bug's hard query can additionally fan out over cubes.  Leave it
    ``None`` inside an outer process pool unless cores are plentiful.

    ``preprocess`` and ``max_conflicts_per_query`` forward to
    :meth:`repro.qed.harness.SymbolicQED.check` (formula reduction on/off
    and the per-bound solver budget -- an expired budget makes the QED
    verdict *non-definitive*, see :attr:`BugDetectionRecord.qed_definitive`).
    """

    arch: ArchParams = TINY_PROFILE
    bug_ids: Optional[Sequence[str]] = None
    run_industrial_flow: bool = True
    run_directed_tests: bool = True
    crs_config: CRSConfig = field(default_factory=CRSConfig)
    exhaustive: bool = False
    extra_bound: int = 0
    split: Optional[SplitConfig] = None
    preprocess: bool = True
    max_conflicts_per_query: Optional[int] = None

    # -- canonical serialization ---------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """Canonical, versioned JSON form (defaults explicit, tuples as
        lists, nested configs through their own canonical forms).

        ``bug_ids`` keeps its order -- it selects *which* jobs run and in
        what order, it does not change any single job's meaning (per-job
        cache keys are built by :mod:`repro.serve.keys` and never include
        it).
        """
        return {
            "format": 1,
            "arch": self.arch.to_json_dict(),
            "bug_ids": (
                None if self.bug_ids is None else [str(b) for b in self.bug_ids]
            ),
            "run_industrial_flow": self.run_industrial_flow,
            "run_directed_tests": self.run_directed_tests,
            "crs_config": self.crs_config.to_json_dict(),
            "exhaustive": self.exhaustive,
            "extra_bound": self.extra_bound,
            "split": None if self.split is None else self.split.to_json_dict(),
            "preprocess": self.preprocess,
            "max_conflicts_per_query": self.max_conflicts_per_query,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "CampaignConfig":
        """Inverse of :meth:`to_json_dict` (validates the format tag)."""
        if data.get("format", 1) != 1:
            raise ValueError(
                f"unsupported CampaignConfig format {data.get('format')!r}"
            )
        arch = data.get("arch")
        crs = data.get("crs_config")
        split = data.get("split")
        bug_ids = data.get("bug_ids")
        budget = data.get("max_conflicts_per_query")
        return cls(
            arch=TINY_PROFILE if arch is None else ArchParams.from_json_dict(arch),
            bug_ids=None if bug_ids is None else [str(b) for b in bug_ids],
            run_industrial_flow=bool(data.get("run_industrial_flow", True)),
            run_directed_tests=bool(data.get("run_directed_tests", True)),
            crs_config=(
                CRSConfig() if crs is None else CRSConfig.from_json_dict(crs)
            ),
            exhaustive=bool(data.get("exhaustive", False)),
            extra_bound=int(data.get("extra_bound", 0)),
            split=None if split is None else SplitConfig.from_json_dict(split),
            preprocess=bool(data.get("preprocess", True)),
            max_conflicts_per_query=None if budget is None else int(budget),
        )


@dataclass
class BugDetectionRecord:
    """Everything the campaign measured about one bug."""

    bug_id: str
    version_name: str
    detected_by: Dict[str, bool] = field(default_factory=dict)
    qed_runtime_seconds: float = 0.0
    qed_counterexample_cycles: int = 0
    qed_counterexample_instructions: int = 0
    qed_solver_conflicts: int = 0
    qed_solver_propagations: int = 0
    #: Wall-clock inside the SAT solver (excludes encoding/preprocessing);
    #: ``qed_solver_propagations / qed_solve_seconds`` is the run's
    #: propagation throughput.
    qed_solve_seconds: float = 0.0
    qed_learned_clauses: int = 0
    qed_learned_clauses_reused: int = 0
    qed_variables_eliminated: int = 0
    qed_clauses_subsumed: int = 0
    qed_preprocess_seconds: float = 0.0
    #: Distributed proof engine work (zero when the run was sequential).
    qed_cubes_solved: int = 0
    qed_cubes_resplit: int = 0
    qed_clauses_shared: int = 0
    single_i_runtime_seconds: float = 0.0
    crs_detected: bool = False
    ocsfv_detected: bool = False
    dst_detected: bool = False
    #: Whether the QED verdict is definitive: a violation was found, or no
    #: bound of the run expired its conflict budget (an UNKNOWN-at-budget
    #: "no violation" may still be upgraded by a bigger run -- the serving
    #: layer's cache exploits exactly that monotonicity).
    qed_definitive: bool = True
    #: ``True`` when the submission's wall-clock deadline expired during
    #: the run: the QED verdict is UNKNOWN-truncated and the industrial/
    #: directed stages were skipped.  Always implies non-definitive.
    deadline_expired: bool = False
    #: Serving-layer provenance: ``True`` when this record was answered
    #: from the content-addressed result cache instead of a fresh solve.
    served_from_cache: bool = False
    #: Cache key of the job that produced this record ("" outside the
    #: serving layer).
    cache_key: str = ""

    @property
    def detected_by_symbolic_qed(self) -> bool:
        """Whether any Symbolic QED feature detected the bug."""
        return any(self.detected_by.get(f, False) for f in FEATURE_PRIORITY)

    @property
    def attributed_feature(self) -> Optional[str]:
        """The Fig. 10 attribution (highest-priority detecting feature)."""
        for feature in FEATURE_PRIORITY:
            if self.detected_by.get(feature, False):
                return feature
        return None

    @property
    def detected_by_industrial_flow(self) -> bool:
        """Whether DST, OCS-FV or CRS detected the bug."""
        return self.dst_detected or self.ocsfv_detected or self.crs_detected


#: Record fields that vary run-to-run (wall clocks) or describe *how* the
#: record was obtained rather than *what* was measured.  Equivalence checks
#: (direct campaign vs. served-with-cache) compare everything else.
RECORD_VOLATILE_FIELDS: Tuple[str, ...] = (
    "qed_runtime_seconds",
    "qed_preprocess_seconds",
    "qed_solve_seconds",
    "single_i_runtime_seconds",
    "served_from_cache",
    "cache_key",
)


def record_to_json_dict(record: BugDetectionRecord) -> Dict[str, object]:
    """Full JSON-serializable form of a detection record (all fields)."""
    return asdict(record)


def record_from_json_dict(data: Dict[str, object]) -> BugDetectionRecord:
    """Rebuild a record from :func:`record_to_json_dict` output.

    Unknown keys are ignored so records persisted by a newer serving-layer
    cache still load (the cache entry format is versioned separately).
    """
    known = {f.name for f in BugDetectionRecord.__dataclass_fields__.values()}
    kwargs = {key: value for key, value in data.items() if key in known}
    kwargs["detected_by"] = dict(kwargs.get("detected_by") or {})
    return BugDetectionRecord(**kwargs)


def record_comparable_dict(record: BugDetectionRecord) -> Dict[str, object]:
    """The deterministic core of a record: everything except wall clocks
    and serving provenance (:data:`RECORD_VOLATILE_FIELDS`).

    Two runs of the same job -- direct, through the server, or served from
    the cache -- must agree on this dict byte-for-byte.
    """
    data = record_to_json_dict(record)
    for field_name in RECORD_VOLATILE_FIELDS:
        data.pop(field_name, None)
    return data


@dataclass
class CampaignResult:
    """All detection records of one campaign run."""

    records: List[BugDetectionRecord] = field(default_factory=list)
    wall_clock_seconds: float = 0.0

    def record_for(self, bug_id: str) -> BugDetectionRecord:
        """Look up the record of one bug."""
        for record in self.records:
            if record.bug_id == bug_id:
                return record
        raise KeyError(f"no record for bug {bug_id!r}")


def _version_with_bug(bug_id: str) -> DesignVersion:
    """The earliest design version that contains *bug_id*."""
    for version in ALL_VERSIONS:
        if bug_id in version.bugs:
            return version
    raise KeyError(f"bug {bug_id!r} is not present in any version")


def _run_qed_feature(
    bug: Bug,
    version: DesignVersion,
    config: CampaignConfig,
    record: BugDetectionRecord,
    on_bound: Optional[Callable] = None,
    deadline: Optional[Deadline] = None,
) -> None:
    plan = FOCUS_SETS[bug.bug_id]
    mode = plan["mode"]
    bound = int(plan["bound"]) + config.extra_bound
    opcodes = None if config.exhaustive else plan["opcodes"]

    if mode == "single_i":
        checker = SingleIChecker(version, arch=config.arch)
        start = time.perf_counter()
        results = checker.check_all(
            instructions=None if config.exhaustive else list(plan["opcodes"])
        )
        record.single_i_runtime_seconds = time.perf_counter() - start
        record.detected_by["single_i"] = any(r.violated for r in results)
        return

    harness = SymbolicQED(
        version,
        mode=mode,
        arch=config.arch,
        focus_opcodes=opcodes if mode is not QEDMode.EDDIV_MEM else None,
        tracked_registers=(0,),
    )
    result = harness.check(
        max_bound=bound,
        preprocess=config.preprocess,
        max_conflicts_per_query=config.max_conflicts_per_query,
        split=config.split,
        on_bound=on_bound,
        deadline=deadline,
    )
    feature = {
        QEDMode.EDDIV: "eddiv",
        QEDMode.EDDIV_CF: "qed_cf",
        QEDMode.EDDIV_MEM: "qed_mem",
    }[mode]
    record.detected_by[feature] = result.found_violation
    record.qed_definitive = result.found_violation or all(
        stats.verdict != "unknown" for stats in result.per_bound_stats
    )
    record.qed_runtime_seconds = result.runtime_seconds
    record.qed_counterexample_cycles = result.counterexample_cycles
    record.qed_counterexample_instructions = result.counterexample_instructions
    record.qed_solver_conflicts = result.solver_conflicts
    record.qed_solver_propagations = result.solver_propagations
    record.qed_solve_seconds = result.solve_seconds
    record.qed_learned_clauses = result.learned_clauses
    record.qed_learned_clauses_reused = result.learned_clauses_reused
    record.qed_variables_eliminated = result.bmc_result.variables_eliminated
    record.qed_clauses_subsumed = result.bmc_result.clauses_subsumed
    record.qed_preprocess_seconds = result.bmc_result.preprocess_seconds
    record.qed_cubes_solved = result.cubes_solved
    record.qed_cubes_resplit = result.cubes_resplit
    record.qed_clauses_shared = result.clauses_shared


def detect_bug(
    bug_id: str,
    config: Optional[CampaignConfig] = None,
    *,
    on_bound: Optional[Callable] = None,
    deadline: Optional[Deadline] = None,
) -> BugDetectionRecord:
    """Run every configured technique against one bug (a campaign *job*).

    Each job is self-contained -- it elaborates its own design and solver
    state -- which is what makes the process-pool fan-out of
    :func:`run_campaign` safe: workers share nothing.  ``on_bound`` is the
    per-bound progress hook forwarded to the BMC engine (see
    :meth:`repro.bmc.engine.BoundedModelChecker.run`); the serving layer
    uses it to stream progress while a job runs.

    ``deadline`` is the job's wall-clock budget (the serving layer
    forwards what is left of the submission's ``deadline_seconds``).  It
    threads into the QED BMC run — expiry makes the verdict UNKNOWN and
    the record non-definitive — and skips the industrial-flow and
    directed-test stages when already expired, so the job terminates
    promptly instead of running unbounded.
    """
    config = config or CampaignConfig()
    bug = bug_by_id(bug_id)
    version = _version_with_bug(bug.bug_id)
    # Direct runs get their own trace context here; served jobs and
    # campaign workers arrive with a collector already installed (the
    # queue's per-job trace or the campaign's, inherited across fork) and
    # must not tear it down.  Tracing never touches the record, so the
    # BugDetectionRecord is byte-identical with observability on or off.
    owned = obs_trace.active() is None
    if owned:
        obs_trace.start_trace()
    job_span = obs_trace.span("detect_bug", bug_id=bug.bug_id)
    try:
        # Structural lint before any harness is built: a malformed version
        # netlist (forged cycle, undriven net) would hang elaboration-side
        # hashing or unrolling.  Memoized per (version, arch), so repeated
        # jobs over the same version pay it once per process.
        with obs_trace.span("detect.lint"):
            check_version_design(version, config.arch)
        record = BugDetectionRecord(
            bug_id=bug.bug_id, version_name=version.name
        )

        with obs_trace.span("detect.qed"):
            _run_qed_feature(bug, version, config, record, on_bound, deadline)

        expired = deadline is not None and deadline.expired()
        if expired:
            record.deadline_expired = True
            obs_trace.event("deadline.expired", scope="detect_bug")
            obs_metrics.process_metrics().inc(
                "qed_deadline_expiries_total", scope="detect_bug"
            )
            # A record that *skipped requested stages* must never pass for a
            # complete measurement: it is marked non-definitive so the result
            # cache can monotonically upgrade it from a later full run.  When
            # nothing below was requested, the QED engine's own verdict
            # stands -- a violation found before expiry is definitive SAT,
            # and ``_run_qed_feature`` already downgraded any truncated
            # search to non-definitive.
            if config.run_industrial_flow or config.run_directed_tests:
                record.qed_definitive = False
        if config.run_industrial_flow and not expired:
            with obs_trace.span("detect.industrial"):
                crs = ConstrainedRandomSim(
                    version, arch=config.arch, config=config.crs_config
                )
                record.crs_detected = crs.run().detected_bug
                ocsfv = OCSFVChecker(version, arch=config.arch)
                focus = FOCUS_SETS[bug.bug_id]["opcodes"]
                record.ocsfv_detected = ocsfv.check_all(
                    instructions=None
                    if config.exhaustive or focus is None
                    else list(focus)
                ).detected_bug
        if config.run_directed_tests and not expired:
            with obs_trace.span("detect.directed"):
                suite = default_directed_suite(config.arch)
                results = suite.run_all(
                    version, with_extension=version.with_extension
                )
                record.dst_detected = suite.detected_bug(results)

        return record
    finally:
        job_span.close()
        if owned:
            obs_trace.clear()


def _detect_bug_job(
    job: Tuple[str, CampaignConfig]
) -> Tuple[BugDetectionRecord, Optional[dict]]:
    """Pool entry point (top-level so it pickles).

    Returns the record plus the span batch this job recorded on the
    collector inherited across the fork (``None`` when the parent ran
    without tracing) -- the campaign's "progress pipe" is the pool's
    return channel, so spans ride back with the result.
    """
    bug_id, config = job
    collector = obs_trace.active()
    obs_mark = None if collector is None else collector.mark()
    record = detect_bug(bug_id, config)
    batch = None if obs_mark is None else collector.batch_since(obs_mark)
    return record, batch


#: Format tag of the campaign journal's header line.
JOURNAL_FORMAT = 1


def _read_journal(
    path: str, config: Optional[CampaignConfig] = None
) -> Tuple[List[BugDetectionRecord], int]:
    """Replay a journal; returns (records, byte length of the valid prefix).

    A line only counts when its terminating newline made it to disk — a
    crash mid-append leaves a torn tail (no newline, or undecodable
    bytes), and replay stops there.  The returned offset is where a
    resuming writer must truncate before appending, so a new record is
    never concatenated onto torn bytes (which would lose *both* lines on
    the next replay).
    """
    records: List[BugDetectionRecord] = []
    if not os.path.exists(path):
        return records, 0
    with open(path, "rb") as handle:
        raw = handle.read()
    valid_end = 0
    header_seen = False
    cursor = 0
    # The final split element is whatever follows the last newline:
    # b"" after a clean append, torn bytes after a crash.  Either way it
    # is not a journal line.
    for chunk in raw.split(b"\n")[:-1]:
        line_end = cursor + len(chunk) + 1
        text = chunk.decode("utf-8", errors="replace").strip()
        cursor = line_end
        if not text:
            valid_end = line_end
            continue
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            break
        if not header_seen:
            header_seen = True
            if data.get("journal") != JOURNAL_FORMAT:
                raise ValueError(f"not a campaign journal (header {data!r})")
            if (
                config is not None
                and data.get("config") != config.to_json_dict()
            ):
                raise ValueError(
                    "campaign journal was written under a different "
                    "config; refusing to merge records across configs"
                )
            valid_end = line_end
            continue
        records.append(record_from_json_dict(data))
        valid_end = line_end
    return records, valid_end


def load_campaign_journal(
    path: str, config: Optional[CampaignConfig] = None
) -> List[BugDetectionRecord]:
    """Replay an append-only campaign journal into completed records.

    The journal is one JSON object per line: a header
    ``{"journal": 1, "config": <canonical config dict>}`` followed by one
    :func:`record_to_json_dict` line per completed bug.  Replay stops at
    the first torn line — a crash mid-append corrupts only the tail, and
    everything before it is intact by construction (records are only
    appended, never rewritten).  A missing file, or a file whose header
    is torn, replays to no records.

    When *config* is given, a journal whose header was written under a
    *different* canonical config raises ``ValueError``: resuming a
    campaign under changed knobs would merge records that measured
    different things.
    """
    records, _ = _read_journal(path, config)
    return records


def run_campaign(
    config: Optional[CampaignConfig] = None,
    *,
    workers: int = 1,
    journal_path: Optional[str] = None,
) -> CampaignResult:
    """Run the campaign and return the per-bug detection records.

    ``workers`` > 1 fans the independent per-bug jobs out over a
    ``ProcessPoolExecutor``.  Records are merged back in bug-selection order
    (``pool.map`` preserves input order), so the result is deterministic and
    identical to a serial run apart from the wall-clock fields.

    ``journal_path`` makes the campaign crash-safe: every completed
    record is appended (and flushed) to the journal the moment it is
    final, and a re-run against the same path *resumes* — bugs already
    journaled are not re-solved, only the missing ones run, and the
    merged result is identical (on every deterministic field) to an
    uninterrupted run.  The journal header pins the canonical config;
    resuming under a different config is refused.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    config = config or CampaignConfig()
    selected_bugs = (
        [bug_by_id(b) for b in config.bug_ids]
        if config.bug_ids is not None
        else list(BUGS)
    )
    campaign = CampaignResult()
    start = time.perf_counter()

    done: Dict[str, BugDetectionRecord] = {}
    journal = None
    if journal_path is not None:
        loaded, valid_end = _read_journal(journal_path, config)
        for record in loaded:
            done[record.bug_id] = record
        if loaded:
            journal = open(journal_path, "r+b")
            # Drop any torn tail before appending: concatenating a fresh
            # record onto torn bytes would lose both on the next replay.
            journal.truncate(valid_end)
            journal.seek(0, os.SEEK_END)
        else:
            # Fresh journal (or one whose header itself was torn):
            # start over so the header is guaranteed intact.
            journal = open(journal_path, "wb")
            header = {
                "journal": JOURNAL_FORMAT,
                "config": config.to_json_dict(),
            }
            journal.write(json.dumps(header).encode("utf-8") + b"\n")
            journal.flush()
            os.fsync(journal.fileno())

    def journal_record(record: BugDetectionRecord) -> None:
        if journal is None:
            return
        payload = json.dumps(record_to_json_dict(record)).encode("utf-8")
        # Chaos-harness write site: a seeded torn_write truncates the
        # payload exactly as a crash mid-append would.
        journal.write(faults.mangle_write("eval.campaign.journal", payload + b"\n"))
        journal.flush()
        os.fsync(journal.fileno())
        # Chaos-harness injection point: a seeded kill right after the
        # append is the worst-case SIGKILL mid-campaign — the record
        # just journaled must survive, everything after must resume.
        faults.crash_point("eval.campaign.record")

    pending = [bug for bug in selected_bugs if bug.bug_id not in done]
    # Campaign entry is a trace root for direct runs (the serving layer
    # never reaches this path with a collector of its own installed).
    # Fork-pool workers inherit the installed collector and ship their
    # span batches back with each record.
    owned = obs_trace.active() is None
    if owned:
        obs_trace.start_trace()
    campaign_span = obs_trace.span(
        "run_campaign", workers=workers, jobs=len(pending)
    )
    try:
        if workers == 1 or len(pending) <= 1:
            for bug in pending:
                record = detect_bug(bug.bug_id, config)
                done[bug.bug_id] = record
                journal_record(record)
        else:
            # ``fork`` keeps the already-imported package (and sys.path) in
            # the workers; the jobs are CPU-bound pure Python so processes,
            # not threads, are required to use more than one core.
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0]
            )
            jobs = [(bug.bug_id, config) for bug in pending]
            with ProcessPoolExecutor(
                max_workers=min(workers, len(jobs)), mp_context=context
            ) as pool:
                # ``pool.map`` yields in submission order, so records are
                # journaled in bug-selection order even when a later-
                # submitted job finishes first.
                for record, span_batch in pool.map(_detect_bug_job, jobs):
                    collector = obs_trace.active()
                    if collector is not None and span_batch is not None:
                        collector.absorb(span_batch)
                    done[record.bug_id] = record
                    journal_record(record)
    finally:
        if journal is not None:
            journal.close()
        campaign_span.close()
        if owned:
            obs_trace.clear()

    # Bug-selection order, resumed and fresh records interleaved exactly
    # where an uninterrupted run would have put them.
    campaign.records = [done[bug.bug_id] for bug in selected_bugs]
    campaign.wall_clock_seconds = time.perf_counter() - start
    return campaign
