"""The verification campaign over the sixteen design versions.

For every seeded bug the campaign runs the Symbolic QED features (baseline
EDDI-V, the QED-CF enhancement, duplication using memory, Single-I) and the
industrial-flow techniques (DST, OCS-FV, CRS) and records which of them
detect it.  Figs. 8, 9 and 10 and Tables 2 and 3 are computed from these
records.

Because the SAT backend here is pure Python, the default campaign runs each
bug against its buggy version with a bug-specific *focus set* of opcodes (an
environment constraint on the stimulus, see
:func:`repro.qed.qed_module.build_qed_module`) and a bound just large enough
for the counterexample.  ``CampaignConfig(exhaustive=True)`` removes the
focus sets and runs every feature on every version -- the faithful but slow
configuration.

The per-bug jobs are completely independent -- each builds its own design,
QED module and solver -- so :func:`run_campaign` can fan them out over a
``ProcessPoolExecutor`` (``workers=N``).  The merge is deterministic: records
come back in the order the bugs were selected regardless of which worker
finished first, so a parallel campaign produces the same records as a serial
one (modulo wall-clock fields).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dist.scheduler import SplitConfig
from repro.isa.arch import ArchParams, TINY_PROFILE
from repro.indverif.crs import CRSConfig, ConstrainedRandomSim
from repro.indverif.dst import default_directed_suite
from repro.indverif.ocsfv import OCSFVChecker
from repro.qed.eddiv import QEDMode
from repro.qed.harness import SymbolicQED
from repro.qed.single_i import SingleIChecker
from repro.uarch.bugs import BUGS, Bug, bug_by_id
from repro.uarch.versions import ALL_VERSIONS, DesignVersion

#: Per-bug focus sets and bounds: the instructions the BMC stimulus is allowed
#: to use when hunting that bug, plus the unrolling depth.  These model the
#: per-block runs a verification engineer would launch; they never weaken the
#: checked property.
FOCUS_SETS: Dict[str, Dict[str, object]] = {
    "wrport_collision": {
        "mode": QEDMode.EDDIV,
        "opcodes": ["LDI", "MOV", "INC", "ADD"],
        "bound": 8,
    },
    "alu_after_load": {
        "mode": QEDMode.EDDIV,
        "opcodes": ["LDI", "ADD", "XOR", "LDA", "STA"],
        "bound": 8,
    },
    "consecutive_sub": {
        "mode": QEDMode.EDDIV,
        "opcodes": ["LDI", "SUB", "INC"],
        "bound": 8,
    },
    "st_ld_stale": {
        "mode": QEDMode.EDDIV,
        "opcodes": ["LDI", "LDA", "STA", "MOV"],
        "bound": 8,
    },
    "inplace_after_store": {
        "mode": QEDMode.EDDIV,
        "opcodes": ["LDI", "INC", "STA", "MOV"],
        "bound": 8,
    },
    "bz_flag_misread": {
        "mode": QEDMode.EDDIV_CF,
        "opcodes": ["LDI", "ADD", "CMPI", "BZ"],
        "bound": 8,
    },
    "bnz_carry_confusion": {
        "mode": QEDMode.EDDIV_CF,
        "opcodes": ["LDI", "ADD", "CMPI", "BNZ"],
        "bound": 8,
    },
    "jr_target_offby1": {
        "mode": QEDMode.EDDIV_CF,
        "opcodes": ["LDI", "INC", "ADD", "CMPI", "JR"],
        "bound": 8,
    },
    "beq_high_inverted": {
        "mode": QEDMode.EDDIV_CF,
        "opcodes": ["LDI", "INC", "ADD", "CMPI", "BEQ"],
        "bound": 8,
    },
    "ldil_after_load": {
        "mode": QEDMode.EDDIV_MEM,
        "opcodes": None,
        "bound": 9,
    },
    "sra_zero_fill": {"mode": "single_i", "opcodes": ["SRA"], "bound": 2},
    "cmpi_carry_spec": {"mode": "single_i", "opcodes": ["CMPI"], "bound": 2},
    "ror_direction": {"mode": "single_i", "opcodes": ["ROR"], "bound": 2},
    "satadd_clamp": {"mode": "single_i", "opcodes": ["SATADD"], "bound": 2},
}

#: Priority order used to attribute a bug to the Symbolic QED feature that
#: detects it (Fig. 10): baseline first, then the enhancements, then Single-I.
FEATURE_PRIORITY: Tuple[str, ...] = ("eddiv", "qed_cf", "qed_mem", "single_i")


@dataclass
class CampaignConfig:
    """Configuration of a campaign run.

    ``split`` routes every QED BMC query through the distributed proof
    engine (cube-and-conquer + portfolio, see :mod:`repro.dist`); it
    composes with ``run_campaign(workers=N)``: the pool fans out over bugs,
    and each bug's hard query can additionally fan out over cubes.  Leave it
    ``None`` inside an outer process pool unless cores are plentiful.
    """

    arch: ArchParams = TINY_PROFILE
    bug_ids: Optional[Sequence[str]] = None
    run_industrial_flow: bool = True
    run_directed_tests: bool = True
    crs_config: CRSConfig = field(default_factory=CRSConfig)
    exhaustive: bool = False
    extra_bound: int = 0
    split: Optional[SplitConfig] = None


@dataclass
class BugDetectionRecord:
    """Everything the campaign measured about one bug."""

    bug_id: str
    version_name: str
    detected_by: Dict[str, bool] = field(default_factory=dict)
    qed_runtime_seconds: float = 0.0
    qed_counterexample_cycles: int = 0
    qed_counterexample_instructions: int = 0
    qed_solver_conflicts: int = 0
    qed_learned_clauses: int = 0
    qed_learned_clauses_reused: int = 0
    qed_variables_eliminated: int = 0
    qed_clauses_subsumed: int = 0
    qed_preprocess_seconds: float = 0.0
    #: Distributed proof engine work (zero when the run was sequential).
    qed_cubes_solved: int = 0
    qed_cubes_resplit: int = 0
    qed_clauses_shared: int = 0
    single_i_runtime_seconds: float = 0.0
    crs_detected: bool = False
    ocsfv_detected: bool = False
    dst_detected: bool = False

    @property
    def detected_by_symbolic_qed(self) -> bool:
        """Whether any Symbolic QED feature detected the bug."""
        return any(self.detected_by.get(f, False) for f in FEATURE_PRIORITY)

    @property
    def attributed_feature(self) -> Optional[str]:
        """The Fig. 10 attribution (highest-priority detecting feature)."""
        for feature in FEATURE_PRIORITY:
            if self.detected_by.get(feature, False):
                return feature
        return None

    @property
    def detected_by_industrial_flow(self) -> bool:
        """Whether DST, OCS-FV or CRS detected the bug."""
        return self.dst_detected or self.ocsfv_detected or self.crs_detected


@dataclass
class CampaignResult:
    """All detection records of one campaign run."""

    records: List[BugDetectionRecord] = field(default_factory=list)
    wall_clock_seconds: float = 0.0

    def record_for(self, bug_id: str) -> BugDetectionRecord:
        """Look up the record of one bug."""
        for record in self.records:
            if record.bug_id == bug_id:
                return record
        raise KeyError(f"no record for bug {bug_id!r}")


def _version_with_bug(bug_id: str) -> DesignVersion:
    """The earliest design version that contains *bug_id*."""
    for version in ALL_VERSIONS:
        if bug_id in version.bugs:
            return version
    raise KeyError(f"bug {bug_id!r} is not present in any version")


def _run_qed_feature(
    bug: Bug,
    version: DesignVersion,
    config: CampaignConfig,
    record: BugDetectionRecord,
) -> None:
    plan = FOCUS_SETS[bug.bug_id]
    mode = plan["mode"]
    bound = int(plan["bound"]) + config.extra_bound
    opcodes = None if config.exhaustive else plan["opcodes"]

    if mode == "single_i":
        checker = SingleIChecker(version, arch=config.arch)
        start = time.perf_counter()
        results = checker.check_all(
            instructions=None if config.exhaustive else list(plan["opcodes"])
        )
        record.single_i_runtime_seconds = time.perf_counter() - start
        record.detected_by["single_i"] = any(r.violated for r in results)
        return

    harness = SymbolicQED(
        version,
        mode=mode,
        arch=config.arch,
        focus_opcodes=opcodes if mode is not QEDMode.EDDIV_MEM else None,
        tracked_registers=(0,),
    )
    result = harness.check(max_bound=bound, split=config.split)
    feature = {
        QEDMode.EDDIV: "eddiv",
        QEDMode.EDDIV_CF: "qed_cf",
        QEDMode.EDDIV_MEM: "qed_mem",
    }[mode]
    record.detected_by[feature] = result.found_violation
    record.qed_runtime_seconds = result.runtime_seconds
    record.qed_counterexample_cycles = result.counterexample_cycles
    record.qed_counterexample_instructions = result.counterexample_instructions
    record.qed_solver_conflicts = result.solver_conflicts
    record.qed_learned_clauses = result.learned_clauses
    record.qed_learned_clauses_reused = result.learned_clauses_reused
    record.qed_variables_eliminated = result.bmc_result.variables_eliminated
    record.qed_clauses_subsumed = result.bmc_result.clauses_subsumed
    record.qed_preprocess_seconds = result.bmc_result.preprocess_seconds
    record.qed_cubes_solved = result.cubes_solved
    record.qed_cubes_resplit = result.cubes_resplit
    record.qed_clauses_shared = result.clauses_shared


def detect_bug(bug_id: str, config: Optional[CampaignConfig] = None) -> BugDetectionRecord:
    """Run every configured technique against one bug (a campaign *job*).

    Each job is self-contained -- it elaborates its own design and solver
    state -- which is what makes the process-pool fan-out of
    :func:`run_campaign` safe: workers share nothing.
    """
    config = config or CampaignConfig()
    bug = bug_by_id(bug_id)
    version = _version_with_bug(bug.bug_id)
    record = BugDetectionRecord(bug_id=bug.bug_id, version_name=version.name)

    _run_qed_feature(bug, version, config, record)

    if config.run_industrial_flow:
        crs = ConstrainedRandomSim(
            version, arch=config.arch, config=config.crs_config
        )
        record.crs_detected = crs.run().detected_bug
        ocsfv = OCSFVChecker(version, arch=config.arch)
        focus = FOCUS_SETS[bug.bug_id]["opcodes"]
        record.ocsfv_detected = ocsfv.check_all(
            instructions=None
            if config.exhaustive or focus is None
            else list(focus)
        ).detected_bug
    if config.run_directed_tests:
        suite = default_directed_suite(config.arch)
        results = suite.run_all(version, with_extension=version.with_extension)
        record.dst_detected = suite.detected_bug(results)

    return record


def _detect_bug_job(job: Tuple[str, CampaignConfig]) -> BugDetectionRecord:
    """Pool entry point (top-level so it pickles)."""
    bug_id, config = job
    return detect_bug(bug_id, config)


def run_campaign(
    config: Optional[CampaignConfig] = None, *, workers: int = 1
) -> CampaignResult:
    """Run the campaign and return the per-bug detection records.

    ``workers`` > 1 fans the independent per-bug jobs out over a
    ``ProcessPoolExecutor``.  Records are merged back in bug-selection order
    (``pool.map`` preserves input order), so the result is deterministic and
    identical to a serial run apart from the wall-clock fields.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    config = config or CampaignConfig()
    selected_bugs = (
        [bug_by_id(b) for b in config.bug_ids]
        if config.bug_ids is not None
        else list(BUGS)
    )
    campaign = CampaignResult()
    start = time.perf_counter()

    if workers == 1 or len(selected_bugs) <= 1:
        campaign.records = [
            detect_bug(bug.bug_id, config) for bug in selected_bugs
        ]
    else:
        # ``fork`` keeps the already-imported package (and sys.path) in the
        # workers; the jobs are CPU-bound pure Python so processes, not
        # threads, are required to use more than one core.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        jobs = [(bug.bug_id, config) for bug in selected_bugs]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(jobs)), mp_context=context
        ) as pool:
            campaign.records = list(pool.map(_detect_bug_job, jobs))

    campaign.wall_clock_seconds = time.perf_counter() - start
    return campaign
