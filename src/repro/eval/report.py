"""Table and figure formatting for the reproduction reports."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.eval.campaign import CampaignResult, FEATURE_PRIORITY
from repro.uarch.bugs import bug_by_id
from repro.uarch.versions import ALL_VERSIONS


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render dict rows as a fixed-width text table."""
    header = list(columns)
    rendered = [header] + [
        [str(row.get(column, "")) for column in columns] for row in rows
    ]
    widths = [
        max(len(line[index]) for line in rendered) for index in range(len(header))
    ]
    lines = []
    for line_index, line in enumerate(rendered):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
        if line_index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def design_inventory() -> List[Dict[str, object]]:
    """Fig. 1: the design families and versions analysed in the study."""
    rows: List[Dict[str, object]] = []
    for version in ALL_VERSIONS:
        rows.append(
            {
                "version": version.name,
                "rom_interface": version.rom_interface,
                "extension": "SATADD" if version.with_extension else "-",
                "bugs_present": ", ".join(sorted(version.bugs)) or "-",
                "change": version.change_note,
            }
        )
    return rows


def detection_breakdown(campaign: CampaignResult) -> Dict[str, object]:
    """Figs. 8, 9 and 10 computed from a campaign run."""
    records = campaign.records
    total = len(records)
    qed_detected = [r for r in records if r.detected_by_symbolic_qed]
    industrial_detected = [r for r in records if r.detected_by_industrial_flow]
    crs_detected = [r for r in records if r.crs_detected]
    ocsfv_detected = [r for r in records if r.ocsfv_detected]
    dst_detected = [r for r in records if r.dst_detected]

    feature_counts: Dict[str, int] = {feature: 0 for feature in FEATURE_PRIORITY}
    for record in qed_detected:
        feature = record.attributed_feature
        if feature is not None:
            feature_counts[feature] += 1

    qed_only = [
        r.bug_id for r in records
        if r.detected_by_symbolic_qed and not r.detected_by_industrial_flow
    ]
    industrial_total = len(industrial_detected)
    return {
        "total_bugs": total,
        "symbolic_qed_detected": len(qed_detected),
        "industrial_flow_detected": industrial_total,
        "crs_detected": len(crs_detected),
        "ocsfv_detected": len(ocsfv_detected),
        "dst_detected": len(dst_detected),
        "qed_vs_industrial_percent": (
            100.0 * len(qed_detected) / industrial_total if industrial_total else 0.0
        ),
        "qed_unique_bugs": qed_only,
        "qed_unique_percent": (
            100.0 * len(qed_only) / industrial_total if industrial_total else 0.0
        ),
        "feature_breakdown_counts": feature_counts,
        "feature_breakdown_percent": {
            feature: (100.0 * count / total if total else 0.0)
            for feature, count in feature_counts.items()
        },
        "spec_bugs": [
            r.bug_id for r in records if bug_by_id(r.bug_id).kind == "spec"
        ],
    }


def runtime_statistics(values: Iterable[float]) -> Optional[Dict[str, float]]:
    """[min, avg, max] statistics in the format of Tables 2 and 3."""
    data = [v for v in values]
    if not data:
        return None
    return {
        "min": min(data),
        "avg": sum(data) / len(data),
        "max": max(data),
    }


def solver_reuse_statistics(campaign: CampaignResult) -> Dict[str, object]:
    """Aggregate SAT-solver work of the campaign's Symbolic QED runs.

    Complements the Table 2 runtimes with the incremental-engine counters:
    total conflicts, clauses learned, and how many learned clauses later
    bounds inherited from earlier ones (non-zero only when the incremental
    reuse actually kicks in, i.e. for multi-bound schedules).

    The ``throughput`` section reports the flat-arena propagation core's
    speed: total unit propagations, the wall-clock spent *inside* the
    solver (excluding encoding and preprocessing), and their ratio --
    the same propagations-per-second number ``scripts/bench_bmc.py``
    records and CI gates against a regression floor.
    """
    propagations = sum(r.qed_solver_propagations for r in campaign.records)
    solve_seconds = sum(r.qed_solve_seconds for r in campaign.records)
    return {
        "conflicts": sum(r.qed_solver_conflicts for r in campaign.records),
        "learned_clauses": sum(r.qed_learned_clauses for r in campaign.records),
        "learned_clauses_reused": sum(
            r.qed_learned_clauses_reused for r in campaign.records
        ),
        "throughput": {
            "propagations": propagations,
            "solve_seconds": solve_seconds,
            "propagations_per_second": (
                propagations / solve_seconds if solve_seconds > 0 else 0.0
            ),
        },
    }


def formula_reduction_statistics(campaign: CampaignResult) -> Dict[str, float]:
    """Aggregate formula-reduction work of the campaign's Symbolic QED runs.

    Complements :func:`solver_reuse_statistics` with the preprocessing
    pipeline's counters: how many CNF variables bounded variable elimination
    removed, how many clauses subsumption dropped, and the wall-clock spent
    inside preprocessing.  All three are zero when the campaign ran with
    preprocessing disabled.
    """
    return {
        "variables_eliminated": sum(
            r.qed_variables_eliminated for r in campaign.records
        ),
        "clauses_subsumed": sum(
            r.qed_clauses_subsumed for r in campaign.records
        ),
        "preprocess_seconds": sum(
            r.qed_preprocess_seconds for r in campaign.records
        ),
    }


def serving_statistics(stats: Dict[str, object]) -> Dict[str, object]:
    """Summarise a serving-layer ``GET /stats`` payload.

    Complements :func:`distributed_proof_statistics` with the
    verification-as-a-service counters (see :mod:`repro.serve`): how many
    jobs the service answered, what fraction came straight from the
    content-addressed result cache, how many concurrent identical
    submissions were coalesced into one solve, and the mean time a job
    waited in the queue before a worker picked it up.

    Accepts either the full ``/stats`` payload (``{"queue": ..., "cache":
    ...}``) or a bare :meth:`repro.serve.queue.JobQueue.stats_dict`; it is
    a pure dict transform so report generation never imports (or requires)
    the serving stack.
    """
    queue = stats.get("queue", stats)
    cache = stats.get("cache") or {}
    submitted = int(queue.get("jobs_submitted", 0))
    cache_hits = int(queue.get("cache_hits", 0))
    latency_jobs = int(queue.get("queue_latency_jobs", 0))
    return {
        "jobs_submitted": submitted,
        "jobs_executed": int(queue.get("executed", 0)),
        "jobs_failed": int(queue.get("failed", 0)),
        "jobs_cancelled": int(queue.get("cancelled", 0)),
        "cache_hits": cache_hits,
        "cache_hit_rate": (cache_hits / submitted) if submitted else 0.0,
        "dedup_coalesced": int(queue.get("coalesced", 0)),
        "cache_entries": int(cache.get("entries", 0)),
        "cache_upgrades": int(cache.get("upgrades", 0)),
        "mean_queue_latency_seconds": (
            float(queue.get("queue_latency_seconds_total", 0.0)) / latency_jobs
            if latency_jobs
            else 0.0
        ),
    }


def distributed_proof_statistics(campaign: CampaignResult) -> Dict[str, int]:
    """Aggregate cube-and-conquer work of the campaign's Symbolic QED runs.

    Complements :func:`formula_reduction_statistics` with the distributed
    proof engine's counters (see :mod:`repro.dist`): how many cubes the
    schedulers answered, how many dynamic re-splits the per-cube conflict
    budgets triggered, and how many short learned clauses workers exchanged.
    All three are zero when the campaign ran with sequential queries
    (``CampaignConfig.split is None``).
    """
    return {
        "cubes_solved": sum(r.qed_cubes_solved for r in campaign.records),
        "cubes_resplit": sum(r.qed_cubes_resplit for r in campaign.records),
        "clauses_shared": sum(r.qed_clauses_shared for r in campaign.records),
    }
