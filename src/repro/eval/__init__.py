"""Evaluation: effort model, verification campaign and table/figure reports.

This package regenerates the paper's evaluation artefacts:

* Table 1 / Fig. 7 -- setup-effort comparison (:mod:`repro.eval.effort`),
* Table 2 / Table 3 -- bug-detection runtimes and counterexample lengths,
* Fig. 8 / Fig. 9 / Fig. 10 -- detection breakdowns across Symbolic QED and
  the industrial flow (:mod:`repro.eval.campaign`),
* Fig. 1 -- the design/version inventory (:mod:`repro.eval.report`).
"""

from repro.eval.effort import (
    EffortModel,
    PersonTime,
    SETUP_EFFORT,
    setup_effort_table,
)
from repro.eval.campaign import (
    BugDetectionRecord,
    CampaignConfig,
    CampaignResult,
    FOCUS_SETS,
    detect_bug,
    run_campaign,
)
from repro.eval.report import (
    design_inventory,
    detection_breakdown,
    distributed_proof_statistics,
    format_table,
    formula_reduction_statistics,
    runtime_statistics,
    serving_statistics,
    solver_reuse_statistics,
)

__all__ = [
    "EffortModel",
    "PersonTime",
    "SETUP_EFFORT",
    "setup_effort_table",
    "BugDetectionRecord",
    "CampaignConfig",
    "CampaignResult",
    "FOCUS_SETS",
    "detect_bug",
    "run_campaign",
    "design_inventory",
    "detection_breakdown",
    "distributed_proof_statistics",
    "format_table",
    "formula_reduction_statistics",
    "runtime_statistics",
    "serving_statistics",
    "solver_reuse_statistics",
]
