"""Static verification toolchain: lint the verifier before it verifies.

This package is the repo's third check layer.  Layer 0 is the Python type
system (the ``sat``/``bmc``/``expr`` core is annotated for strict mypy,
gated in CI); this package adds two more, both purely static -- no
simulation, no solving:

Layer 1 -- netlist lint (:mod:`repro.analysis.netlist_lint`)
    Structural well-formedness of :class:`repro.rtl.design.Design` netlists:
    combinational-cycle detection (iterative grey/black DFS -- a forged
    cycle would *hang* structural hashing and bit-blasting, so this must
    run first), undriven/multiply-driven/dangling nets, width and
    reset-range checks, dead-cone warnings, QED-readiness (the ``qed.*``
    module must be state-isolated from the core, and a ``qed.*``
    instruction input must reach the property cone through the
    state/assumption closure), and bug-library sanity (each buggy
    :class:`~repro.uarch.versions.DesignVersion`'s netlist diff against
    its clean base must stay inside the signals its
    :class:`~repro.uarch.bugs.Bug` declares).  The full check catalog is
    the module docstring of :mod:`repro.analysis.netlist_lint`.

    Wired fail-fast into every solve path: the BMC engine, the campaign
    runner, and the serving layer all call
    :func:`~repro.analysis.netlist_lint.check_design` /
    :func:`~repro.analysis.netlist_lint.check_version_design` before
    building an unroller; the server returns the structured report as a
    400 response instead of solving.

Layer 2 -- code lint (:mod:`repro.analysis.code_lint`)
    AST analyzers (stdlib :mod:`ast` only) for the behavioural invariants
    the test suite cannot see locally: determinism (set iteration order
    must not escape into lists, joins, JSON or cache keys -- the repo
    promises byte-identical records across worker counts and hash seeds),
    fork-safety (no lock/asyncio use reachable from a fork-pool worker
    entry point in ``dist``/``serve``), and hot-loop discipline (loops
    marked ``# hot-loop`` in the flat-arena solver stay attribute- and
    allocation-free).  The check catalog is the module docstring of
    :mod:`repro.analysis.code_lint`.

Both layers emit :class:`~repro.analysis.findings.LintReport` (JSON-able,
renderable) and share the :class:`~repro.analysis.findings.DesignLintError`
fail-fast exception.  ``scripts/lint_repro.py`` runs everything -- both
layers plus mypy when available -- and is the CI ``lint`` job's entry
point; it exits non-zero on any error-severity finding.
"""

from repro.analysis.findings import (
    ERROR,
    WARNING,
    DesignLintError,
    LintFinding,
    LintReport,
)
from repro.analysis.netlist_lint import (
    check_design,
    check_version_design,
    lint_bug_library,
    lint_design,
    lint_version_design,
)
from repro.analysis.code_lint import (
    lint_file,
    lint_files,
    lint_fork_safety,
)

__all__ = [
    "ERROR",
    "WARNING",
    "DesignLintError",
    "LintFinding",
    "LintReport",
    "check_design",
    "check_version_design",
    "lint_bug_library",
    "lint_design",
    "lint_version_design",
    "lint_file",
    "lint_files",
    "lint_fork_safety",
]
